"""E1 (Fig. 2b): programming fidelity of the MZI mesh architectures.

Regenerates the architecture-comparison rows of Section 4: for each mesh
architecture (Clements, compact Clements, Reck, Fldzhyan) and size, the
mean fidelity of programming Haar-random target unitaries, plus the
hardware inventory (MZIs, phase shifters, depth).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.eval import format_table
from repro.mesh import (
    ClementsMesh,
    CompactClementsMesh,
    FldzhyanMesh,
    ReckMesh,
    programming_fidelity,
)
from repro.utils import random_unitary

ARCHITECTURES = {
    "clements": lambda n: ClementsMesh(n),
    "compact-clements": lambda n: CompactClementsMesh(n),
    "reck": lambda n: ReckMesh(n),
    "fldzhyan": lambda n: FldzhyanMesh(n),
}


def _fidelity_table(sizes=(4, 8), n_targets=3):
    rows = []
    for n in sizes:
        targets = [random_unitary(n, rng=100 * n + i) for i in range(n_targets)]
        for name, factory in ARCHITECTURES.items():
            if name == "fldzhyan" and n > 4:
                # Optimisation-programmed mesh: keep the benchmark quick.
                continue
            fidelities = [programming_fidelity(factory(n), target) for target in targets]
            mesh = factory(n)
            counts = mesh.component_count()
            rows.append([
                name, n, counts["mzis"], counts["phase_shifters"], counts["depth"],
                float(np.mean(fidelities)), float(np.min(fidelities)),
            ])
    return rows


def test_bench_mesh_programming_fidelity(benchmark):
    rows = run_once(benchmark, _fidelity_table)
    print("\n[E1] mesh programming fidelity (Haar-random targets)")
    print(format_table(
        ["architecture", "N", "MZIs", "phase shifters", "depth", "mean fidelity", "min fidelity"],
        rows,
    ))
    by_name = {(row[0], row[1]): row for row in rows}
    # Analytic meshes are universal: fidelity ~ 1 at every size.
    for (name, n), row in by_name.items():
        if name in ("clements", "compact-clements", "reck"):
            assert row[5] > 0.9999
    # Fldzhyan (optimisation-programmed) reaches near-universality at N=4.
    assert by_name[("fldzhyan", 4)][5] > 0.99
    # Clements halves the depth of Reck (N vs 2N-3).
    assert by_name[("clements", 8)][4] < by_name[("reck", 8)][4]
