"""Benchmarks for the model compiler: plan-vs-naive and cost-based routing.

Two qualitative contracts of the new subsystem:

* **K-sharded plans beat naive serial execution** — a K-sharded GeMM on a
  2-PE cluster pipelines below the serial DMA + compute phase sum while
  staying bitwise exact, and a compiled multi-layer plan on the cluster
  beats the same model run naively on a single-PE SoC.
* **Cost-based routing beats round-robin on heterogeneous pools** — with
  one deliberately slow replica in a 3-replica pool, calibrated cost-based
  routing achieves strictly better p99 latency than round-robin at
  saturating offered load (round-robin keeps feeding the slow replica a
  third of the traffic).

``python benchmarks/run_bench.py`` persists the quantitative sweep into
``BENCH_throughput.json`` under the ``compiler`` section.
"""

import asyncio
import time

import numpy as np

from benchmarks.conftest import run_once
from repro.compiler import (
    ModelGraph,
    SoCCostModel,
    compile_for_soc,
    profile_replicas,
    replica_cost_fn,
)
from repro.core.backends import IdealDigitalBackend
from repro.eval import make_layer_stack
from repro.serving import (
    GemmEngine,
    InferenceServer,
    Replica,
    make_column_workload,
    poisson_arrival_times,
    run_open_loop,
)
from repro.system import PhotonicSoC


class SlowDigitalBackend(IdealDigitalBackend):
    """Exact digital product with a fixed per-call service delay.

    Stands in for a congested or distant replica: functionally identical,
    physically slower — the case cost-based routing exists for.
    """

    name = "slow-digital"

    def __init__(self, delay_s: float = 0.003):
        self.delay_s = float(delay_s)

    def matmul(self, weights, inputs):
        time.sleep(self.delay_s)
        return super().matmul(weights, inputs)

    def schedule_latency_s(self, n_columns: int) -> float:
        return self.delay_s


def _cluster(n_pes):
    soc = PhotonicSoC()
    for _ in range(n_pes):
        soc.add_photonic_accelerator()
    return soc


def test_bench_k_sharded_plan_beats_naive_serial(benchmark, bench_rng):
    """Compiled 3-layer plan on 2 PEs vs naive single-PE serial execution."""
    mats = make_layer_stack([24, 32, 24, 16], rng=0)
    graph = ModelGraph.from_matrices(mats)
    columns = bench_rng.integers(-3, 4, size=(24, 4))

    def compiled_run():
        soc = _cluster(2)
        cost_model = SoCCostModel.calibrate(soc)
        plan = compile_for_soc(graph, soc, cost_model=cost_model, cache=None)
        return plan, plan.run(columns)

    plan, planned = run_once(benchmark, compiled_run)

    naive_soc = _cluster(1)
    naive = columns.astype(np.int64)
    naive_cycles = 0
    for weights in mats:
        report = naive_soc.run_tiled_gemm(weights, naive, tile_rows=weights.shape[0])
        naive = report.result
        naive_cycles += report.pipeline["serial_cycles"]
    assert np.array_equal(planned, naive)  # plan == naive, bit for bit
    assert plan.total_cycles < naive_cycles  # and strictly cheaper


def test_bench_k_sharding_overlap_contract(bench_rng):
    """K-sharded GeMM: exact, and pipelined below the serial phase sum."""
    weights = bench_rng.integers(-4, 5, size=(24, 32))
    inputs = bench_rng.integers(-4, 5, size=(32, 8))
    soc = _cluster(2)
    report = soc.run_tiled_gemm(weights, inputs, k_shards=2)
    assert np.array_equal(report.result, weights @ inputs)
    assert report.pipeline["pipelined_cycles"] < report.pipeline["serial_cycles"]


def test_bench_cost_based_routing_beats_round_robin(benchmark):
    """p99 latency: cost-based < round-robin on a heterogeneous 3-replica pool."""
    shape = (12, 12)
    n_requests = 90
    weights = np.random.default_rng(0).normal(size=shape)

    def make_pool():
        return [
            Replica("fast0", GemmEngine(weights=weights, name="fast0"),
                    max_queue_depth=256),
            Replica("fast1", GemmEngine(weights=weights, name="fast1"),
                    max_queue_depth=256),
            Replica(
                "slow",
                GemmEngine(
                    backend=SlowDigitalBackend(delay_s=0.003),
                    weights=weights,
                    name="slow",
                ),
                max_queue_depth=256,
            ),
        ]

    async def measure(policy):
        replicas = make_pool()
        cost_fn = None
        if policy == "cost-based":
            cost_fn = replica_cost_fn(profile_replicas(replicas, repeats=2))
        async with InferenceServer(replicas, policy=policy, cost_fn=cost_fn) as server:
            offered_hz = 2000.0  # saturating: far beyond the slow replica
            trace = poisson_arrival_times(offered_hz, n_requests, rng=1)
            workload = make_column_workload(shape[1], n_requests, rng=2)
            report = await run_open_loop(
                server, trace, workload, offered_rate_hz=offered_hz
            )
        return report.telemetry["latency"]["p99_ms"]

    def both():
        # wall-clock comparison: retry once before failing so a noisy
        # CI neighbor can't flake the ~10x margin
        for attempt in range(2):
            pair = (
                asyncio.run(measure("round-robin")),
                asyncio.run(measure("cost-based")),
            )
            if pair[1] < pair[0]:
                break
        return pair

    round_robin_p99, cost_based_p99 = run_once(benchmark, both)
    assert cost_based_p99 < round_robin_p99, (
        f"cost-based p99 {cost_based_p99:.2f} ms should beat "
        f"round-robin p99 {round_robin_p99:.2f} ms"
    )
