"""Benchmarks for the model compiler: plan-vs-naive and cost-based routing.

Four qualitative contracts of the subsystem:

* **K-sharded plans beat naive serial execution** — a K-sharded GeMM on a
  2-PE cluster pipelines below the serial DMA + compute phase sum while
  staying bitwise exact, and a compiled multi-layer plan on the cluster
  beats the same model run naively on a single-PE SoC.
* **Cost-based routing beats round-robin on heterogeneous pools** — with
  one deliberately slow replica in a 3-replica pool, calibrated cost-based
  routing achieves strictly better p99 latency than round-robin at
  saturating offered load (round-robin keeps feeding the slow replica a
  third of the traffic).
* **Batch-aware sharding flips and wins** — for a calibrated 2-PE cluster
  there is a layer shape whose rows-vs-K decision differs between batch 1
  and batch 32, and at each batch width the chosen plan is measured
  faster (simulated cycles) than the plan chosen for the other width.
* **Branch-parallel dispatch beats sequential** — a fan-out DAG lowered
  onto a replica pool executes its independent branches concurrently
  (level dispatch overlaps the replicas' batching windows), beating the
  one-op-at-a-time baseline wall-clock while staying bitwise exact.

``python benchmarks/run_bench.py`` persists the quantitative sweeps into
``BENCH_throughput.json`` under the ``compiler`` and ``compiler_dag``
sections.
"""

import asyncio
import time

import numpy as np

from benchmarks.conftest import (
    measured_sharding_cycles,
    run_once,
    timed_pool_plan_run,
)
from repro.compiler import (
    ModelGraph,
    SoCCostModel,
    choose_sharding,
    compile_for_soc,
    profile_replicas,
    replica_cost_fn,
)
from repro.compiler.costmodel import ReplicaProfile
from repro.core.backends import IdealDigitalBackend
from repro.eval import make_fanout_graph, make_layer_stack
from repro.serving import (
    GemmEngine,
    InferenceServer,
    Replica,
    make_column_workload,
    poisson_arrival_times,
    run_open_loop,
)
from repro.system import PhotonicSoC


class SlowDigitalBackend(IdealDigitalBackend):
    """Exact digital product with a fixed per-call service delay.

    Stands in for a congested or distant replica: functionally identical,
    physically slower — the case cost-based routing exists for.
    """

    name = "slow-digital"

    def __init__(self, delay_s: float = 0.003):
        self.delay_s = float(delay_s)

    def matmul(self, weights, inputs):
        time.sleep(self.delay_s)
        return super().matmul(weights, inputs)

    def schedule_latency_s(self, n_columns: int) -> float:
        return self.delay_s


def _cluster(n_pes):
    soc = PhotonicSoC()
    for _ in range(n_pes):
        soc.add_photonic_accelerator()
    return soc


def test_bench_k_sharded_plan_beats_naive_serial(benchmark, bench_rng):
    """Compiled 3-layer plan on 2 PEs vs naive single-PE serial execution."""
    mats = make_layer_stack([24, 32, 24, 16], rng=0)
    graph = ModelGraph.from_matrices(mats)
    columns = bench_rng.integers(-3, 4, size=(24, 4))

    def compiled_run():
        soc = _cluster(2)
        cost_model = SoCCostModel.calibrate(soc)
        plan = compile_for_soc(graph, soc, cost_model=cost_model, cache=None)
        return plan, plan.run(columns)

    plan, planned = run_once(benchmark, compiled_run)

    naive_soc = _cluster(1)
    naive = columns.astype(np.int64)
    naive_cycles = 0
    for weights in mats:
        report = naive_soc.run_tiled_gemm(weights, naive, tile_rows=weights.shape[0])
        naive = report.result
        naive_cycles += report.pipeline["serial_cycles"]
    assert np.array_equal(planned, naive)  # plan == naive, bit for bit
    assert plan.total_cycles < naive_cycles  # and strictly cheaper


def test_bench_k_sharding_overlap_contract(bench_rng):
    """K-sharded GeMM: exact, and pipelined below the serial phase sum."""
    weights = bench_rng.integers(-4, 5, size=(24, 32))
    inputs = bench_rng.integers(-4, 5, size=(32, 8))
    soc = _cluster(2)
    report = soc.run_tiled_gemm(weights, inputs, k_shards=2)
    assert np.array_equal(report.result, weights @ inputs)
    assert report.pipeline["pipelined_cycles"] < report.pipeline["serial_cycles"]


def test_bench_batch_aware_sharding_flips_and_wins(bench_rng):
    """Batch width flips the rows-vs-K decision, and each choice wins its batch.

    The short-wide layer (M=2, K=16) on a calibrated 2-PE cluster: at
    batch 1 row sharding avoids the K-shard reduction; at batch 32 the
    duplicated input DMA of row sharding dominates and K-sharding wins.
    Both claims are checked against *measured* simulated cycles, not just
    the cost model's own predictions.
    """
    n_rows, n_inner = 2, 16
    soc = _cluster(2)
    cost_model = SoCCostModel.calibrate(soc)
    narrow = choose_sharding(n_rows, n_inner, 1, 2, cost_model=cost_model)
    wide = choose_sharding(n_rows, n_inner, 32, 2, cost_model=cost_model)
    assert (narrow.strategy, narrow.k_shards) != (wide.strategy, wide.k_shards), (
        "expected the sharding decision to flip between batch 1 and batch 32"
    )

    weights = bench_rng.integers(-3, 4, size=(n_rows, n_inner))

    for n_cols, chosen, other in ((1, narrow, wide), (32, wide, narrow)):
        inputs = bench_rng.integers(-3, 4, size=(n_inner, n_cols))
        chosen_cycles = measured_sharding_cycles(2, weights, inputs, chosen)
        other_cycles = measured_sharding_cycles(2, weights, inputs, other)
        assert chosen_cycles < other_cycles, (
            f"batch {n_cols}: chose {chosen.strategy}/{chosen.k_shards} "
            f"({chosen_cycles} cycles) but {other.strategy}/{other.k_shards} "
            f"measured faster ({other_cycles} cycles)"
        )


def test_bench_branch_parallel_dispatch_beats_sequential(benchmark):
    """Level-parallel DAG dispatch < sequential on a fan-out graph, exactly.

    Four parallel dense branches lowered onto a 2-replica pool whose
    batchers hold a straggler window: sequential execution pays the window
    once per dense op (5x), level dispatch pays it once per level (2x).
    """
    n_features, n_branches = 8, 4
    max_wait_s = 0.01
    graph = make_fanout_graph(n_features, n_branches=n_branches, rng=0)
    profiles = {
        "r0": ReplicaProfile(name="r0", service_s=1e-4, macs=64),
        "r1": ReplicaProfile(name="r1", service_s=1e-4, macs=64),
    }
    column = np.linspace(-2, 2, n_features)

    def both():
        # wall-clock comparison: retry once before failing so a noisy
        # CI neighbor can't flake the ~2.5x margin
        for attempt in range(2):
            pair = tuple(
                asyncio.run(
                    timed_pool_plan_run(graph, profiles, max_wait_s, column, mode)
                )
                for mode in ("sequential", "levels")
            )
            if pair[1] < pair[0]:
                break
        return pair

    sequential_s, levels_s = run_once(benchmark, both)
    assert levels_s < sequential_s, (
        f"level dispatch ({levels_s * 1e3:.1f} ms) should beat sequential "
        f"({sequential_s * 1e3:.1f} ms) on independent branches"
    )


def test_bench_cost_based_routing_beats_round_robin(benchmark):
    """p99 latency: cost-based < round-robin on a heterogeneous 3-replica pool."""
    shape = (12, 12)
    n_requests = 90
    weights = np.random.default_rng(0).normal(size=shape)

    def make_pool():
        return [
            Replica("fast0", GemmEngine(weights=weights, name="fast0"),
                    max_queue_depth=256),
            Replica("fast1", GemmEngine(weights=weights, name="fast1"),
                    max_queue_depth=256),
            Replica(
                "slow",
                GemmEngine(
                    backend=SlowDigitalBackend(delay_s=0.003),
                    weights=weights,
                    name="slow",
                ),
                max_queue_depth=256,
            ),
        ]

    async def measure(policy):
        replicas = make_pool()
        cost_fn = None
        if policy == "cost-based":
            cost_fn = replica_cost_fn(profile_replicas(replicas, repeats=2))
        async with InferenceServer(replicas, policy=policy, cost_fn=cost_fn) as server:
            offered_hz = 2000.0  # saturating: far beyond the slow replica
            trace = poisson_arrival_times(offered_hz, n_requests, rng=1)
            workload = make_column_workload(shape[1], n_requests, rng=2)
            report = await run_open_loop(
                server, trace, workload, offered_rate_hz=offered_hz
            )
        return report.telemetry["latency"]["p99_ms"]

    def both():
        # wall-clock comparison: retry once before failing so a noisy
        # CI neighbor can't flake the ~10x margin
        for attempt in range(2):
            pair = (
                asyncio.run(measure("round-robin")),
                asyncio.run(measure("cost-based")),
            )
            if pair[1] < pair[0]:
                break
        return pair

    round_robin_p99, cost_based_p99 = run_once(benchmark, both)
    assert cost_based_p99 < round_robin_p99, (
        f"cost-based p99 {cost_based_p99:.2f} ms should beat "
        f"round-robin p99 {round_robin_p99:.2f} ms"
    )
