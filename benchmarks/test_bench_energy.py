"""E4: non-volatile PCM weights vs thermo-optic tuning power.

Regenerates the energy argument of Sections 2-3: the per-inference energy
of a photonic MVM core whose weights are held by thermo-optic heaters
(static power for as long as the weights are resident) versus multilevel
PCM phase shifters (one-off programming energy, zero holding power), as a
function of mesh size and of how many inferences reuse the same weights.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core import PhotonicCoreEnergyModel, combined_component_count
from repro.eval import format_table
from repro.mesh import ClementsMesh

MESH_SIZES = (8, 16, 32)
REUSE_COUNTS = (100, 10_000, 1_000_000)


def _energy_rows():
    rows = []
    for n in MESH_SIZES:
        counts = combined_component_count(ClementsMesh(n), ClementsMesh(n))
        thermo = PhotonicCoreEnergyModel(n, n, counts, non_volatile=False)
        pcm = PhotonicCoreEnergyModel(n, n, counts, non_volatile=True)
        for reuse in REUSE_COUNTS:
            thermo_energy = thermo.inference_energy_j(reuse) / reuse
            pcm_energy = pcm.inference_energy_j(reuse) / reuse
            rows.append([
                n, reuse,
                thermo.static_mesh_power_w,
                thermo_energy / (n * n),
                pcm_energy / (n * n),
                thermo_energy / pcm_energy,
            ])
    return rows


def test_bench_pcm_vs_thermo_energy(benchmark):
    rows = run_once(benchmark, _energy_rows)
    print("\n[E4] energy per inference: thermo-optic vs PCM weight storage")
    print(format_table(
        ["N", "inferences", "thermo static power (W)",
         "thermo E/MAC (J)", "PCM E/MAC (J)", "thermo/PCM ratio"],
        rows,
    ))
    ratios = {(row[0], row[1]): row[5] for row in rows}
    # PCM always wins, and the advantage grows with mesh size (more shifters
    # to hold) at fixed reuse.
    assert all(ratio > 1.0 for ratio in ratios.values())
    assert ratios[(32, 10_000)] > ratios[(8, 10_000)]
    # Amortising the one-off programming over more inferences keeps the PCM
    # advantage roughly constant or better (never collapses to parity).
    assert ratios[(16, 1_000_000)] > 2.0
