"""E9: microarchitecture-level fault-injection campaigns (reliability).

Regenerates the gem5-MARVEL reliability analysis: transient bit flips are
injected into the CPU register file and into main memory while the GeMM
workload runs, and every run is classified as masked / SDC / crash / hang.
"""

from benchmarks.conftest import run_once
from repro.eval import format_table, make_gemm_workload
from repro.system import PhotonicSoC, run_fault_campaign

N_INJECTIONS = 15


def _campaigns():
    weights, inputs = make_gemm_workload(4, 4, 3, rng=0)
    golden = weights @ inputs

    def workload(soc):
        return soc.run_cpu_gemm(weights, inputs)

    campaigns = {}
    for target in ("cpu_register", "main_memory"):
        campaigns[target] = run_fault_campaign(
            workload, PhotonicSoC, golden,
            n_injections=N_INJECTIONS, target=target, fault_type="transient", rng=3,
        )
    return campaigns


def test_bench_fault_injection_campaign(benchmark):
    campaigns = run_once(benchmark, _campaigns)
    rows = []
    for target, campaign in campaigns.items():
        counts = campaign.counts()
        rows.append([
            target, campaign.n_runs, counts["masked"], counts["sdc"],
            counts["crash"], counts["hang"],
        ])
    print("\n[E9] transient fault injection (CPU GeMM workload)")
    print(format_table(
        ["target", "injections", "masked", "SDC", "crash", "hang"], rows
    ))
    for target, campaign in campaigns.items():
        # Every injection is classified, and the taxonomy is exhaustive.
        assert sum(campaign.counts().values()) == N_INJECTIONS
        # Transient single-bit faults are mostly masked (the usual result of
        # register/memory fault campaigns), but not all of them.
        assert campaign.rate("masked") >= 0.3
    combined_unmasked = sum(
        campaign.rate("sdc") + campaign.rate("crash") + campaign.rate("hang")
        for campaign in campaigns.values()
    )
    assert combined_unmasked > 0.0
