"""E2: matrix expressivity (universality) versus programmable resources.

Regenerates the expressivity study: the Fldzhyan parallel-phase-shifter
mesh approaches universality only once it has enough phase-shifter columns,
while the Clements mesh is universal by construction with N(N-1) phases.
"""

from benchmarks.conftest import run_once
from repro.eval import format_table
from repro.mesh import ClementsMesh, FldzhyanMesh, evaluate_expressivity, expressivity_vs_layers


def _expressivity_sweep(n_modes=4, layer_counts=(2, 4, 8), n_targets=3):
    results = expressivity_vs_layers(
        lambda layers: FldzhyanMesh(n_modes, n_layers=layers),
        layer_counts=layer_counts,
        n_targets=n_targets,
        fidelity_threshold=0.99,
        rng=0,
    )
    clements = evaluate_expressivity(lambda: ClementsMesh(n_modes), n_targets=n_targets, rng=1)
    return results, clements


def test_bench_expressivity_vs_layers(benchmark):
    results, clements = run_once(benchmark, _expressivity_sweep)
    rows = [
        ["fldzhyan", result.n_phase_shifters, result.mean_fidelity, result.coverage]
        for result in results
    ]
    rows.append(["clements", clements.n_phase_shifters, clements.mean_fidelity, clements.coverage])
    print("\n[E2] expressivity vs programmable phase shifters (N=4)")
    print(format_table(["architecture", "phase shifters", "mean fidelity", "coverage@0.99"], rows))
    # Expressivity grows monotonically with the number of phase-shifter columns.
    fidelities = [result.mean_fidelity for result in results]
    assert fidelities[-1] >= fidelities[0]
    # With 2N columns the Fldzhyan design is numerically universal, like Clements.
    assert fidelities[-1] > 0.99
    assert clements.coverage == 1.0
