"""Ablation (DESIGN.md §5): calibration iterations vs recovered fidelity.

Mesh programming in this repo relies on analytic decomposition plus an
iterative measure-and-predistort calibration loop to absorb systematic
hardware errors.  This ablation sweeps the number of calibration iterations
for a chip with fixed (seeded) phase and coupler errors and reports how much
fidelity each extra iteration buys — justifying the default of 3 iterations
used elsewhere.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core import calibrate_mesh
from repro.eval import format_table
from repro.mesh import ClementsMesh, MeshErrorModel
from repro.utils import random_unitary

MAX_ITERATIONS = 4


def _calibration_sweep(n_modes=6, n_chips=3):
    target = random_unitary(n_modes, rng=17)
    rows = []
    fidelity_by_iteration = np.zeros(MAX_ITERATIONS + 1)
    for chip in range(n_chips):
        error = MeshErrorModel(
            phase_error_std=0.06, coupler_ratio_error_std=0.02, rng=100 + chip
        )
        report = calibrate_mesh(ClementsMesh(n_modes), target, error, n_iterations=MAX_ITERATIONS)
        fidelity_by_iteration += np.asarray(report.fidelities)
    fidelity_by_iteration /= n_chips
    for iteration, fidelity in enumerate(fidelity_by_iteration):
        rows.append([iteration, float(fidelity)])
    return rows


def test_bench_calibration_iterations(benchmark):
    rows = run_once(benchmark, _calibration_sweep)
    print("\n[ablation] calibration iterations vs mean fidelity (N=6, 3 chips)")
    print(format_table(["iterations", "mean fidelity"], rows))
    fidelities = [row[1] for row in rows]
    # Uncalibrated chips sit well below unit fidelity; each iteration helps,
    # with strongly diminishing returns after the second.
    assert fidelities[0] < 0.999
    assert all(later >= earlier - 1e-9 for earlier, later in zip(fidelities, fidelities[1:]))
    assert fidelities[2] > 0.999
    assert fidelities[-1] - fidelities[2] < 0.01
