"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one experiment of DESIGN.md (E1-E10): it prints
the paper-style table/series (visible with ``pytest -s``) and asserts the
qualitative shape of the result (who wins, what degrades), so a benchmark
run doubles as a reproduction check.  Timings come from pytest-benchmark.
"""

import numpy as np
import pytest


@pytest.fixture
def bench_rng():
    """Deterministic generator shared by the benchmark workloads."""
    return np.random.default_rng(2024)


def run_once(benchmark, function, *args, **kwargs):
    """Benchmark a heavyweight function with a single round.

    The experiments are deterministic simulations (not microbenchmarks), so
    one round is enough for the timing column and keeps the full harness
    fast.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
