"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one experiment of DESIGN.md (E1-E10): it prints
the paper-style table/series (visible with ``pytest -s``) and asserts the
qualitative shape of the result (who wins, what degrades), so a benchmark
run doubles as a reproduction check.  Timings come from pytest-benchmark.
"""

import numpy as np
import pytest


@pytest.fixture
def bench_rng():
    """Deterministic generator shared by the benchmark workloads."""
    return np.random.default_rng(2024)


def run_once(benchmark, function, *args, **kwargs):
    """Benchmark a heavyweight function with a single round.

    The experiments are deterministic simulations (not microbenchmarks), so
    one round is enough for the timing column and keeps the full harness
    fast.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def measured_sharding_cycles(n_pes, weights, inputs, decision):
    """Simulated cycles of one GeMM under a sharding decision, exactly.

    Runs the offload on a *fresh* PE cluster (event-scheduler clocks are
    absolute per SoC, so measurements never mix), asserts the result is
    bitwise exact, and returns the end-to-end cycles.  Shared by the
    batch-aware sharding contract test and ``run_bench.py``'s
    ``compiler_dag`` collector.
    """
    from repro.system import PhotonicSoC

    soc = PhotonicSoC()
    for _ in range(n_pes):
        soc.add_photonic_accelerator()
    report = soc.run_tiled_gemm(
        weights, inputs,
        k_shards=decision.k_shards if decision.strategy == "k" else None,
    )
    assert np.array_equal(report.result, weights @ inputs)
    return report.cycles


async def timed_pool_plan_run(graph, profiles, max_wait_s, column, concurrency):
    """Wall-time of one pool-plan execution on a fresh 2-replica pool.

    Compiles ``graph`` for a pool whose batchers hold a ``max_wait_s``
    straggler window, runs it once under the given concurrency mode,
    asserts the output is bitwise identical to the graph's reference
    forward, and returns the elapsed seconds.  Shared by the
    branch-parallel contract test and ``run_bench.py``.
    """
    import time

    from repro.compiler import compile_for_pool
    from repro.serving import GemmEngine, InferenceServer, Replica

    replicas = [
        Replica(name, GemmEngine(name=name), max_wait_s=max_wait_s)
        for name in sorted(profiles)
    ]
    plan = compile_for_pool(
        graph, replicas, profiles=profiles, strategy="balanced", cache=None
    )
    want = graph.reference_forward(column)[:, 0]
    async with InferenceServer(replicas) as server:
        started = time.perf_counter()
        out = await plan.run(server, column, concurrency=concurrency)
        elapsed = time.perf_counter() - started
    assert np.array_equal(out, want)  # concurrency never changes results
    return elapsed
