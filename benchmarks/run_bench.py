#!/usr/bin/env python
"""Run the throughput benchmark suite and persist a trajectory file.

Executes ``benchmarks/test_bench_throughput.py`` under pytest-benchmark
with ``--benchmark-json``, condenses the raw report into one record per
benchmark (mean/min seconds and ops/s), measures the ``soc_offload``
section (1/2/4-PE pipelined tiled-GeMM cycles and wall-time through the
full-system simulator) and writes/extends ``BENCH_throughput.json`` at the
repository root:

.. code-block:: json

    {
      "latest": {"<bench name>": {"mean_s": ..., "min_s": ..., "ops_per_s": ...}},
      "soc_offload": {"1pe": {"cycles": ..., "serial_cycles": ..., "wall_s": ...}},
      "history": [{"machine": ..., "results": {...}, "soc_offload": {...}}, ...]
    }

Future performance PRs compare their run against ``latest`` (and the
trajectory in ``history``) to prove a speedup or catch a regression.

Usage::

    python benchmarks/run_bench.py [--output BENCH_throughput.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = Path(__file__).resolve().parent / "test_bench_throughput.py"
MAX_HISTORY = 50


def run_benchmarks(raw_json: Path) -> int:
    """Run the throughput suite with pytest-benchmark; returns the exit code."""
    env_path = str(REPO_ROOT / "src")
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = env_path + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        sys.executable,
        "-m",
        "pytest",
        str(BENCH_FILE),
        "-q",
        f"--benchmark-json={raw_json}",
    ]
    return subprocess.call(command, cwd=str(REPO_ROOT), env=env)


def condense(raw_json: Path) -> dict:
    """Reduce the pytest-benchmark report to {name: {mean_s, min_s, ops_per_s}}."""
    report = json.loads(raw_json.read_text())
    results = {}
    for bench in report.get("benchmarks", []):
        stats = bench.get("stats", {})
        mean = stats.get("mean")
        results[bench["name"]] = {
            "mean_s": mean,
            "min_s": stats.get("min"),
            "ops_per_s": (1.0 / mean) if mean else None,
        }
    return results


def collect_soc_offload(pe_counts=(1, 2, 4), shape=(32, 16, 16)) -> dict:
    """Measure the pipelined multi-PE tiled GeMM on the full-system model.

    For each PE count the whole offload (host MMR configuration, sharded
    tile streams, double-buffered DMA/compute pipeline) runs once; the
    record keeps the simulated end-to-end cycles, the serial DMA + compute
    phase sum, the measured overlap and the simulator wall-time.
    """
    import time

    sys.path.insert(0, str(REPO_ROOT / "src"))
    import numpy as np

    from repro.eval import make_gemm_workload
    from repro.system import PhotonicSoC

    n_rows, n_inner, n_cols = shape
    weights, inputs = make_gemm_workload(n_rows, n_inner, n_cols, rng=0)
    golden = weights @ inputs
    section = {}
    for n_pes in pe_counts:
        soc = PhotonicSoC()
        for _ in range(n_pes):
            soc.add_photonic_accelerator()
        started = time.perf_counter()
        report = soc.run_tiled_gemm(weights, inputs)
        wall_s = time.perf_counter() - started
        assert np.array_equal(report.result, golden), f"{n_pes}-PE result mismatch"
        section[f"{n_pes}pe"] = {
            "shape": list(shape),
            "cycles": report.cycles,
            "serial_cycles": report.pipeline["serial_cycles"],
            "critical_path_serial_cycles": report.pipeline["critical_path_serial_cycles"],
            "overlap_cycles": report.pipeline["overlap_cycles"],
            "intra_pe_overlap_cycles": report.pipeline["intra_pe_overlap_cycles"],
            "n_tiles": report.pipeline["n_tiles"],
            "wall_s": wall_s,
        }
    return section


def update_trajectory(output: Path, results: dict, soc_offload: dict) -> dict:
    """Write the condensed results, appending to any existing history."""
    record = {
        "machine": platform.node() or "unknown",
        "python": platform.python_version(),
        "results": results,
        "soc_offload": soc_offload,
    }
    payload = {"latest": results, "soc_offload": soc_offload, "history": []}
    if output.exists():
        try:
            previous = json.loads(output.read_text())
            payload["history"] = list(previous.get("history", []))
        except (json.JSONDecodeError, OSError):
            pass
    payload["history"].append(record)
    payload["history"] = payload["history"][-MAX_HISTORY:]
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_throughput.json",
        help="trajectory file to write (default: BENCH_throughput.json)",
    )
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        raw_json = Path(tmp) / "benchmark_raw.json"
        exit_code = run_benchmarks(raw_json)
        if not raw_json.exists():
            print("benchmark run produced no JSON report", file=sys.stderr)
            return exit_code or 1
        results = condense(raw_json)

    soc_offload = collect_soc_offload()
    update_trajectory(args.output, results, soc_offload)
    print(f"wrote {args.output} ({len(results)} benchmarks)")
    for name, stats in sorted(results.items()):
        mean = stats["mean_s"]
        print(f"  {name}: {mean * 1e3:.2f} ms/round" if mean else f"  {name}: n/a")
    for name, stats in sorted(soc_offload.items()):
        print(
            f"  soc_offload/{name}: {stats['cycles']} cycles "
            f"(serial {stats['serial_cycles']}, {stats['wall_s'] * 1e3:.2f} ms wall)"
        )
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
