#!/usr/bin/env python
"""Run the throughput benchmark suite and persist a trajectory file.

Executes ``benchmarks/test_bench_throughput.py`` under pytest-benchmark
with ``--benchmark-json``, condenses the raw report into one record per
benchmark (mean/min seconds and ops/s), measures the ``soc_offload``
section (1/2/4-PE pipelined tiled-GeMM cycles and wall-time through the
full-system simulator) and writes/extends ``BENCH_throughput.json`` at the
repository root:

.. code-block:: json

    {
      "latest": {"<bench name>": {"mean_s": ..., "min_s": ..., "ops_per_s": ...}},
      "soc_offload": {"1pe": {"cycles": ..., "serial_cycles": ..., "wall_s": ...}},
      "serving": {"analog-photonic": {"modes": {"batch1": ..., "dynamic": ...}}},
      "compiler": {"plan_vs_naive": {...}, "k_sharding": {...}, "routing": {...}},
      "compiler_dag": {"diamond": {...}, "batch_aware_sharding": {...},
                       "branch_parallel": {...}},
      "soc_datapath": {"k_sharding": {...}, "branch_fusion": {...}},
      "serving_fabric": {"single_process": {...}, "fabric": {...},
                         "saturated_speedup_fabric_vs_single_process": ...},
      "snn_serving": {"batched_vs_serial": {...}, "served": {...},
                      "online_stdp": {...}, "fault_campaign": {...}},
      "observability": {"untraced_hz": ..., "traced_hz": ...,
                        "overhead_frac": ..., "bitwise_parity": ...},
      "adaptive": {"online_refit": {...}, "flip_point": {...}},
      "history": [{"machine": ..., "results": {...}, "soc_offload": {...}}, ...]
    }

The ``serving`` section holds the traffic benchmark: offered load vs.
achieved throughput with p50/p99 latency and queue-depth stats for
batch-size-1 serial serving and dynamic micro-batching on each replica
backend, plus the measured speedup at saturating offered load.

The ``compiler`` section holds the model-compiler benchmark: compiled
multi-layer plan cycles vs naive single-PE serial execution, the K-sharded
GeMM overlap figures, and cost-based vs round-robin routing p99 latency on
a heterogeneous 3-replica pool at saturating offered load.

The ``compiler_dag`` section holds the branching-DAG benchmark: the
diamond-graph equivalence figures on both executors, the batch-aware
rows-vs-K sharding flip (decision and measured cycles at batch 1 vs 32),
and the branch-parallel speedup of level dispatch over sequential
execution on a fan-out graph served by a replica pool.

The ``serving_fabric`` section holds the multi-process serving benchmark:
the gateway-over-worker-processes fabric vs one single-process asyncio
server on the same compute-heavy engine at a saturating offered load, with
a bitwise request-equivalence oracle, per-worker completion counts and
p50/p99 latency for both sides.

The ``soc_datapath`` section holds the zero-copy datapath benchmark:
staged vs descriptor-based in-place K-shard operand streaming (cycles,
staging traffic, per-engine DMA bytes) and sequential vs branch-fused
multi-head lowering at 2 and 4 PEs (measured and cost-model-predicted
cycles), both with bitwise oracles.

The ``snn_serving`` section holds the spiking serving benchmark: the fused
multi-pattern run vs per-request serial runs (bitwise oracle, spikes/s),
the served batch1-vs-dynamic sweep, online STDP reproducibility and
updates/s, and the stuck-synapse fault-degradation curve (p99 latency and
spike-count accuracy vs fault count) measured under live load.

The ``observability`` section holds the tracing-plane benchmark: traced vs
untraced closed-loop throughput on the compute-heavy engine (quick mode
asserts at most 5% overhead), the bitwise served-output/cycle-count parity
oracle with tracing on vs off, the Chrome-trace export validation count,
and a drift-monitor smoke (a miscalibrated cost model must be flagged).

The ``adaptive`` section holds the closed-loop replanning benchmark: the
predicted-cycle error before vs after an online cost-model refit under
shifted traffic (post-calibration bus contention), and the p99 latency
across a batch-width flip-point crossing with automatic replanning on vs
off — with a bitwise old-plan/new-plan parity oracle and an
exactly-one-recompile contract.

Future performance PRs compare their run against ``latest`` (and the
trajectory in ``history``) to prove a speedup or catch a regression.

Usage::

    python benchmarks/run_bench.py [--output BENCH_throughput.json] [--quick]

``--quick`` runs a CI-smoke variant: small sizes, no pytest-benchmark
suite, and nothing written to the trajectory file.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILES = [
    Path(__file__).resolve().parent / "test_bench_throughput.py",
    Path(__file__).resolve().parent / "test_bench_serving.py",
]
MAX_HISTORY = 50


def run_benchmarks(raw_json: Path) -> int:
    """Run the throughput suite with pytest-benchmark; returns the exit code."""
    env_path = str(REPO_ROOT / "src")
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = env_path + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        sys.executable,
        "-m",
        "pytest",
        *(str(path) for path in BENCH_FILES),
        "-q",
        f"--benchmark-json={raw_json}",
    ]
    return subprocess.call(command, cwd=str(REPO_ROOT), env=env)


def condense(raw_json: Path) -> dict:
    """Reduce the pytest-benchmark report to {name: {mean_s, min_s, ops_per_s}}."""
    report = json.loads(raw_json.read_text())
    results = {}
    for bench in report.get("benchmarks", []):
        stats = bench.get("stats", {})
        mean = stats.get("mean")
        results[bench["name"]] = {
            "mean_s": mean,
            "min_s": stats.get("min"),
            "ops_per_s": (1.0 / mean) if mean else None,
        }
    return results


def collect_soc_offload(pe_counts=(1, 2, 4), shape=(32, 16, 16)) -> dict:
    """Measure the pipelined multi-PE tiled GeMM on the full-system model.

    For each PE count the whole offload (host MMR configuration, sharded
    tile streams, double-buffered DMA/compute pipeline) runs once; the
    record keeps the simulated end-to-end cycles, the serial DMA + compute
    phase sum, the measured overlap and the simulator wall-time.
    """
    import time

    sys.path.insert(0, str(REPO_ROOT / "src"))
    import numpy as np

    from repro.eval import make_gemm_workload
    from repro.system import PhotonicSoC

    n_rows, n_inner, n_cols = shape
    weights, inputs = make_gemm_workload(n_rows, n_inner, n_cols, rng=0)
    golden = weights @ inputs
    section = {}
    for n_pes in pe_counts:
        soc = PhotonicSoC()
        for _ in range(n_pes):
            soc.add_photonic_accelerator()
        started = time.perf_counter()
        report = soc.run_tiled_gemm(weights, inputs)
        wall_s = time.perf_counter() - started
        assert np.array_equal(report.result, golden), f"{n_pes}-PE result mismatch"
        section[f"{n_pes}pe"] = {
            "shape": list(shape),
            "cycles": report.cycles,
            "serial_cycles": report.pipeline["serial_cycles"],
            "critical_path_serial_cycles": report.pipeline["critical_path_serial_cycles"],
            "overlap_cycles": report.pipeline["overlap_cycles"],
            "intra_pe_overlap_cycles": report.pipeline["intra_pe_overlap_cycles"],
            "n_tiles": report.pipeline["n_tiles"],
            "wall_s": wall_s,
        }
    return section


def collect_soc_datapath(quick: bool = False) -> dict:
    """Zero-copy datapath benchmark: in-place K-shards and branch fusion.

    Two legs, both with bitwise oracles so the trajectory never records a
    speedup bought with wrong numbers:

    * ``k_sharding``: the same K-sharded GeMM run twice on fresh 2-PE SoCs
      — the legacy staged layout (operand slices copied to the staging
      region) vs the descriptor-based in-place datapath (strided DMA reads
      straight from the operand matrices).  Records cycles, staging
      traffic and per-engine DMA bytes; the in-place run must not be
      slower and must perform zero staging writes.
    * ``branch_fusion``: a multi-head model compiled twice per cluster
      size — per-branch lowering (``fuse="never"``) vs the cost-model
      driven fused stacked offload (``fuse="auto"``).  Records measured
      and predicted cycles; the fused plan must not be slower where the
      model predicts a win.
    """
    if str(REPO_ROOT / "src") not in sys.path:
        sys.path.insert(0, str(REPO_ROOT / "src"))
    import numpy as np

    from repro.compiler import SoCCostModel, compile_for_soc
    from repro.eval import make_gemm_workload, make_multi_head_graph
    from repro.system import PhotonicSoC

    def cluster(n_pes):
        soc = PhotonicSoC()
        for _ in range(n_pes):
            soc.add_photonic_accelerator()
        return soc

    # -- staged vs in-place K-sharded operand streaming ------------------- #
    shape = (16, 16, 8) if quick else (32, 16, 16)
    weights, inputs = make_gemm_workload(*shape, rng=0)
    golden = weights @ inputs
    points = {}
    for mode in ("staged", "in-place"):
        soc = cluster(2)
        report = soc.run_tiled_gemm(weights, inputs, k_shards=2, k_staging=mode)
        assert np.array_equal(report.result, golden), f"{mode} K-shard mismatch"
        points[mode] = {
            "cycles": report.cycles,
            "pipelined_cycles": report.pipeline["pipelined_cycles"],
            "serial_cycles": report.pipeline["serial_cycles"],
            "staging_cycles": report.pipeline["staging_cycles"],
            "staging_words": report.pipeline["staging_words"],
            "dma_bytes_moved": {
                name: stats["bytes_moved"] for name, stats in report.dma.items()
            },
        }
    assert points["in-place"]["cycles"] <= points["staged"]["cycles"], (
        "in-place K-sharding regressed past the staged baseline"
    )
    assert points["in-place"]["staging_words"] == 0, (
        "in-place K-sharding still writes to the staging region"
    )
    k_sharding = {
        "shape": list(shape),
        "k_shards": 2,
        "n_pes": 2,
        "exact": True,
        "speedup": points["staged"]["cycles"] / points["in-place"]["cycles"],
        **points,
    }

    # -- sequential vs branch-fused multi-head lowering ------------------- #
    graph = make_multi_head_graph(n_features=12, head_sizes=(3, 3, 3, 3), rng=2)
    columns = np.arange(12 * 2).reshape(12, 2) % 7 - 3
    reference = graph.reference_forward(columns).astype(np.int64)
    pe_counts = (2,) if quick else (2, 4)
    fusion_points = {}
    for n_pes in pe_counts:
        cost_model = SoCCostModel.calibrate(cluster(n_pes))
        fused = compile_for_soc(
            graph, cluster(n_pes), cost_model=cost_model, n_columns=2, cache=None
        )
        plain = compile_for_soc(
            graph, cluster(n_pes), cost_model=cost_model, n_columns=2,
            fuse="never", cache=None,
        )
        assert np.array_equal(fused.run(columns), reference), "fused plan mismatch"
        assert np.array_equal(plain.run(columns), reference), "plain plan mismatch"
        fused_steps = [s for s in fused.steps if s.kind == "fused-dense"]
        assert fused_steps, "cost model declined fusion on the benchmark shape"
        assert fused.total_cycles <= plain.total_cycles, (
            f"{n_pes}-PE fused plan regressed past sequential lowering"
        )
        step = fused_steps[0]
        fusion_points[f"{n_pes}pe"] = {
            "fused_cycles": fused.total_cycles,
            "sequential_cycles": plain.total_cycles,
            "speedup": plain.total_cycles / fused.total_cycles,
            "predicted_fused_cycles": step.predicted_fused_cycles,
            "predicted_serial_cycles": step.predicted_serial_cycles,
            "offloads_fused": len(fused.reports),
            "offloads_sequential": len(plain.reports),
        }
    branch_fusion = {
        "graph": "multi-head (12 features, 4x3 heads)",
        "n_columns": 2,
        "exact": True,
        **fusion_points,
    }
    return {"k_sharding": k_sharding, "branch_fusion": branch_fusion}


def collect_serving(quick: bool = False) -> dict:
    """Traffic benchmark: offered load vs. achieved throughput and latency.

    For each replica backend (``ideal-digital`` and ``analog-photonic``)
    and each serving mode (``batch1`` = serial batch-size-1 baseline,
    ``dynamic`` = micro-batching up to 32), a seeded Poisson arrival trace
    is replayed open-loop at offered rates of 0.5x, 2x and 8x the
    backend's measured single-request capacity.  The 8x point saturates
    the replica: achieved throughput there is the serving capacity, and
    ``saturated_speedup_dynamic_vs_batch1`` is the dynamic-batching win.
    """
    import asyncio

    if str(REPO_ROOT / "src") not in sys.path:
        sys.path.insert(0, str(REPO_ROOT / "src"))
    import numpy as np

    from repro.serving import (
        GemmEngine,
        InferenceServer,
        Replica,
        make_column_workload,
        poisson_arrival_times,
        run_open_loop,
    )
    from repro.utils.rng import ensure_rng

    shape = (16, 16)
    n_requests = 60 if quick else 240
    max_batch = 64
    rate_multipliers = (0.5, 2.0, 8.0)
    weights = ensure_rng(0).normal(size=shape)

    def make_engine(backend_name):
        kwargs = {"rng": 0} if backend_name == "analog-photonic" else {}
        return GemmEngine(backend=backend_name, weights=weights, **kwargs)

    async def measure(backend_name, mode, offered_hz):
        engine = make_engine(backend_name)
        engine.compile(None)  # program the mesh outside the timed window
        # greedy coalescing (max_wait_s=0): a batch is whatever has queued
        # behind the in-flight one, so light load stays at serial latency
        # while saturation serves in full fused batches
        replica = Replica(
            "r0",
            engine,
            max_batch=1 if mode == "batch1" else max_batch,
            max_wait_s=0.0,
            max_queue_depth=4 * max_batch,
        )
        async with InferenceServer([replica]) as server:
            trace = poisson_arrival_times(offered_hz, n_requests, rng=1)
            workload = make_column_workload(shape[1], n_requests, rng=2)
            report = await run_open_loop(
                server, trace, workload, offered_rate_hz=offered_hz
            )
        telemetry = report.telemetry
        return {
            "offered_hz": offered_hz,
            "achieved_hz": report.achieved_hz,
            "completed": report.completed,
            "rejected": report.rejected,
            "p50_ms": telemetry["latency"]["p50_ms"],
            "p99_ms": telemetry["latency"]["p99_ms"],
            "max_queue_depth": telemetry["queue_depth"]["max"],
            "mean_queue_depth": telemetry["queue_depth"]["mean"],
            "mean_batch": telemetry["replicas"]["r0"]["mean_batch"],
        }

    def serial_capacity_hz(backend_name):
        import time

        engine = make_engine(backend_name)
        column = np.zeros((shape[1], 1))
        engine.run_batch(None, column)  # compile outside the timed window
        best = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            for _ in range(10):
                engine.run_batch(None, column)
            best = min(best, (time.perf_counter() - started) / 10)
        return 1.0 / best

    section = {}
    for backend_name in ("ideal-digital", "analog-photonic"):
        capacity = serial_capacity_hz(backend_name)
        modes = {}
        for mode in ("batch1", "dynamic"):
            points = []
            for multiplier in rate_multipliers:
                offered = multiplier * capacity
                points.append(asyncio.run(measure(backend_name, mode, offered)))
            modes[mode] = {
                "offered_hz": [point["offered_hz"] for point in points],
                "achieved_hz": [point["achieved_hz"] for point in points],
                "p50_ms": [point["p50_ms"] for point in points],
                "p99_ms": [point["p99_ms"] for point in points],
                "rejected": [point["rejected"] for point in points],
                "max_queue_depth": [point["max_queue_depth"] for point in points],
                "mean_queue_depth": [point["mean_queue_depth"] for point in points],
                "mean_batch": [point["mean_batch"] for point in points],
            }
        saturated = {
            mode: modes[mode]["achieved_hz"][-1] for mode in ("batch1", "dynamic")
        }
        section[backend_name] = {
            "shape": list(shape),
            "n_requests": n_requests,
            "serial_capacity_hz": capacity,
            "modes": modes,
            "saturated_speedup_dynamic_vs_batch1": (
                saturated["dynamic"] / saturated["batch1"]
                if saturated["batch1"] > 0
                else None
            ),
        }
    return section


def collect_serving_fabric(quick: bool = False) -> dict:
    """Fabric benchmark: multi-process gateway vs single-process serving.

    The same compute-heavy engine (exact digital GeMM plus a blocking
    per-column service time, the modulator-occupancy analogue) is served
    two ways at a saturating open-loop offered load:

    * ``single_process`` — one asyncio :class:`InferenceServer` with
      ``n_workers`` replicas in one interpreter; engine calls execute
      inline on the event loop, so service times serialize.
    * ``fabric`` — a :class:`FabricGateway` over ``n_workers`` spawned
      worker processes; service times overlap across processes.

    Before the timed runs, a request-by-request equivalence pass proves
    the fabric's answers are bitwise-identical to the in-process server's.
    Side-effect-free (no trajectory mutation), so ``--quick`` runs it as
    the CI smoke for the fabric subsystem; the quick contract is
    conservative (fabric at least matches single-process) while the full
    run must clear 2x with a no-worse p99.
    """
    import asyncio
    import os

    if str(REPO_ROOT / "src") not in sys.path:
        sys.path.insert(0, str(REPO_ROOT / "src"))
    # spawned workers re-import repro: sys.path edits do not propagate to
    # spawn children, the environment variable does
    src_path = str(REPO_ROOT / "src")
    if src_path not in os.environ.get("PYTHONPATH", "").split(os.pathsep):
        os.environ["PYTHONPATH"] = src_path + (
            os.pathsep + os.environ["PYTHONPATH"]
            if os.environ.get("PYTHONPATH")
            else ""
        )
    import numpy as np

    from repro.serving import (
        FabricGateway,
        GemmEngine,
        InferenceServer,
        Replica,
        make_column_workload,
        make_worker_specs,
        poisson_arrival_times,
        run_open_loop,
    )
    from repro.utils.rng import ensure_rng

    shape = (16, 16)
    n_workers = 2 if quick else 4
    service_s = 0.003 if quick else 0.004
    n_requests = 60 if quick else 240
    max_batch = 8
    queue_depth = max(4 * n_requests, 256)
    weights = ensure_rng(0).normal(size=shape)
    engine_kwargs = {
        "weights": weights,
        "service_s_per_column": service_s,
        "spin_iters": 50,
    }
    # single-process capacity is one engine's service rate (calls execute
    # inline on the event loop regardless of replica count); offer several
    # times that so both servers run at saturation
    single_capacity_hz = 1.0 / service_s
    offered_hz = (4.0 if quick else 6.0) * single_capacity_hz

    def make_replicas():
        from repro.serving.fabric.engines import ComputeHeavyBackend

        return [
            Replica(
                f"w{index}",
                GemmEngine(
                    backend=ComputeHeavyBackend(
                        spin_iters=engine_kwargs["spin_iters"],
                        service_s_per_column=service_s,
                    ),
                    weights=weights,
                    name=f"w{index}",
                ),
                max_batch=max_batch,
                max_queue_depth=queue_depth,
            )
            for index in range(n_workers)
        ]

    def make_specs():
        return make_worker_specs(
            n_workers,
            "repro.serving.fabric.engines:make_compute_heavy_engine",
            engine_kwargs=engine_kwargs,
            max_batch=max_batch,
            max_queue_depth=queue_depth,
        )

    def summarize(report):
        telemetry = report.telemetry
        return {
            "offered_hz": report.offered_rate_hz,
            "achieved_hz": report.achieved_hz,
            "completed": report.completed,
            "rejected": report.rejected,
            "p50_ms": telemetry["latency"]["p50_ms"],
            "p99_ms": telemetry["latency"]["p99_ms"],
            "per_worker_completed": {
                name: stats["completed"]
                for name, stats in telemetry["replicas"].items()
            },
        }

    async def equivalence_pass():
        """Bitwise oracle: the fabric answers exactly like in-process serving."""
        workload = make_column_workload(shape[1], 16, rng=3)
        async with InferenceServer(make_replicas()) as server:
            expected = [
                await server.submit(workload(index), replica=f"w{index % n_workers}")
                for index in range(16)
            ]
        async with FabricGateway(make_specs(), max_pending=queue_depth) as gateway:
            actual = [
                await gateway.submit(workload(index), replica=f"w{index % n_workers}")
                for index in range(16)
            ]
        return all(
            np.array_equal(got, want) for got, want in zip(actual, expected)
        )

    async def measure_single():
        async with InferenceServer(make_replicas()) as server:
            trace = poisson_arrival_times(offered_hz, n_requests, rng=1)
            workload = make_column_workload(shape[1], n_requests, rng=2)
            return await run_open_loop(
                server, trace, workload, offered_rate_hz=offered_hz
            )

    async def measure_fabric():
        async with FabricGateway(make_specs(), max_pending=queue_depth) as gateway:
            trace = poisson_arrival_times(offered_hz, n_requests, rng=1)
            workload = make_column_workload(shape[1], n_requests, rng=2)
            return await run_open_loop(
                gateway, trace, workload, offered_rate_hz=offered_hz
            )

    bitwise_identical = bool(asyncio.run(equivalence_pass()))
    assert bitwise_identical, "fabric results diverged from in-process serving"

    # wall-clock comparison on a possibly noisy machine: one retry, then
    # assert — a speedup bought with dropped work would be meaningless, so
    # completion counts are checked first
    floor = 1.0 if quick else 2.0
    for attempt in range(2):
        single = summarize(asyncio.run(measure_single()))
        fabric = summarize(asyncio.run(measure_fabric()))
        assert single["completed"] == n_requests, "single-process run dropped work"
        assert fabric["completed"] == n_requests, "fabric run dropped work"
        speedup = (
            fabric["achieved_hz"] / single["achieved_hz"]
            if single["achieved_hz"] > 0
            else 0.0
        )
        if speedup >= floor and fabric["p99_ms"] <= single["p99_ms"]:
            break
    assert speedup >= floor, (
        f"fabric achieved {speedup:.2f}x single-process at saturation "
        f"(required >= {floor}x)"
    )
    assert fabric["p99_ms"] <= single["p99_ms"], (
        f"fabric p99 {fabric['p99_ms']:.1f} ms regressed past single-process "
        f"{single['p99_ms']:.1f} ms"
    )
    return {
        "shape": list(shape),
        "n_workers": n_workers,
        "n_requests": n_requests,
        "service_s_per_column": service_s,
        "max_batch": max_batch,
        "offered_hz": offered_hz,
        "bitwise_identical": bitwise_identical,
        "single_process": single,
        "fabric": fabric,
        "saturated_speedup_fabric_vs_single_process": speedup,
    }


def collect_compiler(quick: bool = False) -> dict:
    """Model-compiler benchmark: plan-vs-naive, K-sharding, cost routing.

    Side-effect-free (fresh SoCs and replica pools per measurement, no
    global registry or trajectory mutation), so ``--quick`` runs it as the
    CI smoke for the compiler subsystem.
    """
    import asyncio
    import time as time_mod

    if str(REPO_ROOT / "src") not in sys.path:
        sys.path.insert(0, str(REPO_ROOT / "src"))
    import numpy as np

    from repro.compiler import (
        ModelGraph,
        SoCCostModel,
        compile_for_soc,
        profile_replicas,
        replica_cost_fn,
    )
    from repro.core.backends import IdealDigitalBackend
    from repro.eval import make_gemm_workload, make_layer_stack
    from repro.serving import (
        GemmEngine,
        InferenceServer,
        Replica,
        make_column_workload,
        poisson_arrival_times,
        run_open_loop,
    )
    from repro.system import PhotonicSoC

    def cluster(n_pes):
        soc = PhotonicSoC()
        for _ in range(n_pes):
            soc.add_photonic_accelerator()
        return soc

    # -- compiled plan vs naive single-PE serial execution ---------------- #
    layer_sizes = [16, 16, 12, 8] if quick else [24, 32, 24, 16]
    mats = make_layer_stack(layer_sizes, rng=0)
    graph = ModelGraph.from_matrices(mats)
    columns = np.random.default_rng(1).integers(-3, 4, size=(layer_sizes[0], 4))
    soc = cluster(2)
    cost_model = SoCCostModel.calibrate(soc)
    started = time_mod.perf_counter()
    plan = compile_for_soc(graph, soc, cost_model=cost_model, cache=None)
    planned = plan.run(columns)
    plan_wall_s = time_mod.perf_counter() - started
    naive_soc = cluster(1)
    naive = columns.astype(np.int64)
    naive_cycles = 0
    for weights in mats:
        report = naive_soc.run_tiled_gemm(weights, naive, tile_rows=weights.shape[0])
        naive = report.result
        naive_cycles += report.pipeline["serial_cycles"]
    assert np.array_equal(planned, naive), "compiled plan diverged from naive"
    plan_vs_naive = {
        "layer_sizes": layer_sizes,
        "plan_cycles": plan.total_cycles,
        "predicted_cycles": plan.predicted_cycles,
        "naive_serial_cycles": naive_cycles,
        "speedup": naive_cycles / plan.total_cycles if plan.total_cycles else None,
        "exact": True,
        "wall_s": plan_wall_s,
    }

    # -- K-sharded GeMM overlap ------------------------------------------- #
    shape = (16, 16, 8) if quick else (24, 32, 8)
    weights, inputs = make_gemm_workload(*shape, rng=0)
    k_soc = cluster(2)
    k_report = k_soc.run_tiled_gemm(weights, inputs, k_shards=2)
    assert np.array_equal(k_report.result, weights @ inputs), "K-shard mismatch"
    k_sharding = {
        "shape": list(shape),
        "k_shards": 2,
        "pipelined_cycles": k_report.pipeline["pipelined_cycles"],
        "serial_cycles": k_report.pipeline["serial_cycles"],
        "overlap_cycles": k_report.pipeline["overlap_cycles"],
        "accumulate_cycles": k_report.pipeline["accumulate_cycles"],
        "exact": True,
    }

    # -- cost-based vs round-robin routing on a heterogeneous pool -------- #
    class SlowDigitalBackend(IdealDigitalBackend):
        name = "slow-digital"

        def __init__(self, delay_s):
            self.delay_s = float(delay_s)

        def matmul(self, weights, inputs):
            time_mod.sleep(self.delay_s)
            return super().matmul(weights, inputs)

        def schedule_latency_s(self, n_columns):
            return self.delay_s

    pool_shape = (12, 12)
    n_requests = 45 if quick else 120
    pool_weights = np.random.default_rng(0).normal(size=pool_shape)

    def make_pool():
        return [
            Replica("fast0", GemmEngine(weights=pool_weights, name="fast0"),
                    max_queue_depth=256),
            Replica("fast1", GemmEngine(weights=pool_weights, name="fast1"),
                    max_queue_depth=256),
            Replica(
                "slow",
                GemmEngine(
                    backend=SlowDigitalBackend(0.003),
                    weights=pool_weights,
                    name="slow",
                ),
                max_queue_depth=256,
            ),
        ]

    async def measure(policy):
        replicas = make_pool()
        cost_fn = None
        if policy == "cost-based":
            cost_fn = replica_cost_fn(profile_replicas(replicas, repeats=2))
        async with InferenceServer(replicas, policy=policy, cost_fn=cost_fn) as server:
            offered_hz = 2000.0
            trace = poisson_arrival_times(offered_hz, n_requests, rng=1)
            workload = make_column_workload(pool_shape[1], n_requests, rng=2)
            report = await run_open_loop(
                server, trace, workload, offered_rate_hz=offered_hz
            )
        telemetry = report.telemetry
        return {
            "p50_ms": telemetry["latency"]["p50_ms"],
            "p99_ms": telemetry["latency"]["p99_ms"],
            "achieved_hz": report.achieved_hz,
            "per_replica_completed": {
                name: stats["completed"]
                for name, stats in telemetry["replicas"].items()
            },
        }

    # wall-clock comparison on a possibly noisy machine: one retry, then
    # record whatever was measured — the hard contract lives in
    # benchmarks/test_bench_compiler.py, and a noisy run must not abort
    # the whole trajectory collection
    for attempt in range(2):
        round_robin = asyncio.run(measure("round-robin"))
        cost_based = asyncio.run(measure("cost-based"))
        if cost_based["p99_ms"] < round_robin["p99_ms"]:
            break
    routing = {
        "cost_based_beats_round_robin": bool(
            cost_based["p99_ms"] < round_robin["p99_ms"]
        ),
        "pool": "2x ideal-digital + 1x slow-digital (3 ms/call)",
        "n_requests": n_requests,
        "offered_hz": 2000.0,
        "round_robin": round_robin,
        "cost_based": cost_based,
        "p99_speedup": (
            round_robin["p99_ms"] / cost_based["p99_ms"]
            if cost_based["p99_ms"] > 0
            else None
        ),
    }
    return {
        "plan_vs_naive": plan_vs_naive,
        "k_sharding": k_sharding,
        "routing": routing,
    }


def collect_compiler_dag(quick: bool = False) -> dict:
    """Branching-DAG benchmark: diamond equivalence, batch flip, branches.

    Side-effect-free (fresh SoCs and replica pools per measurement), so
    ``--quick`` runs it as the CI smoke for the DAG lowering path.
    """
    import asyncio

    if str(REPO_ROOT / "src") not in sys.path:
        sys.path.insert(0, str(REPO_ROOT / "src"))
    if str(REPO_ROOT) not in sys.path:
        sys.path.insert(0, str(REPO_ROOT))  # for benchmarks.conftest helpers
    import numpy as np

    from benchmarks.conftest import measured_sharding_cycles, timed_pool_plan_run
    from repro.compiler import (
        SoCCostModel,
        choose_sharding,
        compile_for_pool,
        compile_for_soc,
    )
    from repro.compiler.costmodel import ReplicaProfile
    from repro.eval import make_diamond_graph, make_fanout_graph
    from repro.serving import GemmEngine, InferenceServer, Replica
    from repro.system import PhotonicSoC

    def cluster(n_pes):
        soc = PhotonicSoC()
        for _ in range(n_pes):
            soc.add_photonic_accelerator()
        return soc

    # -- diamond DAG: bitwise equivalence on both executors --------------- #
    n_features = 8 if quick else 16
    graph = make_diamond_graph(n_features, n_outputs=4, rng=0)
    columns = np.random.default_rng(1).integers(-2, 3, size=(n_features, 4))
    soc = cluster(2)
    plan = compile_for_soc(graph, soc, cost_model=SoCCostModel.calibrate(soc),
                           cache=None)
    planned = plan.run(columns)
    soc_exact = bool(
        np.array_equal(planned, graph.reference_forward(columns).astype(np.int64))
    )
    assert soc_exact, "diamond SoC plan diverged from direct per-op execution"

    pool_replicas = [
        Replica("r0", GemmEngine(name="r0")),
        Replica("r1", GemmEngine(name="r1")),
    ]
    pool_profiles = {
        "r0": ReplicaProfile(name="r0", service_s=1e-4, macs=64),
        "r1": ReplicaProfile(name="r1", service_s=1e-4, macs=64),
    }
    pool_plan = compile_for_pool(
        graph, pool_replicas, profiles=pool_profiles, strategy="balanced",
        cache=None,
    )
    column = np.linspace(-2, 2, n_features)

    async def run_pool():
        async with InferenceServer(pool_replicas) as server:
            return await pool_plan.run(server, column)

    pool_out = asyncio.run(run_pool())
    pool_exact = bool(
        np.array_equal(pool_out, graph.reference_forward(column)[:, 0])
    )
    assert pool_exact, "diamond pool plan diverged from direct per-op execution"
    diamond = {
        "n_features": n_features,
        "ops": len(graph),
        "levels": pool_plan.n_levels,
        "soc_exact": soc_exact,
        "soc_cycles": plan.total_cycles,
        "pool_exact": pool_exact,
        "pool_placement": dict(pool_plan.placement.assignments),
    }

    # -- batch-aware sharding: the decision flips and wins ---------------- #
    n_rows, n_inner = 2, 16
    flip_soc = cluster(2)
    cost_model = SoCCostModel.calibrate(flip_soc)
    narrow = choose_sharding(n_rows, n_inner, 1, 2, cost_model=cost_model)
    wide = choose_sharding(n_rows, n_inner, 32, 2, cost_model=cost_model)
    weights = np.random.default_rng(0).integers(-3, 4, size=(n_rows, n_inner))

    batch_points = {}
    for n_cols, chosen, other in ((1, narrow, wide), (32, wide, narrow)):
        inputs = np.random.default_rng(2).integers(-3, 4, size=(n_inner, n_cols))
        chosen_cycles = measured_sharding_cycles(2, weights, inputs, chosen)
        other_cycles = measured_sharding_cycles(2, weights, inputs, other)
        batch_points[f"batch{n_cols}"] = {
            "chosen": {"strategy": chosen.strategy, "k_shards": chosen.k_shards,
                       "cycles": chosen_cycles},
            "alternative": {"strategy": other.strategy, "k_shards": other.k_shards,
                            "cycles": other_cycles},
            "chosen_faster": bool(chosen_cycles < other_cycles),
        }
    batch_aware = {
        "shape": [n_rows, n_inner],
        "n_pes": 2,
        "decision_flips": bool(
            (narrow.strategy, narrow.k_shards) != (wide.strategy, wide.k_shards)
        ),
        **batch_points,
    }

    # -- branch-parallel dispatch on a fan-out graph ---------------------- #
    n_branches = 4
    max_wait_s = 0.005 if quick else 0.01
    fanout = make_fanout_graph(8, n_branches=n_branches, rng=0)
    fan_column = np.linspace(-2, 2, 8)

    # wall-clock comparison on a possibly noisy machine: one retry, then
    # record whatever was measured — the hard contract lives in
    # benchmarks/test_bench_compiler.py
    for attempt in range(2):
        sequential_s = asyncio.run(
            timed_pool_plan_run(
                fanout, pool_profiles, max_wait_s, fan_column, "sequential"
            )
        )
        levels_s = asyncio.run(
            timed_pool_plan_run(
                fanout, pool_profiles, max_wait_s, fan_column, "levels"
            )
        )
        if levels_s < sequential_s:
            break
    branch_parallel = {
        "n_branches": n_branches,
        "dense_ops": n_branches + 1,
        "levels": 3,
        "batch_window_s": max_wait_s,
        "sequential_s": sequential_s,
        "levels_s": levels_s,
        "speedup": sequential_s / levels_s if levels_s > 0 else None,
        "exact": True,
    }
    return {
        "diamond": diamond,
        "batch_aware_sharding": batch_aware,
        "branch_parallel": branch_parallel,
    }


def collect_snn_serving(quick: bool = False) -> dict:
    """Spiking serving benchmark: fused batching, online STDP, fault curve.

    Side-effect-free (fresh networks per measurement, campaign telemetry in
    a temporary directory, no trajectory mutation), so ``--quick`` runs it
    as the CI smoke for the SNN serving subsystem.  Four legs:

    * ``batched_vs_serial``: the same seeded spike workload answered by one
      fused :meth:`~repro.snn.network.PhotonicSNN.run_patterns` call vs
      per-request serial :meth:`~repro.snn.network.PhotonicSNN.run` calls,
      with a bitwise oracle — the speedup floor must hold (batched at
      least matches serial even in quick mode) because the fused path is
      exact, not approximate.  Also records spikes/s through the fused
      datapath.
    * ``served``: the workload through a real replica (batch1 vs dynamic
      micro-batching) with a bitwise oracle between the modes.
    * ``online_stdp``: learning mode served twice with pre-queued
      submission; outputs and final crossbar state must be bitwise
      reproducible, and STDP updates/s is recorded.
    * ``fault_campaign``: a :class:`~repro.serving.resilience.FaultCampaignDriver`
      sweep of stuck-PCM-synapse faults under load — the joint
      p99/accuracy degradation curve, with accuracy 1.0 required at zero
      faults and no better than that at the heaviest point.
    """
    import asyncio
    import time as time_mod

    if str(REPO_ROOT / "src") not in sys.path:
        sys.path.insert(0, str(REPO_ROOT / "src"))
    import numpy as np

    from repro.serving import (
        FaultCampaignDriver,
        InferenceServer,
        Replica,
        SNNEngine,
        TelemetryLog,
        run_patterns_serial,
        spike_pattern_workload,
        synapse_fault_armer,
    )
    from repro.snn import PhotonicSNN, STDPRule

    n_inputs, n_outputs = (12, 5) if quick else (24, 8)
    n_requests = 24 if quick else 96
    max_batch = 8 if quick else 16

    def make_engine(learning=False):
        network = PhotonicSNN(
            n_inputs,
            n_outputs,
            stdp=STDPRule() if learning else None,
            inhibition=0.3,
            rng=7,
        )
        return SNNEngine(network, learning=learning, max_spikes=6)

    workload = spike_pattern_workload(n_inputs, n_requests, rng=11)
    columns = np.stack([workload(index) for index in range(n_requests)], axis=1)

    # -- fused batched run vs per-request serial runs (bitwise oracle) ---- #
    engine = make_engine()
    fused = engine.run_batch(None, columns)
    assert np.array_equal(fused, run_patterns_serial(engine, columns)), (
        "fused multi-pattern run diverged from serial per-request runs"
    )
    # wall-clock comparison on a possibly noisy machine: retries, then
    # assert — the fused path is exact, so batched >= serial must hold
    for attempt in range(3):
        started = time_mod.perf_counter()
        engine.run_batch(None, columns)
        batched_s = time_mod.perf_counter() - started
        started = time_mod.perf_counter()
        run_patterns_serial(engine, columns)
        serial_s = time_mod.perf_counter() - started
        speedup = serial_s / batched_s if batched_s > 0 else 0.0
        if speedup >= 1.0:
            break
    assert speedup >= 1.0, (
        f"fused batching achieved {speedup:.2f}x serial (required >= 1.0x)"
    )
    probe = make_engine()
    probe_batch = probe.network.run_patterns(
        [probe.encode(columns[:, index]) for index in range(n_requests)]
    )
    batched_vs_serial = {
        "n_requests": n_requests,
        "batched_s": batched_s,
        "serial_s": serial_s,
        "speedup": speedup,
        "exact": True,
        "spikes_in": probe_batch.total_input_spikes,
        "spikes_out": probe_batch.total_output_spikes,
        "spikes_per_s": probe_batch.total_input_spikes / batched_s,
    }

    # -- served through a replica: batch1 vs dynamic micro-batching ------- #
    async def measure_served(mode):
        served_engine = make_engine()
        served_engine.compile(None)  # compile outside the timed window
        replica = Replica(
            "snn",
            served_engine,
            max_batch=1 if mode == "batch1" else max_batch,
            max_wait_s=0.0,
            max_queue_depth=4 * n_requests,
        )
        async with InferenceServer([replica]) as server:
            started = time_mod.perf_counter()
            futures = [
                server.submit_nowait(workload(index)) for index in range(n_requests)
            ]
            outputs = await asyncio.gather(*futures)
            wall_s = time_mod.perf_counter() - started
            telemetry = server.stats()
        return {
            "achieved_hz": n_requests / wall_s,
            "p50_ms": telemetry["latency"]["p50_ms"],
            "p99_ms": telemetry["latency"]["p99_ms"],
            "mean_batch": telemetry["replicas"]["snn"]["mean_batch"],
        }, np.stack(outputs, axis=1)

    served = {}
    served_outputs = {}
    for mode in ("batch1", "dynamic"):
        served[mode], served_outputs[mode] = asyncio.run(measure_served(mode))
    assert np.array_equal(served_outputs["batch1"], served_outputs["dynamic"]), (
        "dynamic micro-batching changed served spike counts"
    )
    served["bitwise_identical"] = True
    served["speedup_dynamic_vs_batch1"] = (
        served["dynamic"]["achieved_hz"] / served["batch1"]["achieved_hz"]
        if served["batch1"]["achieved_hz"] > 0
        else None
    )

    # -- online STDP under traffic: bitwise reproducibility --------------- #
    async def serve_learning():
        learning_engine = make_engine(learning=True)
        replica = Replica(
            "snn",
            learning_engine,
            max_batch=max_batch,
            max_wait_s=0.0,
            max_queue_depth=4 * n_requests,
        )
        async with InferenceServer([replica]) as server:
            started = time_mod.perf_counter()
            # pre-queued submission: deterministic batch composition, so
            # the STDP update order is the request order
            futures = [
                server.submit_nowait(workload(index)) for index in range(n_requests)
            ]
            outputs = await asyncio.gather(*futures)
            wall_s = time_mod.perf_counter() - started
        return (
            np.stack(outputs, axis=1),
            learning_engine.network.synapse_array.fractions.copy(),
            learning_engine,
            wall_s,
        )

    out_a, fractions_a, engine_a, wall_a = asyncio.run(serve_learning())
    out_b, fractions_b, engine_b, _ = asyncio.run(serve_learning())
    assert np.array_equal(out_a, out_b), "online STDP outputs are not reproducible"
    assert np.array_equal(fractions_a, fractions_b), (
        "online STDP weight trajectory is not reproducible"
    )
    online_stdp = {
        "n_requests": n_requests,
        "bitwise_reproducible": True,
        "stdp_updates": engine_a.stdp_updates,
        "stdp_updates_per_s": engine_a.stdp_updates / wall_a if wall_a > 0 else None,
        "recompiles": engine_a.stats.compiles,
        "learning_energy_j": engine_a.learning_energy_j,
    }

    # -- fault campaign under load: joint p99/accuracy degradation -------- #
    fault_counts = (0, 2, 8) if quick else (0, 1, 2, 4, 8, 16)
    with tempfile.TemporaryDirectory() as tmp:
        driver = FaultCampaignDriver(
            engine_factory=make_engine,
            fault_armer=synapse_fault_armer,
            make_request=workload,
            n_requests=min(n_requests, 32),
            fault_counts=fault_counts,
            root_seed=3,
            max_batch=max_batch,
            telemetry_log=TelemetryLog(Path(tmp) / "campaign.jsonl"),
        )
        curve = driver.run()
    assert curve.accuracies[0] == 1.0, "zero-fault campaign point must be golden"
    assert curve.accuracies[-1] <= curve.accuracies[0], (
        "accuracy did not degrade (or held) under the heaviest fault load"
    )
    fault_campaign = {
        "fault_model": "stuck PCM crystalline fractions",
        "n_requests": min(n_requests, 32),
        **curve.to_dict(),
    }

    return {
        "n_inputs": n_inputs,
        "n_outputs": n_outputs,
        "max_batch": max_batch,
        "batched_vs_serial": batched_vs_serial,
        "served": served,
        "online_stdp": online_stdp,
        "fault_campaign": fault_campaign,
    }


def collect_observability(quick: bool = False) -> dict:
    """Tracing-overhead benchmark: traced vs untraced saturation throughput.

    The same compute-heavy engine (service-time dominated, so the μs-scale
    cost of span bookkeeping is measured against a realistic request cost)
    is driven closed-loop twice — once with a live
    :class:`~repro.obs.trace.Tracer` + metrics registry on the server,
    once untraced — and the achieved throughputs are compared.  A third,
    seeded analog run checks the *bitwise parity* contract: outputs and
    SoC cycle accounting must be identical with tracing on or off.  The
    quick contract (CI-asserted): tracing overhead at most 5% and exact
    output parity, plus the exported Chrome trace validating and the
    drift monitor flagging a miscalibrated cost model.
    """
    import asyncio

    if str(REPO_ROOT / "src") not in sys.path:
        sys.path.insert(0, str(REPO_ROOT / "src"))
    import numpy as np

    from repro.compiler import SoCCostModel
    from repro.obs import (
        DriftMonitor,
        MetricsRegistry,
        Tracer,
        chrome_trace,
        validate_chrome_trace,
    )
    from repro.serving import (
        GemmEngine,
        InferenceServer,
        Replica,
        SoCGemmEngine,
        run_closed_loop,
    )
    from repro.serving.fabric import ComputeHeavyBackend
    from repro.system import PhotonicSoC
    from repro.utils.rng import ensure_rng

    shape = (12, 12)
    n_clients = 4
    requests_per_client = 12 if quick else 40
    service_s = 0.002
    weights = ensure_rng(0).normal(size=shape)
    workload = ensure_rng(1).normal(size=(256, shape[1]))

    def measure_throughput(tracer, metrics):
        async def drive():
            backend = ComputeHeavyBackend(service_s_per_column=service_s)
            engine = GemmEngine(backend=backend, weights=weights)
            engine.compile(None)
            replica = Replica("r0", engine, max_batch=8, max_queue_depth=64)
            server = InferenceServer([replica], tracer=tracer, metrics=metrics)
            async with server:
                report = await run_closed_loop(
                    server,
                    n_clients,
                    requests_per_client,
                    lambda index: workload[index % len(workload)],
                )
            return report.achieved_hz

        return asyncio.run(drive())

    untraced_hz = measure_throughput(None, None)
    tracer = Tracer(process="server")
    traced_hz = measure_throughput(tracer, MetricsRegistry())
    overhead_frac = 1.0 - traced_hz / untraced_hz if untraced_hz > 0 else 0.0

    def serve_outputs(tracer):
        async def drive():
            soc = PhotonicSoC()
            soc.add_photonic_accelerator()
            engine = SoCGemmEngine(
                soc, weights=ensure_rng(2).integers(-5, 6, size=(8, 6))
            )
            server = InferenceServer([Replica("r0", engine)], tracer=tracer)
            columns = ensure_rng(3).integers(-5, 6, size=(16, 6)).astype(float)
            async with server:
                outputs = await asyncio.gather(
                    *(server.submit(column) for column in columns)
                )
            return np.stack(outputs), engine.offload_cycles

        return asyncio.run(drive())

    baseline_outputs, baseline_cycles = serve_outputs(None)
    parity_tracer = Tracer(process="server")
    traced_outputs, traced_cycles = serve_outputs(parity_tracer)
    parity = bool(
        np.array_equal(baseline_outputs, traced_outputs)
        and baseline_cycles == traced_cycles
    )

    trace_obj = chrome_trace(tracer.finished + parity_tracer.finished)
    trace_events = validate_chrome_trace(trace_obj)

    # drift smoke: a cost model calibrated on a 2-PE cluster mispredicts a
    # 1-PE cluster's serial tile stream, so the monitor must flag it
    def calibrated_soc(n_pes):
        soc = PhotonicSoC()
        for _ in range(n_pes):
            soc.add_photonic_accelerator()
        return soc

    model = SoCCostModel.calibrate(calibrated_soc(2))
    monitor = DriftMonitor(threshold=0.10, min_samples=1)
    drift_soc = calibrated_soc(1)
    drift_engine = SoCGemmEngine(
        drift_soc,
        weights=ensure_rng(2).integers(-5, 6, size=(8, 6)),
        cost_model=model,
        drift_monitor=monitor,
    )
    drift_engine.run_batch(
        None, ensure_rng(3).integers(-5, 6, size=(6, 4)).astype(float)
    )
    drift_flags = len(monitor.flags())

    section = {
        "shape": list(shape),
        "n_requests": n_clients * requests_per_client,
        "untraced_hz": untraced_hz,
        "traced_hz": traced_hz,
        "overhead_frac": overhead_frac,
        "bitwise_parity": parity,
        "trace_events": trace_events,
        "drift_flags": drift_flags,
    }
    if quick:
        assert traced_hz >= 0.95 * untraced_hz, (
            f"tracing overhead exceeded 5%: traced {traced_hz:.1f} req/s vs "
            f"untraced {untraced_hz:.1f} req/s"
        )
        assert parity, "tracing perturbed served outputs or cycle accounting"
        assert drift_flags >= 1, "drift monitor failed to flag a miscalibrated model"
    return section


def collect_adaptive(quick: bool = False) -> dict:
    """Adaptive-replanning benchmark: online refit and flip-point replans.

    Side-effect-free (fresh SoCs, a private :class:`PlanCache`, no global
    registry or trajectory mutation), so ``--quick`` runs it as the CI
    smoke for the adaptive control loop.  Two legs, both fully simulated
    (cycle-accurate, no wall clocks), so every contract is asserted
    unconditionally:

    * ``online_refit``: a cost model is calibrated at boot, then the bus
      develops arbitration contention (``arbitration_penalty``) the boot
      probes never saw — the shifted-traffic scenario.  Production
      offloads stream into the :class:`AdaptiveReplanner`; one ``poll``
      must refit from the windowed samples and the predicted-cycle
      relative error after the refit must be below the error before it.
    * ``flip_point``: a managed ``M=2, K=16`` plan compiled at batch
      width 1 (``rows`` sharding) watches a serving width trace that
      crosses to 32 (``k2`` territory).  Exactly one recompile may fire,
      the new plan must be bitwise identical to the old one on the same
      inputs, and the replan-on p99 latency across the crossing must not
      exceed replan-off (stale plan served forever).
    """
    if str(REPO_ROOT / "src") not in sys.path:
        sys.path.insert(0, str(REPO_ROOT / "src"))
    import numpy as np

    from repro.compiler import (
        AdaptiveReplanner,
        ModelGraph,
        PlanCache,
        RefitEvent,
        ReplanEvent,
        SoCCostModel,
    )
    from repro.eval import make_gemm_workload
    from repro.system import PhotonicSoC

    def cluster(n_pes):
        soc = PhotonicSoC()
        for _ in range(n_pes):
            soc.add_photonic_accelerator()
        return soc

    # -- leg 1: online refit under shifted traffic ------------------------ #
    traffic_shapes = [
        (4, 8, 2), (8, 8, 4), (6, 12, 2), (12, 8, 6), (8, 16, 4), (16, 8, 2),
    ]
    if not quick:
        traffic_shapes += [
            (10, 12, 8), (12, 16, 4), (6, 8, 8), (16, 16, 2), (8, 12, 6),
            (14, 8, 4),
        ]
    soc = cluster(2)
    boot_model = SoCCostModel.calibrate(soc)
    # traffic shift: post-calibration bus contention charges every
    # concurrent DMA stream extra arbitration cycles per access
    soc.bus.arbitration_penalty = 16
    replanner = AdaptiveReplanner(
        soc,
        boot_model,
        refit_threshold=0.15,
        min_samples=len(traffic_shapes) // 2,
        cache=PlanCache(),
    )
    for index, shape in enumerate(traffic_shapes):
        weights, inputs = make_gemm_workload(*shape, rng=index)
        report = soc.run_tiled_gemm(weights, inputs)
        replanner.observe_offload(shape, report)
    error_before = replanner.window_error(boot_model)
    refit_events = [
        event for event in replanner.poll() if isinstance(event, RefitEvent)
    ]
    error_after = replanner.window_error()
    assert len(refit_events) == 1, "shifted traffic did not trigger one refit"
    assert error_after < error_before, (
        f"online refit failed to reduce predicted-cycle error "
        f"({error_before:.3f} -> {error_after:.3f})"
    )
    assert refit_events[0].fingerprint == replanner.fingerprint(), (
        "refit event did not carry the bumped hardware fingerprint"
    )
    online_refit = {
        "n_samples": len(traffic_shapes),
        "arbitration_penalty": 16,
        "predicted_cycle_rel_error_before": error_before,
        "predicted_cycle_rel_error_after": error_after,
        "error_reduction": (
            1.0 - error_after / error_before if error_before > 0 else None
        ),
        "refits": len(refit_events),
    }

    # -- leg 2: width-flip crossing, replan-on vs replan-off -------------- #
    n_rows, n_inner = 2, 16
    n_warm = 4 if quick else 10
    n_wide = 12 if quick else 40
    wide_width = 32
    flip_soc = cluster(2)
    flip_model = SoCCostModel.calibrate(flip_soc)
    clock_hz = flip_model.clock_hz
    weights = np.random.default_rng(0).integers(-3, 4, size=(n_rows, n_inner))
    graph = ModelGraph.from_matrices([weights], name="adaptive-flip-bench")
    wide_inputs = np.random.default_rng(2).integers(
        -3, 4, size=(n_inner, wide_width)
    )
    narrow_inputs = wide_inputs[:, :1]
    golden = (weights @ wide_inputs).astype(np.int64)

    def latencies(adaptive):
        managed = AdaptiveReplanner(
            flip_soc, flip_model, width_window=n_wide // 2, cache=PlanCache()
        )
        managed.manage(graph, n_columns=1)
        replans = []
        points = []
        for width in [1] * n_warm + [wide_width] * n_wide:
            if adaptive:
                managed.observe_batch(width)
                replans.extend(
                    event
                    for event in managed.poll()
                    if isinstance(event, ReplanEvent)
                )
            plan = managed.active_plan(graph)
            columns = narrow_inputs if width == 1 else wide_inputs
            output = plan.run(columns)
            if width == wide_width:
                assert np.array_equal(output, golden), "served output diverged"
            points.append(plan.total_cycles / clock_hz)
        return points, replans, managed

    off_lat, _, _ = latencies(adaptive=False)
    on_lat, replan_events, managed = latencies(adaptive=True)
    assert len(replan_events) == 1, (
        f"width crossing triggered {len(replan_events)} recompiles, expected 1"
    )
    event = replan_events[0]
    assert event.old_signature != event.new_signature, (
        "replan fired without a sharding-signature change"
    )
    p99_on = float(np.percentile(on_lat, 99))
    p99_off = float(np.percentile(off_lat, 99))
    assert p99_on <= p99_off, (
        f"replan-on p99 {p99_on:.2e}s regressed past replan-off {p99_off:.2e}s"
    )
    flip_point = {
        "shape": [n_rows, n_inner],
        "n_pes": 2,
        "width_trace": {"warm": [1, n_warm], "wide": [wide_width, n_wide]},
        "recompiles": len(replan_events),
        "old_signature": [list(sig) for sig in event.old_signature],
        "new_signature": [list(sig) for sig in event.new_signature],
        "bitwise_identical": True,
        "p99_s_replan_on": p99_on,
        "p99_s_replan_off": p99_off,
        "p99_speedup": p99_on and p99_off / p99_on,
        "wide_latency_s_replan_on": on_lat[-1],
        "wide_latency_s_replan_off": off_lat[-1],
    }
    return {"online_refit": online_refit, "flip_point": flip_point}


def update_trajectory(
    output: Path, results: dict, soc_offload: dict, serving: dict, compiler: dict,
    compiler_dag: dict, soc_datapath: dict, serving_fabric: dict,
    snn_serving: dict, observability: dict, adaptive: dict,
) -> dict:
    """Write the condensed results, appending to any existing history."""
    record = {
        "machine": platform.node() or "unknown",
        "python": platform.python_version(),
        "results": results,
        "soc_offload": soc_offload,
        "serving": serving,
        "compiler": compiler,
        "compiler_dag": compiler_dag,
        "soc_datapath": soc_datapath,
        "serving_fabric": serving_fabric,
        "snn_serving": snn_serving,
        "observability": observability,
        "adaptive": adaptive,
    }
    payload = {
        "latest": results,
        "soc_offload": soc_offload,
        "serving": serving,
        "compiler": compiler,
        "compiler_dag": compiler_dag,
        "soc_datapath": soc_datapath,
        "serving_fabric": serving_fabric,
        "snn_serving": snn_serving,
        "observability": observability,
        "adaptive": adaptive,
        "history": [],
    }
    if output.exists():
        try:
            previous = json.loads(output.read_text())
            payload["history"] = list(previous.get("history", []))
        except (json.JSONDecodeError, OSError):
            pass
    payload["history"].append(record)
    payload["history"] = payload["history"][-MAX_HISTORY:]
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_throughput.json",
        help="trajectory file to write (default: BENCH_throughput.json)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small sizes, skip the pytest-benchmark suite, "
        "and do not write or append to the trajectory file",
    )
    args = parser.parse_args()

    exit_code = 0
    results = {}
    if not args.quick:
        with tempfile.TemporaryDirectory() as tmp:
            raw_json = Path(tmp) / "benchmark_raw.json"
            exit_code = run_benchmarks(raw_json)
            if not raw_json.exists():
                print("benchmark run produced no JSON report", file=sys.stderr)
                return exit_code or 1
            results = condense(raw_json)

    if args.quick:
        soc_offload = collect_soc_offload(pe_counts=(1, 2), shape=(16, 8, 8))
    else:
        soc_offload = collect_soc_offload()
    serving = collect_serving(quick=args.quick)
    compiler = collect_compiler(quick=args.quick)
    compiler_dag = collect_compiler_dag(quick=args.quick)
    soc_datapath = collect_soc_datapath(quick=args.quick)
    serving_fabric = collect_serving_fabric(quick=args.quick)
    snn_serving = collect_snn_serving(quick=args.quick)
    observability = collect_observability(quick=args.quick)
    adaptive = collect_adaptive(quick=args.quick)

    if args.quick:
        print("quick mode: trajectory file not updated")
    else:
        update_trajectory(
            args.output, results, soc_offload, serving, compiler, compiler_dag,
            soc_datapath, serving_fabric, snn_serving, observability, adaptive,
        )
        print(f"wrote {args.output} ({len(results)} benchmarks)")
    for name, stats in sorted(results.items()):
        mean = stats["mean_s"]
        print(f"  {name}: {mean * 1e3:.2f} ms/round" if mean else f"  {name}: n/a")
    for name, stats in sorted(soc_offload.items()):
        print(
            f"  soc_offload/{name}: {stats['cycles']} cycles "
            f"(serial {stats['serial_cycles']}, {stats['wall_s'] * 1e3:.2f} ms wall)"
        )
    for backend_name, stats in sorted(serving.items()):
        speedup = stats["saturated_speedup_dynamic_vs_batch1"]
        batch1 = stats["modes"]["batch1"]["achieved_hz"][-1]
        dynamic = stats["modes"]["dynamic"]["achieved_hz"][-1]
        print(
            f"  serving/{backend_name}: saturated {batch1:.0f} req/s serial -> "
            f"{dynamic:.0f} req/s dynamic "
            f"({speedup:.1f}x)" if speedup else f"  serving/{backend_name}: n/a"
        )
    plan = compiler["plan_vs_naive"]
    routing = compiler["routing"]
    print(
        f"  compiler/plan_vs_naive: {plan['plan_cycles']} cycles vs "
        f"{plan['naive_serial_cycles']} naive ({plan['speedup']:.1f}x, exact)"
    )
    print(
        f"  compiler/routing: p99 {routing['cost_based']['p99_ms']:.2f} ms "
        f"cost-based vs {routing['round_robin']['p99_ms']:.2f} ms round-robin "
        f"({routing['p99_speedup']:.1f}x)"
    )
    diamond = compiler_dag["diamond"]
    flip = compiler_dag["batch_aware_sharding"]
    branches = compiler_dag["branch_parallel"]
    print(
        f"  compiler_dag/diamond: {diamond['ops']} ops in {diamond['levels']} "
        f"levels, soc {diamond['soc_cycles']} cycles (exact on both executors)"
    )
    print(
        f"  compiler_dag/batch_aware: M={flip['shape'][0]} K={flip['shape'][1]} "
        f"flips {flip['batch1']['chosen']['strategy']} -> "
        f"{flip['batch32']['chosen']['strategy']}{flip['batch32']['chosen']['k_shards']} "
        f"at batch 32 (both measured faster: "
        f"{flip['batch1']['chosen_faster'] and flip['batch32']['chosen_faster']})"
    )
    print(
        f"  compiler_dag/branch_parallel: {branches['sequential_s'] * 1e3:.1f} ms "
        f"sequential -> {branches['levels_s'] * 1e3:.1f} ms level dispatch "
        f"({branches['speedup']:.1f}x)"
    )
    datapath_k = soc_datapath["k_sharding"]
    print(
        f"  soc_datapath/k_sharding: {datapath_k['staged']['cycles']} cycles "
        f"staged -> {datapath_k['in-place']['cycles']} in-place "
        f"({datapath_k['speedup']:.2f}x, staging words "
        f"{datapath_k['staged']['staging_words']} -> "
        f"{datapath_k['in-place']['staging_words']})"
    )
    for name, stats in sorted(soc_datapath["branch_fusion"].items()):
        if not isinstance(stats, dict):
            continue
        print(
            f"  soc_datapath/branch_fusion/{name}: "
            f"{stats['sequential_cycles']} cycles sequential -> "
            f"{stats['fused_cycles']} fused ({stats['speedup']:.2f}x, "
            f"{stats['offloads_sequential']} -> {stats['offloads_fused']} offloads)"
        )
    print(
        f"  serving_fabric: {serving_fabric['single_process']['achieved_hz']:.0f} "
        f"req/s single-process -> {serving_fabric['fabric']['achieved_hz']:.0f} "
        f"req/s across {serving_fabric['n_workers']} workers "
        f"({serving_fabric['saturated_speedup_fabric_vs_single_process']:.1f}x, "
        f"p99 {serving_fabric['single_process']['p99_ms']:.0f} -> "
        f"{serving_fabric['fabric']['p99_ms']:.0f} ms, bitwise "
        f"{serving_fabric['bitwise_identical']})"
    )
    snn_batch = snn_serving["batched_vs_serial"]
    snn_stdp = snn_serving["online_stdp"]
    snn_faults = snn_serving["fault_campaign"]
    print(
        f"  snn_serving/batched_vs_serial: {snn_batch['serial_s'] * 1e3:.1f} ms "
        f"serial -> {snn_batch['batched_s'] * 1e3:.1f} ms fused "
        f"({snn_batch['speedup']:.1f}x, {snn_batch['spikes_per_s']:.0f} spikes/s, "
        f"exact)"
    )
    print(
        f"  snn_serving/online_stdp: {snn_stdp['stdp_updates']} pulse updates "
        f"({snn_stdp['stdp_updates_per_s']:.0f}/s, bitwise reproducible "
        f"{snn_stdp['bitwise_reproducible']})"
    )
    print(
        f"  snn_serving/fault_campaign: accuracy "
        f"{snn_faults['accuracy'][0]:.2f} -> {snn_faults['accuracy'][-1]:.2f} "
        f"over {snn_faults['fault_counts'][0]} -> "
        f"{snn_faults['fault_counts'][-1]} stuck synapses"
    )
    print(
        f"  observability: {observability['untraced_hz']:.0f} req/s untraced -> "
        f"{observability['traced_hz']:.0f} req/s traced "
        f"({observability['overhead_frac'] * 100:.1f}% overhead, bitwise "
        f"{observability['bitwise_parity']}, {observability['trace_events']} "
        f"trace events, {observability['drift_flags']} drift flag(s))"
    )
    refit = adaptive["online_refit"]
    flip_leg = adaptive["flip_point"]
    print(
        f"  adaptive/online_refit: predicted-cycle error "
        f"{refit['predicted_cycle_rel_error_before']:.3f} -> "
        f"{refit['predicted_cycle_rel_error_after']:.3f} after "
        f"{refit['refits']} refit(s) under shifted traffic"
    )
    print(
        f"  adaptive/flip_point: {flip_leg['recompiles']} recompile at the "
        f"width crossing, p99 {flip_leg['p99_s_replan_off'] * 1e6:.1f} us "
        f"replan-off -> {flip_leg['p99_s_replan_on'] * 1e6:.1f} us replan-on "
        f"(bitwise {flip_leg['bitwise_identical']})"
    )
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
