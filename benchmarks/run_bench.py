#!/usr/bin/env python
"""Run the throughput benchmark suite and persist a trajectory file.

Executes ``benchmarks/test_bench_throughput.py`` under pytest-benchmark
with ``--benchmark-json``, condenses the raw report into one record per
benchmark (mean/min seconds and ops/s) and writes/extends
``BENCH_throughput.json`` at the repository root:

.. code-block:: json

    {
      "latest": {"<bench name>": {"mean_s": ..., "min_s": ..., "ops_per_s": ...}},
      "history": [{"machine": ..., "results": {...}}, ...]
    }

Future performance PRs compare their run against ``latest`` (and the
trajectory in ``history``) to prove a speedup or catch a regression.

Usage::

    python benchmarks/run_bench.py [--output BENCH_throughput.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = Path(__file__).resolve().parent / "test_bench_throughput.py"
MAX_HISTORY = 50


def run_benchmarks(raw_json: Path) -> int:
    """Run the throughput suite with pytest-benchmark; returns the exit code."""
    env_path = str(REPO_ROOT / "src")
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = env_path + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        sys.executable,
        "-m",
        "pytest",
        str(BENCH_FILE),
        "-q",
        f"--benchmark-json={raw_json}",
    ]
    return subprocess.call(command, cwd=str(REPO_ROOT), env=env)


def condense(raw_json: Path) -> dict:
    """Reduce the pytest-benchmark report to {name: {mean_s, min_s, ops_per_s}}."""
    report = json.loads(raw_json.read_text())
    results = {}
    for bench in report.get("benchmarks", []):
        stats = bench.get("stats", {})
        mean = stats.get("mean")
        results[bench["name"]] = {
            "mean_s": mean,
            "min_s": stats.get("min"),
            "ops_per_s": (1.0 / mean) if mean else None,
        }
    return results


def update_trajectory(output: Path, results: dict) -> dict:
    """Write the condensed results, appending to any existing history."""
    record = {
        "machine": platform.node() or "unknown",
        "python": platform.python_version(),
        "results": results,
    }
    payload = {"latest": results, "history": []}
    if output.exists():
        try:
            previous = json.loads(output.read_text())
            payload["history"] = list(previous.get("history", []))
        except (json.JSONDecodeError, OSError):
            pass
    payload["history"].append(record)
    payload["history"] = payload["history"][-MAX_HISTORY:]
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_throughput.json",
        help="trajectory file to write (default: BENCH_throughput.json)",
    )
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        raw_json = Path(tmp) / "benchmark_raw.json"
        exit_code = run_benchmarks(raw_json)
        if not raw_json.exists():
            print("benchmark run produced no JSON report", file=sys.stderr)
            return exit_code or 1
        results = condense(raw_json)

    update_trajectory(args.output, results)
    print(f"wrote {args.output} ({len(results)} benchmarks)")
    for name, stats in sorted(results.items()):
        mean = stats["mean_s"]
        print(f"  {name}: {mean * 1e3:.2f} ms/round" if mean else f"  {name}: n/a")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
