"""E8 (Fig. 3): full-system speed / energy / footprint comparison.

Regenerates the gem5-MARVEL-style evaluation: the same integer GeMM
workload executed (a) in software on the RISC-V host, (b) offloaded to a
digital MAC-array DSA, and (c) offloaded to the photonic in-memory GeMM
DSA, reporting end-to-end cycles, total energy, and configuration area.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.eval import format_table, make_gemm_workload, speedup
from repro.system import PhotonicSoC


def _system_comparison(n=10, cols=6):
    weights, inputs = make_gemm_workload(n, n, cols, rng=0)
    golden = weights @ inputs

    cpu_soc = PhotonicSoC()
    cpu = cpu_soc.run_cpu_gemm(weights, inputs)

    mac_soc = PhotonicSoC()
    mac_soc.add_mac_array_accelerator()
    mac = mac_soc.run_offloaded_gemm(weights, inputs)

    photonic_soc = PhotonicSoC()
    photonic_soc.add_photonic_accelerator()
    photonic = photonic_soc.run_offloaded_gemm(weights, inputs)

    irq_soc = PhotonicSoC()
    irq_soc.add_photonic_accelerator()
    irq = irq_soc.run_offloaded_gemm(weights, inputs, use_interrupt=True)

    reports = [cpu, mac, photonic, irq]
    for report in reports:
        assert np.array_equal(report.result, golden)
    return reports


def test_bench_full_system_comparison(benchmark):
    reports = run_once(benchmark, _system_comparison)
    cpu = reports[0]
    rows = [
        [report.label, report.cycles, speedup(cpu.cycles, report.cycles),
         report.instructions, report.energy_j, report.area_mm2]
        for report in reports
    ]
    print("\n[E8] full-system GeMM: CPU vs digital DSA vs photonic DSA (10x10x6)")
    print(format_table(
        ["configuration", "cycles", "speedup", "host instructions", "energy (J)", "area (mm^2)"],
        rows,
    ))
    cpu, mac, photonic, irq = reports
    # Both accelerators beat the software baseline by a wide margin.
    assert speedup(cpu.cycles, mac.cycles) > 5
    assert speedup(cpu.cycles, photonic.cycles) > 5
    # The photonic DSA's compute is at least as fast as the MAC array at
    # this size (it does the whole MVM in one optical pass).
    assert photonic.cycles <= mac.cycles * 1.5
    # Offload also cuts total energy versus running the loop on the CPU.
    assert photonic.energy_j < cpu.energy_j
    # The accelerator costs area: the accelerated SoCs are bigger than CPU-only.
    assert photonic.area_mm2 > cpu.area_mm2
