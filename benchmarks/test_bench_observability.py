"""Contract benchmarks for the observability plane.

Three qualitative contracts of ``repro.obs``:

* tracing is near-free: a fully traced server (request spans, batch spans,
  engine spans, metrics) sustains at least 80% of untraced throughput on a
  service-time-dominated engine (``run_bench.py`` records ~1% overhead
  under the ``observability`` section and its quick mode asserts the 5%
  production contract; the floor here is deliberately generous against CI
  scheduler noise);
* tracing is invisible to results: served outputs and SoC cycle accounting
  are bitwise-identical with the tracer on or off;
* the exported Chrome trace validates and contains the full span hierarchy
  (request -> batch -> engine -> soc:offload -> pipeline phases).
"""

import asyncio

import numpy as np

from benchmarks.conftest import run_once
from repro.obs import (
    DriftMonitor,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    validate_chrome_trace,
)
from repro.serving import (
    GemmEngine,
    InferenceServer,
    Replica,
    SoCGemmEngine,
    run_closed_loop,
)
from repro.serving.fabric import ComputeHeavyBackend
from repro.system import PhotonicSoC
from repro.utils.rng import ensure_rng

SHAPE = (12, 12)
SERVICE_S = 0.002
N_CLIENTS = 4
REQUESTS_PER_CLIENT = 10
OVERHEAD_FLOOR = 0.80  # traced must keep >= 80% of untraced throughput
TIMING_RETRIES = 3


def measure_throughput(tracer, metrics) -> float:
    """Closed-loop saturation throughput of one compute-heavy replica."""
    weights = ensure_rng(0).normal(size=SHAPE)
    workload = ensure_rng(1).normal(size=(64, SHAPE[1]))

    async def drive():
        engine = GemmEngine(
            backend=ComputeHeavyBackend(service_s_per_column=SERVICE_S),
            weights=weights,
        )
        engine.compile(None)
        server = InferenceServer(
            [Replica("r0", engine, max_batch=8, max_queue_depth=64)],
            tracer=tracer,
            metrics=metrics,
        )
        async with server:
            report = await run_closed_loop(
                server,
                N_CLIENTS,
                REQUESTS_PER_CLIENT,
                lambda index: workload[index % len(workload)],
            )
        return report.achieved_hz

    return asyncio.run(drive())


def serve_soc(tracer):
    """Serve a fixed workload through a SoC engine; outputs + cycles back."""

    async def drive():
        soc = PhotonicSoC()
        soc.add_photonic_accelerator()
        engine = SoCGemmEngine(
            soc, weights=ensure_rng(2).integers(-5, 6, size=(8, 6))
        )
        server = InferenceServer([Replica("r0", engine)], tracer=tracer)
        columns = ensure_rng(3).integers(-5, 6, size=(12, 6)).astype(float)
        async with server:
            outputs = await asyncio.gather(
                *(server.submit(column) for column in columns)
            )
        return np.stack(outputs), engine.offload_cycles

    return asyncio.run(drive())


def test_bench_tracing_overhead(benchmark):
    untraced = measure_throughput(None, None)
    best_ratio = 0.0
    for attempt in range(TIMING_RETRIES):
        if attempt == 0:
            traced = run_once(
                benchmark, measure_throughput, Tracer(process="server"),
                MetricsRegistry(),
            )
        else:
            traced = measure_throughput(Tracer(process="server"), MetricsRegistry())
        best_ratio = max(best_ratio, traced / untraced)
        if best_ratio >= OVERHEAD_FLOOR:
            break
    print(
        f"\ntracing overhead: untraced {untraced:.0f} req/s, "
        f"traced {untraced * best_ratio:.0f} req/s "
        f"({(1.0 - best_ratio) * 100:.1f}% overhead)"
    )
    assert best_ratio >= OVERHEAD_FLOOR


def test_bench_tracing_bitwise_parity():
    baseline_outputs, baseline_cycles = serve_soc(None)
    tracer = Tracer(process="server")
    traced_outputs, traced_cycles = serve_soc(tracer)

    assert np.array_equal(baseline_outputs, traced_outputs)
    assert baseline_cycles == traced_cycles

    # the traced run must also yield a valid, fully stitched Chrome trace
    names = {span.name for span in tracer.finished}
    assert {"request", "batch", "engine", "soc:offload", "soc:compute"} <= names
    n_events = validate_chrome_trace(chrome_trace(tracer.finished))
    assert n_events > len(tracer.finished)  # spans + metadata records


def test_bench_drift_monitor_flags_miscalibration():
    from repro.compiler import SoCCostModel

    def make_soc(n_pes):
        soc = PhotonicSoC()
        for _ in range(n_pes):
            soc.add_photonic_accelerator()
        return soc

    model = SoCCostModel.calibrate(make_soc(2))
    weights = ensure_rng(2).integers(-5, 6, size=(8, 6))
    columns = ensure_rng(3).integers(-5, 6, size=(6, 4)).astype(float)

    # well-calibrated: same topology as calibration -> no flag
    calm = DriftMonitor(threshold=0.10, min_samples=1)
    matched = SoCGemmEngine(
        make_soc(2), weights=weights, cost_model=model, drift_monitor=calm
    )
    matched.run_batch(None, columns)
    assert calm.flags() == []

    # miscalibrated: serial 1-PE cluster against the 2-PE model -> flagged
    monitor = DriftMonitor(threshold=0.10, min_samples=1)
    drifted = SoCGemmEngine(
        make_soc(1), weights=weights, cost_model=model, drift_monitor=monitor
    )
    drifted.run_batch(None, columns)
    flags = monitor.flags()
    assert len(flags) == 1
    assert flags[0].measured_mean > flags[0].predicted_mean
