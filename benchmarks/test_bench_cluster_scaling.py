"""E10: multi-PE accelerator cluster scaling.

Regenerates the cluster claim of the gem5-based platform (Fig. 3, right):
a tiled GeMM distributed over 1, 2 and 4 photonic processing elements
coordinated through their MMR blocks and interrupt lines.  Reports
end-to-end cycles, speedup over one PE, energy and area versus PE count.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.eval import format_table, make_gemm_workload, speedup
from repro.system import PhotonicSoC

PE_COUNTS = (1, 2, 4)


def _cluster_sweep(rows_=16, inner=12, cols=8):
    weights, inputs = make_gemm_workload(rows_, inner, cols, rng=0)
    golden = weights @ inputs
    reports = {}
    for n_pes in PE_COUNTS:
        soc = PhotonicSoC()
        for _ in range(n_pes):
            soc.add_photonic_accelerator()
        report = soc.run_tiled_gemm(weights, inputs)
        assert np.array_equal(report.result, golden)
        reports[n_pes] = report
    return reports


def test_bench_cluster_scaling(benchmark):
    reports = run_once(benchmark, _cluster_sweep)
    base = reports[PE_COUNTS[0]]
    rows = [
        [n_pes, report.cycles, speedup(base.cycles, report.cycles),
         report.energy_j, report.area_mm2]
        for n_pes, report in reports.items()
    ]
    print("\n[E10] tiled GeMM across a photonic PE cluster (16x12x8)")
    print(format_table(["PEs", "cycles", "speedup vs 1 PE", "energy (J)", "area (mm^2)"], rows))
    # More PEs means fewer cycles (parallel tiles), monotonically.
    assert reports[2].cycles < reports[1].cycles
    assert reports[4].cycles <= reports[2].cycles
    # But area grows with the PE count — the classic throughput/area trade.
    assert reports[4].area_mm2 > reports[1].area_mm2
