"""Benchmarks for the zero-copy offload datapath.

Qualitative contracts of the descriptor-based DMA datapath and the
branch-fused GeMM lowering — the assertions CI enforces, independent of
machine speed because every figure is simulated cycles:

* **In-place K-sharding beats the staged baseline** — the same K-sharded
  GeMM run with strided descriptors reading operands where they already
  live costs fewer cycles than the legacy copy-to-staging layout, moves
  zero staging words, and stays bitwise exact.
* **The in-place datapath moves fewer bytes** — per-engine DMA traffic
  (reported on every ``WorkloadReport``) shrinks when the operand copies
  disappear.
* **Branch fusion beats sequential lowering where the model predicts
  it** — the multi-head graph compiles to one stacked offload instead of
  one per head, runs fewer total cycles at 2 and 4 PEs, stays bitwise
  exact, and the calibrated cost model's fused-vs-serial prediction
  agrees with the measured outcome.

``python benchmarks/run_bench.py`` persists the quantitative sweep into
``BENCH_throughput.json`` under the ``soc_datapath`` section.
"""

import numpy as np

from repro.compiler import SoCCostModel, compile_for_soc
from repro.eval import make_gemm_workload, make_multi_head_graph
from repro.system import PhotonicSoC


def cluster(n_pes):
    soc = PhotonicSoC()
    for _ in range(n_pes):
        soc.add_photonic_accelerator()
    return soc


def run_k_sharded(mode, shape=(32, 16, 16)):
    weights, inputs = make_gemm_workload(*shape, rng=0)
    soc = cluster(2)
    report = soc.run_tiled_gemm(weights, inputs, k_shards=2, k_staging=mode)
    assert np.array_equal(report.result, weights @ inputs)
    return report


class TestInPlaceKSharding:
    def test_in_place_beats_staged_with_zero_staging_writes(self):
        staged = run_k_sharded("staged")
        in_place = run_k_sharded("in-place")
        assert in_place.cycles < staged.cycles
        assert in_place.pipeline["staging_words"] == 0
        assert in_place.pipeline["staging_cycles"] == 0
        assert staged.pipeline["staging_words"] > 0

    def test_speedup_comes_from_staging_not_streaming(self):
        # per-engine DMA traffic is identical — the tile streams move the
        # same operand words either way — so the whole cycle win is the
        # eliminated host-side staging copies, not reduced streaming
        staged = run_k_sharded("staged")
        in_place = run_k_sharded("in-place")
        assert {k: v["bytes_moved"] for k, v in in_place.dma.items()} == {
            k: v["bytes_moved"] for k, v in staged.dma.items()
        }
        assert staged.pipeline["staging_cycles"] >= (
            staged.cycles - in_place.cycles
        )

    def test_both_modes_pipeline_below_serial(self):
        for mode in ("staged", "in-place"):
            report = run_k_sharded(mode)
            assert (
                report.pipeline["pipelined_cycles"]
                < report.pipeline["serial_cycles"]
            )


class TestBranchFusedLowering:
    def test_fused_plan_beats_sequential_and_model_agrees(self):
        graph = make_multi_head_graph(n_features=12, head_sizes=(3, 3, 3, 3), rng=2)
        columns = np.arange(12 * 2).reshape(12, 2) % 7 - 3
        reference = graph.reference_forward(columns).astype(np.int64)
        for n_pes in (2, 4):
            model = SoCCostModel.calibrate(cluster(n_pes))
            fused = compile_for_soc(
                graph, cluster(n_pes), cost_model=model, n_columns=2, cache=None
            )
            plain = compile_for_soc(
                graph, cluster(n_pes), cost_model=model, n_columns=2,
                fuse="never", cache=None,
            )
            assert np.array_equal(fused.run(columns), reference)
            assert np.array_equal(plain.run(columns), reference)
            steps = [s for s in fused.steps if s.kind == "fused-dense"]
            assert len(steps) == 1, "cost model declined fusion on this shape"
            assert fused.total_cycles < plain.total_cycles
            # the prediction that drove the decision matches the outcome
            step = steps[0]
            assert step.predicted_fused_cycles < step.predicted_serial_cycles

    def test_fusion_collapses_offload_count(self):
        graph = make_multi_head_graph(n_features=12, head_sizes=(3, 3, 3, 3), rng=2)
        model = SoCCostModel.calibrate(cluster(2))
        fused = compile_for_soc(
            graph, cluster(2), cost_model=model, n_columns=2, cache=None
        )
        plain = compile_for_soc(
            graph, cluster(2), cost_model=model, n_columns=2,
            fuse="never", cache=None,
        )
        columns = np.zeros((12, 2), dtype=np.int64)
        fused.run(columns)
        plain.run(columns)
        # trunk + fused heads vs trunk + four heads
        assert len(fused.reports) == 2
        assert len(plain.reports) == 5
