"""E6: deep-learning inference accuracy on the photonic MVM core.

Regenerates the accuracy-vs-analog-precision curve for a small MLP
classifier executed on the photonic datapath: float reference, ideal
photonic, 8-bit converters with detector noise, and decreasing PCM weight
level counts.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core import MLP, PhotonicMLP, QuantizationSpec, train_mlp
from repro.eval import classification_accuracy, format_table, make_digit_dataset

WEIGHT_LEVELS = (None, 64, 16, 8)


def _inference_study(n_eval=24):
    dataset = make_digit_dataset(n_samples_per_class=40, n_classes=4, n_features=16, rng=0)
    model = MLP.random_init([dataset.n_features, 12, dataset.n_classes], rng=0)
    train_mlp(model, dataset.train_x, dataset.train_y, epochs=25, rng=0)
    test_x, test_y = dataset.test_x[:n_eval], dataset.test_y[:n_eval]

    rows = [["float reference", "-", classification_accuracy(model.predict(test_x), test_y)]]
    rows.append([
        "photonic ideal", "-",
        PhotonicMLP(model, quantization=QuantizationSpec.ideal(), add_noise=False, rng=0)
        .accuracy(test_x, test_y),
    ])
    for levels in WEIGHT_LEVELS:
        photonic = PhotonicMLP(
            model, quantization=QuantizationSpec(8, 8, levels), add_noise=True, rng=1
        )
        label = "analog 8b I/O" if levels is None else f"analog 8b I/O + {levels}-level PCM"
        rows.append([label, levels if levels else "continuous", photonic.accuracy(test_x, test_y)])
    return rows


def test_bench_photonic_mlp_accuracy(benchmark):
    rows = run_once(benchmark, _inference_study)
    print("\n[E6] MLP classification accuracy on the photonic core")
    print(format_table(["configuration", "weight levels", "accuracy"], rows))
    accuracies = [row[2] for row in rows]
    float_accuracy, ideal_accuracy = accuracies[0], accuracies[1]
    # The ideal photonic path must reproduce the float model exactly.
    assert ideal_accuracy == float_accuracy
    # 8-bit analog operation stays close to the float baseline...
    assert accuracies[2] >= float_accuracy - 0.15
    # ...and accuracy degrades monotonically (within noise) as the PCM level
    # count shrinks, with 8-level weights clearly below the float baseline
    # or at best equal.
    assert accuracies[-1] <= accuracies[2] + 1e-9
