"""E5: GeMM via time-division multiplexing vs DWDM wavelength parallelism.

Regenerates the Section 4 claim that GeMM generalisation can use multiple
DWDM channels "processed in parallel in a single multiport interferometer
without incurring additional resource costs": latency and throughput of the
TDM and WDM schedules versus channel count, plus the accuracy cost of
inter-channel crosstalk.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core import PhotonicMVM, QuantizationSpec, TDMGeMM, WDMGeMM, WDMChannelPlan
from repro.eval import format_table

CHANNEL_COUNTS = (1, 2, 4, 8)


def _gemm_comparison(n=8, batch=16):
    rng = np.random.default_rng(0)
    weights = rng.normal(size=(n, n))
    inputs = rng.normal(size=(n, batch))
    engine = PhotonicMVM(weights, quantization=QuantizationSpec(8, 8, None), rng=0)

    rows = []
    tdm = TDMGeMM(engine).multiply(inputs)
    rows.append(["TDM", 1, tdm.n_passes, tdm.latency_s, tdm.throughput_macs_per_s,
                 tdm.relative_error, 1])
    for channels in CHANNEL_COUNTS[1:]:
        plan = WDMChannelPlan(n_channels=channels, crosstalk_db=-30)
        wdm = WDMGeMM(engine, plan, rng=1).multiply(inputs)
        rows.append(["WDM", channels, wdm.n_passes, wdm.latency_s,
                     wdm.throughput_macs_per_s, wdm.relative_error,
                     plan.resource_overhead()["meshes"]])
    return rows


def test_bench_tdm_vs_wdm_gemm(benchmark):
    rows = run_once(benchmark, _gemm_comparison)
    print("\n[E5] GeMM scheduling: TDM vs DWDM channels (8x8 x 16 columns)")
    print(format_table(
        ["schedule", "channels", "mesh passes", "latency (s)",
         "throughput (MAC/s)", "relative error", "meshes used"],
        rows,
    ))
    latency = {row[1]: row[3] for row in rows}
    error = {row[1]: row[5] for row in rows}
    # Latency drops roughly linearly with the channel count...
    assert latency[8] < latency[4] < latency[1]
    assert latency[1] / latency[8] > 4
    # ...while the mesh count stays at one and the accuracy cost of -30 dB
    # crosstalk remains small (same order as the TDM analog error).
    assert all(row[6] == 1 for row in rows)
    assert error[8] < 3 * error[1] + 0.05
