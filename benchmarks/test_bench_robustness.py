"""E3: robustness of mesh architectures to hardware errors.

Regenerates the robustness comparison: mean programmed-matrix fidelity
under (a) Gaussian phase-programming errors, (b) coupler splitting-ratio
errors, and (c) multilevel PCM phase quantisation, for the Clements and
Reck architectures (the Fldzhyan mesh is covered by its dedicated test
suite; keeping the benchmark to analytic meshes keeps it fast).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.eval import format_table
from repro.mesh import ClementsMesh, ReckMesh, sweep_error_magnitude
from repro.utils import random_unitary

PHASE_SIGMAS = (0.0, 0.05, 0.1, 0.2)
COUPLER_SIGMAS = (0.0, 0.02, 0.05)
QUANT_LEVELS = (8, 16, 64, 256)


def _robustness_tables(n_modes=6, n_trials=5):
    target = random_unitary(n_modes, rng=5)
    tables = {}
    for name, factory in (("clements", lambda: ClementsMesh(n_modes)),
                          ("reck", lambda: ReckMesh(n_modes))):
        tables[name] = {
            "phase": sweep_error_magnitude(factory, target, "phase", PHASE_SIGMAS, n_trials=n_trials, rng=0),
            "coupler": sweep_error_magnitude(factory, target, "coupler", COUPLER_SIGMAS, n_trials=n_trials, rng=1),
            "quantization": sweep_error_magnitude(factory, target, "quantization", QUANT_LEVELS, n_trials=1, rng=2),
        }
    return tables


def test_bench_robustness_sweeps(benchmark):
    tables = run_once(benchmark, _robustness_tables)
    for error_kind, header in (("phase", "sigma_phase (rad)"),
                               ("coupler", "sigma_split"),
                               ("quantization", "PCM levels")):
        rows = []
        for name, sweeps in tables.items():
            for point in sweeps[error_kind]:
                rows.append([name, point.error_magnitude, point.fidelity_mean, point.fidelity_std])
        print(f"\n[E3] fidelity vs {header} (N=6)")
        print(format_table(["architecture", header, "mean fidelity", "std"], rows))

    clements_phase = [p.fidelity_mean for p in tables["clements"]["phase"]]
    # Fidelity decreases monotonically (on average) with the phase error.
    assert clements_phase[0] > 0.9999
    assert clements_phase[-1] < clements_phase[0]
    # Quantisation: more PCM levels always help.
    quant = [p.fidelity_mean for p in tables["clements"]["quantization"]]
    assert quant[-1] > quant[0]
    assert quant[-1] > 0.999
    # Both analytic architectures use the same MZI count, so their average
    # phase-error sensitivity is comparable (within a few percent).
    reck_phase = [p.fidelity_mean for p in tables["reck"]["phase"]]
    assert abs(reck_phase[-1] - clements_phase[-1]) < 0.2
