"""Contract benchmarks for the spiking serving runtime.

Three qualitative contracts of the SNN engine (``repro.serving.snn``):

* fusing queued spike patterns into one multi-pattern network step is
  bitwise-identical to running them serially, and measurably faster (a
  conservative 1.2x floor here; ``run_bench.py`` records ~4x on the full
  configuration under the ``snn_serving`` section of
  ``BENCH_throughput.json``);
* online STDP between micro-batches is bitwise-reproducible for a fixed
  seed and arrival trace, and versions the engine cache through
  ``learning_hash`` so a cache hit never serves stale weights;
* a fault campaign against a live replica degrades monotonically end to
  end: perfect accuracy at zero faults, no better at the heaviest point.
"""

import time

import numpy as np

from benchmarks.conftest import run_once
from repro.eval.reporting import format_table
from repro.serving import (
    FaultCampaignDriver,
    SNNEngine,
    run_patterns_serial,
    spike_pattern_workload,
    synapse_fault_armer,
)
from repro.snn import PhotonicSNN, STDPRule

N_INPUTS, N_OUTPUTS = 16, 6
N_PATTERNS = 48
SPEEDUP_FLOOR = 1.2
TIMING_RETRIES = 3


def make_engine(learning: bool = False) -> SNNEngine:
    network = PhotonicSNN(
        N_INPUTS, N_OUTPUTS, stdp=STDPRule() if learning else None,
        inhibition=0.3, rng=7,
    )
    return SNNEngine(network, learning=learning, max_spikes=6)


def spike_columns(n_patterns: int = N_PATTERNS) -> np.ndarray:
    workload = spike_pattern_workload(N_INPUTS, n_patterns, rng=11)
    return np.stack([workload(i) for i in range(n_patterns)], axis=1)


def test_bench_fused_patterns_beat_serial(benchmark):
    columns = spike_columns()
    engine = make_engine()

    # correctness first: the fused step is a bitwise oracle of the serial one
    fused = run_once(benchmark, engine.run_batch, None, columns)
    serial = run_patterns_serial(engine, columns)
    assert np.array_equal(fused, serial)

    # timing contract, with retries against scheduler noise
    for attempt in range(TIMING_RETRIES):
        started = time.perf_counter()
        engine.run_batch(None, columns)
        fused_s = time.perf_counter() - started
        started = time.perf_counter()
        run_patterns_serial(engine, columns)
        serial_s = time.perf_counter() - started
        speedup = serial_s / max(fused_s, 1e-12)
        if speedup >= SPEEDUP_FLOOR:
            break
    assert speedup >= SPEEDUP_FLOOR, (
        f"fused multi-pattern run only {speedup:.2f}x serial after "
        f"{TIMING_RETRIES} attempts"
    )

    print()
    print(format_table(
        ["path", "seconds", "speedup"],
        [
            ["serial", round(serial_s, 5), 1.0],
            ["fused", round(fused_s, 5), round(speedup, 2)],
        ],
    ))


def test_bench_online_stdp_reproducible(benchmark):
    columns = spike_columns(32)

    def learn():
        engine = make_engine(learning=True)
        outputs = [
            engine.run_batch(None, columns[:, i : i + 8])
            for i in range(0, 32, 8)
        ]
        return (
            np.concatenate(outputs, axis=1),
            engine.network.synapse_array.fractions.copy(),
            engine,
        )

    out_a, fractions_a, engine_a = run_once(benchmark, learn)
    out_b, fractions_b, engine_b = learn()
    assert np.array_equal(out_a, out_b)
    assert np.array_equal(fractions_a, fractions_b)
    assert engine_a.stdp_updates == engine_b.stdp_updates > 0
    # every learning batch re-versions the cache key: no stale-weight hits
    assert engine_a.stats.cache_hits == 0
    assert engine_a.stats.compiles == 4
    assert engine_a.learning_hash == engine_b.learning_hash


def test_bench_fault_campaign_degrades_monotonically(benchmark):
    driver = FaultCampaignDriver(
        engine_factory=make_engine,
        fault_armer=synapse_fault_armer,
        make_request=spike_pattern_workload(N_INPUTS, 16, rng=11),
        n_requests=16,
        fault_counts=(0, 4, 32),
        root_seed=3,
    )
    curve = run_once(benchmark, driver.run)
    assert curve.accuracies[0] == 1.0
    assert curve.accuracies[-1] <= curve.accuracies[0]
    assert all(p99 >= 0.0 for p99 in curve.p99_ms)
    assert all(sum(p.outcomes.values()) == 16 for p in curve.points)

    print()
    print(format_table(
        ["faults", "accuracy", "p99_ms"],
        [
            [n, round(acc, 3), round(p99, 3)]
            for n, acc, p99 in zip(
                curve.fault_counts, curve.accuracies, curve.p99_ms
            )
        ],
    ))
