"""E7: photonic spiking neural network — excitability and STDP viability.

Regenerates the Section 3 claims: the Q-switched laser neuron has a clear
firing threshold with an all-or-nothing response, the PCM-pulse STDP window
has the standard causal/anti-causal shape, and online STDP in a small
network potentiates the synapses that drive output spikes.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.eval import format_table, make_spike_patterns
from repro.snn import ExcitableLaserNeuron, PhotonicSNN, STDPRule


def _snn_study():
    # 1. excitability threshold of the laser neuron
    neuron = ExcitableLaserNeuron()
    amplitudes = np.array([0.05, 0.1, 0.2, 0.4, 0.8])
    spike_counts = []
    for amplitude in amplitudes:
        response = neuron.stimulate([amplitude], [300.0], duration=1200.0)
        spike_counts.append(len(response["spike_times"]))
    threshold = neuron.firing_threshold(amplitudes)

    # 2. STDP window sampled at a few lags
    rule = STDPRule()
    lags = np.array([-4e-9, -1e-9, 1e-9, 4e-9])
    window = rule.window(lags)

    # 3. online STDP learning in a small network
    patterns = make_spike_patterns(n_inputs=8, n_patterns=2, rng=0)
    network = PhotonicSNN(8, 2, stdp=STDPRule(a_plus=0.12, a_minus=0.06),
                          inhibition=0.4, neuron_threshold=0.8, rng=0)
    initial = network.weight_matrix().copy()
    result = network.run(patterns[0], learning=True)
    final = network.weight_matrix()
    active = [t.neuron for t in patterns[0] if t.times.size > 0]
    inactive = [i for i in range(8) if i not in active]
    potentiation = float(np.mean(final[active] - initial[active]))
    inactive_change = float(np.mean(final[inactive] - initial[inactive]))

    return {
        "amplitudes": amplitudes,
        "spike_counts": spike_counts,
        "threshold": threshold,
        "lags": lags,
        "window": window,
        "output_spikes": result.total_output_spikes,
        "plasticity_events": result.plasticity_events,
        "energy_j": result.energy_j,
        "potentiation_active": potentiation,
        "change_inactive": inactive_change,
    }


def test_bench_snn_stdp(benchmark):
    data = run_once(benchmark, _snn_study)
    print("\n[E7] excitable laser response")
    print(format_table(
        ["input amplitude", "output spikes"],
        list(zip(data["amplitudes"], data["spike_counts"])),
    ))
    print(f"firing threshold: {data['threshold']:.2f}")
    print("\n[E7] STDP window")
    print(format_table(["delta_t (s)", "delta_w"], list(zip(data["lags"], data["window"]))))
    print("\n[E7] online STDP run: "
          f"{data['output_spikes']} output spikes, {data['plasticity_events']} updates, "
          f"{data['energy_j']:.3e} J, dW(active)={data['potentiation_active']:.3f}, "
          f"dW(inactive)={data['change_inactive']:.3f}")

    # Threshold behaviour: the weakest inputs are sub-threshold, strong ones spike.
    assert data["spike_counts"][0] == 0
    assert data["spike_counts"][-1] >= 1
    assert 0.05 < data["threshold"] <= 0.8
    # STDP window: causal potentiation, anti-causal depression, decaying with lag.
    assert data["window"][2] > 0 > data["window"][1]
    assert abs(data["window"][2]) > abs(data["window"][3])
    # Learning: synapses from the active inputs are potentiated on average,
    # and more strongly than the synapses from silent inputs.
    assert data["output_spikes"] > 0
    assert data["potentiation_active"] > 0
    assert data["potentiation_active"] >= data["change_inactive"]
