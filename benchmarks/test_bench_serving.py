"""Traffic benchmarks for the inference serving runtime.

Replays a saturating seeded arrival trace against a single analog-photonic
replica twice — once as the batch-size-1 serial baseline, once with dynamic
micro-batching — and asserts the serving layer's two qualitative contracts:

* under saturation the micro-batcher fuses requests (engine calls are a
  small fraction of request count), and
* fused serving achieves strictly higher throughput than serial serving
  (conservative 1.5x floor here; ``run_bench.py`` records the full
  offered-load sweep, which sits around 8x at saturation — see the
  ``serving`` section of ``BENCH_throughput.json``).

The full offered-load-vs-throughput/latency sweep is persisted by
``python benchmarks/run_bench.py`` into ``BENCH_throughput.json`` under the
``serving`` section.
"""

import asyncio

import numpy as np

from benchmarks.conftest import run_once
from repro.eval.reporting import format_table
from repro.serving import (
    GemmEngine,
    InferenceServer,
    Replica,
    make_column_workload,
    poisson_arrival_times,
    run_open_loop,
)

SHAPE = (16, 16)
N_REQUESTS = 96
OFFERED_HZ = 40_000.0  # far above the serial capacity of the analog replica


def _serve(max_batch: int):
    """One saturating open-loop run; returns (engine, LoadReport)."""
    weights = np.random.default_rng(0).normal(size=SHAPE)

    async def scenario():
        engine = GemmEngine(backend="analog-photonic", weights=weights, rng=0)
        engine.compile(None)  # program the mesh outside the traffic window
        replica = Replica(
            "r0", engine, max_batch=max_batch, max_wait_s=0.0, max_queue_depth=256
        )
        async with InferenceServer([replica]) as server:
            trace = poisson_arrival_times(OFFERED_HZ, N_REQUESTS, rng=1)
            workload = make_column_workload(SHAPE[1], N_REQUESTS, rng=2)
            report = await run_open_loop(
                server, trace, workload, offered_rate_hz=OFFERED_HZ
            )
        return engine, report

    return asyncio.run(scenario())


def test_bench_serving_dynamic_batching(benchmark):
    serial_engine, serial_report = _serve(max_batch=1)
    dynamic_engine, dynamic_report = run_once(benchmark, _serve, 64)

    assert serial_report.completed == N_REQUESTS
    assert dynamic_report.completed == N_REQUESTS
    # serial serving really did one engine call per request
    assert serial_engine.stats.batches == N_REQUESTS
    # saturation forces fusion: far fewer engine calls than requests
    assert dynamic_engine.stats.batches <= N_REQUESTS / 3
    assert dynamic_engine.stats.mean_batch >= 3.0

    rows = []
    for label, report in (("batch1", serial_report), ("dynamic", dynamic_report)):
        latency = report.telemetry["latency"]
        rows.append(
            [
                label,
                round(report.achieved_hz, 1),
                round(latency["p50_ms"], 3),
                round(latency["p99_ms"], 3),
                report.telemetry["queue_depth"]["max"],
            ]
        )
    print()
    print(format_table(["mode", "achieved_hz", "p50_ms", "p99_ms", "max_queue"], rows))

    # the acceptance sweep in run_bench.py measures ~8x at saturating load;
    # keep a generous margin here so CI machine noise never flakes the suite
    assert dynamic_report.achieved_hz > 1.5 * serial_report.achieved_hz
