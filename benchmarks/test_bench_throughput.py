"""Throughput benchmarks for the vectorized hot-path engine.

Records operations-per-second figures for the four kernels the simulator
spends its time in — mesh matrix builds, batched MVM, GeMM schedules and
SNN event processing — and asserts the two performance contracts of the
vectorization work:

* a 32-mode batched MVM workload must be at least 10x faster than pushing
  the same vectors through the engine one at a time (measured loop-vs-batch
  in the same run), and
* a 64-mode Clements mesh must program and build its physical matrix in
  under a second.

Run ``python benchmarks/run_bench.py`` to persist the numbers to
``BENCH_throughput.json`` for cross-PR trajectory tracking.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.core.gemm import TDMGeMM, WDMGeMM
from repro.core.mvm import PhotonicMVM
from repro.core.nn import MLP, PhotonicMLP
from repro.core.quantization import QuantizationSpec
from repro.core.wdm import WDMChannelPlan
from repro.eval.reporting import format_table
from repro.mesh.base import MeshErrorModel
from repro.mesh.clements import ClementsMesh
from repro.snn.network import PhotonicSNN
from repro.snn.stdp import STDPRule
from repro.utils.linalg import random_unitary


def _timed(function) -> float:
    """Wall-clock seconds of one call."""
    start = time.perf_counter()
    function()
    return time.perf_counter() - start


def test_bench_mesh_build_64_modes(benchmark):
    """Program + physical-matrix build of a 64-mode Clements mesh (< 1 s)."""
    target = random_unitary(64, rng=11)
    error = MeshErrorModel(phase_error_std=0.02, coupler_ratio_error_std=0.01, rng=0)

    def build():
        mesh = ClementsMesh(64)
        mesh.program(target)
        return mesh.matrix(error)

    start = time.perf_counter()
    realized = build()
    elapsed = time.perf_counter() - start
    run_once(benchmark, build)
    print(f"\n[throughput] 64-mode Clements program+physical build: {elapsed * 1e3:.1f} ms")
    assert realized.shape == (64, 64)
    assert elapsed < 1.0, f"64-mode mesh build took {elapsed:.2f} s (budget: 1 s)"


def test_bench_mesh_build_scaling(benchmark):
    """Mesh builds per second across sizes (the O(N^3) forward model)."""

    def sweep():
        rows = []
        for n in (8, 16, 32, 64):
            mesh = ClementsMesh(n).program(random_unitary(n, rng=n))
            mesh.set_phase_vector(mesh.phase_vector())  # invalidate the cache
            start = time.perf_counter()
            repeats = 5
            for index in range(repeats):
                phases = mesh.phase_vector()
                phases[0] += 1e-9 * (index + 1)  # defeat the matrix cache
                mesh.set_phase_vector(phases)
                mesh.matrix()
            elapsed = (time.perf_counter() - start) / repeats
            rows.append([n, mesh.n_mzis, elapsed * 1e3, 1.0 / elapsed])
        return rows

    rows = run_once(benchmark, sweep)
    print("\n[throughput] ideal mesh matrix builds")
    print(format_table(["modes", "MZIs", "ms/build", "builds/s"], rows))
    assert rows[-1][2] < 1000.0


def test_bench_batched_mvm_speedup_32_modes(benchmark):
    """Batched MVM must beat the per-vector loop by >= 10x at 32 modes."""
    rng = np.random.default_rng(0)
    weights = rng.normal(size=(32, 32))
    engine = PhotonicMVM(weights, quantization=QuantizationSpec.ideal(), rng=0)
    batch = rng.normal(size=(32, 256))

    def loop_path():
        return np.stack(
            [engine.apply(batch[:, i], add_noise=False).value for i in range(batch.shape[1])],
            axis=1,
        )

    def batch_path():
        return engine.apply_batch(batch, add_noise=False).value

    # Warm both paths once (allocator / cache warm-up), then time the loop
    # once and the batch path best-of-5 — both in this same run.
    engine.apply(batch[:, 0], add_noise=False)
    batch_result = batch_path()
    start = time.perf_counter()
    loop_result = loop_path()
    loop_elapsed = time.perf_counter() - start
    batch_elapsed = min(
        _timed(batch_path) for _ in range(5)
    )
    run_once(benchmark, batch_path)

    speedup = loop_elapsed / batch_elapsed
    mvms_per_s = batch.shape[1] / batch_elapsed
    print(
        f"\n[throughput] 32-mode MVM, batch=256: loop {loop_elapsed * 1e3:.1f} ms, "
        f"batch {batch_elapsed * 1e3:.2f} ms, speedup {speedup:.1f}x, "
        f"{mvms_per_s:.0f} MVM/s"
    )
    assert np.allclose(loop_result, batch_result, atol=1e-12)
    assert speedup >= 10.0, f"batched path only {speedup:.1f}x faster than the loop"


def test_bench_gemm_schedule_throughput(benchmark):
    """Simulated MACs/s of the TDM and WDM GeMM schedules."""
    rng = np.random.default_rng(1)
    weights = rng.normal(size=(32, 32))
    engine = PhotonicMVM(weights, quantization=QuantizationSpec.ideal(), rng=0)
    inputs = rng.normal(size=(32, 128))

    def schedules():
        rows = []
        for name, scheduler in (
            ("tdm", TDMGeMM(engine)),
            ("wdm-8ch", WDMGeMM(engine, WDMChannelPlan(n_channels=8), rng=0)),
        ):
            start = time.perf_counter()
            result = scheduler.multiply(inputs, add_noise=False)
            elapsed = time.perf_counter() - start
            rows.append(
                [
                    name,
                    result.n_passes,
                    result.throughput_macs_per_s / 1e12,
                    elapsed * 1e3,
                    result.total_macs / elapsed / 1e6,
                ]
            )
        return rows

    rows = run_once(benchmark, schedules)
    print("\n[throughput] GeMM schedules, 32x32 weights x 128 columns")
    print(
        format_table(
            ["schedule", "passes", "model TMAC/s", "sim ms", "sim MMAC/s"], rows
        )
    )
    # The WDM schedule models fewer sequential passes, hence more MACs/s.
    assert rows[1][2] > rows[0][2]


def test_bench_photonic_mlp_inference(benchmark):
    """Batched photonic MLP inference samples/s."""
    model = MLP.random_init([16, 24, 4], rng=0)
    photonic = PhotonicMLP(
        model, quantization=QuantizationSpec.ideal(), add_noise=False, rng=0
    )
    rng = np.random.default_rng(2)
    inputs = rng.uniform(size=(512, 16))

    def infer():
        return photonic.forward(inputs)

    start = time.perf_counter()
    outputs = infer()
    elapsed = time.perf_counter() - start
    run_once(benchmark, infer)
    print(
        f"\n[throughput] photonic MLP 16-24-4, batch=512: "
        f"{elapsed * 1e3:.1f} ms, {inputs.shape[0] / elapsed:.0f} samples/s"
    )
    assert outputs.shape == (512, 4)
    assert np.allclose(outputs, model.forward(inputs), atol=1e-6)


def test_bench_snn_event_rate(benchmark):
    """SNN events processed per second with online STDP enabled."""
    network = PhotonicSNN(
        32, 8, stdp=STDPRule(), inhibition=0.2, neuron_threshold=0.6, rng=0
    )
    from repro.snn.encoding import rate_encode

    pattern = rate_encode(np.tile([1.0, 0.6, 0.0, 0.9], 8), max_spikes=10)

    def run_network():
        return network.run(pattern, learning=True)

    start = time.perf_counter()
    result = run_network()
    elapsed = time.perf_counter() - start
    run_once(benchmark, run_network)
    events_per_s = result.total_input_spikes / elapsed
    print(
        f"\n[throughput] SNN 32->8 with STDP: {result.total_input_spikes} events in "
        f"{elapsed * 1e3:.1f} ms ({events_per_s:.0f} events/s, "
        f"{result.plasticity_events} plasticity updates)"
    )
    assert result.total_input_spikes > 0
    assert events_per_s > 100.0
