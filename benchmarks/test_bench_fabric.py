"""Contract benchmark for the multi-process serving fabric.

Serves the same compute-heavy engine (exact digital GeMM plus a blocking
per-column service time) two ways at a saturating open-loop offered load —
one single-process asyncio :class:`InferenceServer` and one
:class:`FabricGateway` over spawned worker processes — and asserts the
fabric's two qualitative contracts:

* the fabric's answers are bitwise-identical to in-process serving, and
* at saturation the fabric achieves strictly higher throughput than the
  single-process server (conservative 1.3x floor with 2 workers here;
  ``run_bench.py`` measures the 4-worker configuration, which must clear
  2x — see the ``serving_fabric`` section of ``BENCH_throughput.json``).

The full comparison (offered vs achieved load, p50/p99, per-worker
completion counts) is persisted by ``python benchmarks/run_bench.py``
under the ``serving_fabric`` section.
"""

import asyncio

import numpy as np

from benchmarks.conftest import run_once
from repro.eval.reporting import format_table
from repro.serving import (
    FabricGateway,
    GemmEngine,
    InferenceServer,
    Replica,
    make_column_workload,
    make_worker_specs,
    poisson_arrival_times,
    run_open_loop,
)
from repro.serving.fabric.engines import ComputeHeavyBackend

SHAPE = (16, 16)
N_WORKERS = 2
SERVICE_S = 0.003
N_REQUESTS = 60
MAX_BATCH = 8
QUEUE_DEPTH = 4 * N_REQUESTS
OFFERED_HZ = 4.0 / SERVICE_S  # several times one engine's service rate
WEIGHTS = np.random.default_rng(0).normal(size=SHAPE)
ENGINE_KWARGS = {"weights": WEIGHTS, "service_s_per_column": SERVICE_S}


def _make_replicas():
    return [
        Replica(
            f"w{index}",
            GemmEngine(
                backend=ComputeHeavyBackend(service_s_per_column=SERVICE_S),
                weights=WEIGHTS,
                name=f"w{index}",
            ),
            max_batch=MAX_BATCH,
            max_queue_depth=QUEUE_DEPTH,
        )
        for index in range(N_WORKERS)
    ]


def _make_specs():
    return make_worker_specs(
        N_WORKERS,
        "repro.serving.fabric.engines:make_compute_heavy_engine",
        engine_kwargs=ENGINE_KWARGS,
        max_batch=MAX_BATCH,
        max_queue_depth=QUEUE_DEPTH,
    )


def _serve_single_process():
    """Saturating open-loop run against the in-process server."""

    async def scenario():
        async with InferenceServer(_make_replicas()) as server:
            trace = poisson_arrival_times(OFFERED_HZ, N_REQUESTS, rng=1)
            workload = make_column_workload(SHAPE[1], N_REQUESTS, rng=2)
            return await run_open_loop(
                server, trace, workload, offered_rate_hz=OFFERED_HZ
            )

    return asyncio.run(scenario())


def _serve_fabric():
    """The same trace against the multi-process gateway."""

    async def scenario():
        async with FabricGateway(
            _make_specs(), max_pending=QUEUE_DEPTH
        ) as gateway:
            trace = poisson_arrival_times(OFFERED_HZ, N_REQUESTS, rng=1)
            workload = make_column_workload(SHAPE[1], N_REQUESTS, rng=2)
            return await run_open_loop(
                gateway, trace, workload, offered_rate_hz=OFFERED_HZ
            )

    return asyncio.run(scenario())


def test_bench_fabric_bitwise_equivalence():
    """Pinned sequential traffic answers identically on both serving paths."""

    async def both():
        workload = make_column_workload(SHAPE[1], 12, rng=3)
        async with InferenceServer(_make_replicas()) as server:
            expected = [
                await server.submit(workload(index), replica=f"w{index % N_WORKERS}")
                for index in range(12)
            ]
        async with FabricGateway(_make_specs()) as gateway:
            actual = [
                await gateway.submit(workload(index), replica=f"w{index % N_WORKERS}")
                for index in range(12)
            ]
        return expected, actual

    expected, actual = asyncio.run(both())
    for want, got in zip(expected, actual):
        assert np.array_equal(got, want)


def test_bench_fabric_beats_single_process(benchmark):
    single_report = _serve_single_process()
    fabric_report = run_once(benchmark, _serve_fabric)

    # a throughput win bought with dropped work would be meaningless
    assert single_report.completed == N_REQUESTS
    assert fabric_report.completed == N_REQUESTS
    assert single_report.rejected == 0
    assert fabric_report.rejected == 0

    rows = []
    for label, report in (("single", single_report), ("fabric", fabric_report)):
        latency = report.telemetry["latency"]
        rows.append(
            [
                label,
                round(report.achieved_hz, 1),
                round(latency["p50_ms"], 3),
                round(latency["p99_ms"], 3),
            ]
        )
    print()
    print(format_table(["mode", "achieved_hz", "p50_ms", "p99_ms"], rows))

    # both workers really served across the process boundary
    per_worker = fabric_report.telemetry["replicas"]
    assert all(per_worker[f"w{i}"]["completed"] > 0 for i in range(N_WORKERS))

    # the acceptance run in run_bench.py measures ~1.8x at 2 workers and
    # >2x at 4; keep a margin here so CI machine noise never flakes tier-1
    assert fabric_report.achieved_hz > 1.3 * single_report.achieved_hz
