#!/usr/bin/env python
"""Validate internal Markdown links across the repo's documentation.

Scans every ``*.md`` file under :data:`DOC_DIRS` — the repo root plus
``docs/``, ``examples/``, ``benchmarks/``, ``tests/`` and ``src/``
(recursively) — for inline links ``[text](target)`` and checks that:

* relative file targets exist on disk;
* ``#anchor`` fragments (same-file or cross-file) resolve to a heading in
  the target file, using GitHub's slug rules (lowercase, formatting
  stripped, punctuation dropped, spaces to hyphens).

External links (``http://``, ``https://``, ``mailto:``) are skipped —
this is the *internal* consistency gate CI runs so docs can't silently
rot when files move or headings get renamed.

Usage::

    python tools/check_links.py          # exit 1 on any broken link
"""

from __future__ import annotations

import functools
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Directories scanned for Markdown files (recursively).
DOC_DIRS = (".", "docs", "examples", "benchmarks", "tests", "src")

#: Inline Markdown link: [text](target) — images share the syntax.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: ATX heading at line start (fenced code blocks are masked out first).
HEADING_PATTERN = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$", re.MULTILINE)

FENCE_PATTERN = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line.

    Backticks are formatting and vanish; word characters (underscores
    included) and hyphens survive; everything else (``*``, ``.``, ``:``,
    …) is dropped; spaces become hyphens.
    """
    text = heading.strip().replace("`", "").lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_files() -> list[Path]:
    """Every Markdown file under the scanned directories, deduplicated."""
    files: set[Path] = set()
    for directory in DOC_DIRS:
        base = REPO_ROOT / directory
        if directory == ".":
            files.update(base.glob("*.md"))
        elif base.is_dir():
            files.update(base.rglob("*.md"))
    return sorted(files)


@functools.lru_cache(maxsize=None)
def anchors_of(path: Path) -> set[str]:
    """Slugs of every heading in a Markdown file (duplicates not suffixed).

    Cached per path — heavily anchor-linked files (the README) are parsed
    once per run, not once per link.
    """
    text = FENCE_PATTERN.sub("", path.read_text(encoding="utf-8"))
    return {github_slug(match.group(2)) for match in HEADING_PATTERN.finditer(text)}


def check_file(path: Path) -> list[str]:
    """Return a list of broken-link descriptions for one Markdown file."""
    problems: list[str] = []
    text = FENCE_PATTERN.sub("", path.read_text(encoding="utf-8"))
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target, _, fragment = target.partition("#")
        if target:
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                problems.append(f"{path.relative_to(REPO_ROOT)}: missing file {target!r}")
                continue
        else:
            resolved = path
        if fragment:
            if resolved.suffix.lower() != ".md":
                continue  # anchors into non-Markdown files are not checked
            if fragment not in anchors_of(resolved):
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}: anchor #{fragment} not found "
                    f"in {resolved.relative_to(REPO_ROOT)}"
                )
    return problems


def main() -> int:
    """Check every documentation file; print problems and return 1 if any."""
    problems: list[str] = []
    files = markdown_files()
    for path in files:
        problems.extend(check_file(path))
    if problems:
        print(f"{len(problems)} broken link(s) across {len(files)} file(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"all internal links resolve across {len(files)} Markdown file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
