#!/usr/bin/env python
"""Validate and summarize Chrome trace-event JSON files.

Usage::

    PYTHONPATH=src python tools/trace_view.py trace.json [more.json ...]

For each file: structurally validates it with
``repro.obs.export.validate_chrome_trace`` (the same invariants
``chrome://tracing`` / Perfetto rely on) and prints a per-process event
summary plus the distinct trace ids seen.  Exits non-zero if any file
fails validation, so CI can gate exported traces on it.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter

from repro.obs.export import validate_chrome_trace


def summarize(obj: dict) -> str:
    """Render a short human summary of a validated trace object."""
    events = obj["traceEvents"]
    process_names = {
        event["pid"]: event["args"]["name"]
        for event in events
        if event["ph"] == "M" and event["name"] == "process_name"
    }
    by_phase = Counter(event["ph"] for event in events)
    by_process = Counter(
        process_names.get(event["pid"], str(event["pid"]))
        for event in events
        if event["ph"] != "M"
    )
    trace_ids = sorted(
        {
            event["args"]["trace_id"]
            for event in events
            if isinstance(event.get("args"), dict) and "trace_id" in event["args"]
        }
    )
    lines = [
        f"  events: {len(events)} "
        + " ".join(f"{phase}={count}" for phase, count in sorted(by_phase.items())),
        "  processes: "
        + (
            ", ".join(f"{name}={count}" for name, count in sorted(by_process.items()))
            or "(none)"
        ),
        f"  traces: {len(trace_ids)}"
        + (f" ({', '.join(trace_ids[:8])}{'...' if len(trace_ids) > 8 else ''})" if trace_ids else ""),
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", help="Chrome trace JSON files to check")
    args = parser.parse_args(argv)
    failures = 0
    for path in args.paths:
        try:
            with open(path, "r", encoding="utf-8") as stream:
                obj = json.load(stream)
            count = validate_chrome_trace(obj)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"{path}: INVALID — {exc}")
            failures += 1
            continue
        print(f"{path}: OK ({count} events)")
        print(summarize(obj))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
