"""The photonic neuromorphic accelerator core (the paper's contribution).

Combines the mesh architectures and device models into an in-memory
photonic MVM/GeMM engine with quantisation, calibration, neural-network
inference, DWDM parallelism, and speed/energy/footprint models.
"""

from repro.core.mvm import PhotonicMVM, MVMResult
from repro.core.gemm import TDMGeMM, WDMGeMM, GeMMResult, backend_gemm
from repro.core.backends import (
    ExecutionBackend,
    IdealDigitalBackend,
    QuantizedDigitalBackend,
    AnalogPhotonicBackend,
    available_backends,
    create_backend,
    register_backend,
    matmul,
    resolve_backend,
    unregister_backend,
    DEFAULT_BACKEND,
)
from repro.core.quantization import (
    QuantizationSpec,
    quantize_uniform,
    quantize_nonnegative,
    quantize_weights,
    effective_bits,
)
from repro.core.wdm import WDMChannelPlan
from repro.core.calibration import (
    CalibrationReport,
    calibrate_mesh,
    measure_realized_matrix,
    project_to_unitary,
)
from repro.core.energy import (
    AreaModel,
    PhotonicCoreEnergyModel,
    combined_component_count,
)
from repro.core.nn import (
    DenseLayer,
    MLP,
    PhotonicMLP,
    train_mlp,
    relu,
    softmax,
)

__all__ = [
    "PhotonicMVM",
    "MVMResult",
    "TDMGeMM",
    "WDMGeMM",
    "GeMMResult",
    "backend_gemm",
    "ExecutionBackend",
    "IdealDigitalBackend",
    "QuantizedDigitalBackend",
    "AnalogPhotonicBackend",
    "available_backends",
    "create_backend",
    "matmul",
    "register_backend",
    "resolve_backend",
    "unregister_backend",
    "DEFAULT_BACKEND",
    "QuantizationSpec",
    "quantize_uniform",
    "quantize_nonnegative",
    "quantize_weights",
    "effective_bits",
    "WDMChannelPlan",
    "CalibrationReport",
    "calibrate_mesh",
    "measure_realized_matrix",
    "project_to_unitary",
    "AreaModel",
    "PhotonicCoreEnergyModel",
    "combined_component_count",
    "DenseLayer",
    "MLP",
    "PhotonicMLP",
    "train_mlp",
    "relu",
    "softmax",
]
