"""Energy, latency and footprint model of the photonic accelerator core.

The system-level evaluation of the paper reports "key metrics such as
speed, energy consumption, and footprint".  This module turns a mesh
configuration plus device energy figures into those three numbers, and in
particular quantifies the headline device-level claim: a thermo-optic mesh
pays a *static* tuning power for as long as the weights are held, while a
PCM mesh pays a one-off programming energy and then holds the weights for
free (experiment E4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.devices.laser import CWLaser
from repro.devices.modulator import MachZehnderModulator
from repro.devices.phase_shifter import PCMPhaseShifter, ThermoOpticPhaseShifter
from repro.devices.photodetector import Photodetector


@dataclass(frozen=True)
class AreaModel:
    """Footprint figures of the photonic building blocks [mm^2].

    Defaults correspond to typical SiPh component sizes: a thermo-optic MZI
    cell is a few hundred micrometres long, PCM cells are an order of
    magnitude shorter, and high-speed modulators/detectors dominate the
    perimeter of the die.
    """

    mzi_mm2: float = 0.02
    compact_mzi_mm2: float = 0.012
    phase_shifter_mm2: float = 0.004
    pcm_phase_shifter_mm2: float = 0.0008
    modulator_mm2: float = 0.03
    detector_mm2: float = 0.005
    laser_mm2: float = 0.25

    def mesh_area_mm2(self, component_count: dict, non_volatile: bool, compact: bool = False) -> float:
        """Total mesh area from a mesh ``component_count()`` inventory."""
        mzi_area = self.compact_mzi_mm2 if compact else self.mzi_mm2
        shifter_area = (
            self.pcm_phase_shifter_mm2 if non_volatile else self.phase_shifter_mm2
        )
        n_couplers = component_count.get("couplers", 0)
        n_shifters = component_count.get("phase_shifters", 0)
        # Couplers come in pairs per MZI cell; standalone couplers (Fldzhyan
        # mixing layers) are counted at half an MZI cell.
        n_mzis = component_count.get("mzis", 0)
        standalone_couplers = max(n_couplers - 2 * n_mzis, 0)
        return (
            n_mzis * mzi_area
            + standalone_couplers * (mzi_area / 2.0)
            + n_shifters * shifter_area
        )


@dataclass
class PhotonicCoreEnergyModel:
    """Speed / energy / footprint model of one photonic MVM core.

    Attributes:
        n_inputs / n_outputs: MVM dimensions.
        component_count: mesh inventory (``mesh.component_count()`` of the
            two SVD meshes combined, or of a single unitary mesh).
        non_volatile: True for PCM phase shifters, False for thermo-optic.
        compact_cells: True when the Bell-Walmsley compacted cell is used.
        laser / modulator / detector: device models supplying power figures.
        thermo_shifter / pcm_shifter: representative phase-shifter devices
            used for static power and programming energy.
        area_model: component footprint figures.
        digital_overhead_energy_per_op: energy of the digital pre/post
            processing per MAC [J] (normalisation, accumulation).
    """

    n_inputs: int
    n_outputs: int
    component_count: dict
    non_volatile: bool = True
    compact_cells: bool = False
    laser: CWLaser = field(default_factory=CWLaser)
    modulator: MachZehnderModulator = field(default_factory=MachZehnderModulator)
    detector: Photodetector = field(default_factory=Photodetector)
    thermo_shifter: ThermoOpticPhaseShifter = field(default_factory=ThermoOpticPhaseShifter)
    pcm_shifter: PCMPhaseShifter = field(default_factory=PCMPhaseShifter)
    area_model: AreaModel = field(default_factory=AreaModel)
    digital_overhead_energy_per_op: float = 10e-15

    def __post_init__(self):
        if self.n_inputs < 1 or self.n_outputs < 1:
            raise ValueError("MVM dimensions must be positive")

    # ------------------------------------------------------------------ #
    # speed
    # ------------------------------------------------------------------ #
    @property
    def mvm_latency_s(self) -> float:
        """Latency of one MVM: one modulation symbol + time of flight.

        The optical time of flight through the mesh is a few picoseconds
        per column and is dwarfed by the symbol period; both are included.
        """
        symbol = 1.0 / self.modulator.symbol_rate
        depth = self.component_count.get("depth", self.n_inputs)
        time_of_flight = depth * 5e-12
        return symbol + time_of_flight

    @property
    def mvm_rate_hz(self) -> float:
        """Sustained MVM rate (pipelined on the modulator symbol rate)."""
        return self.modulator.symbol_rate

    @property
    def macs_per_mvm(self) -> int:
        """Multiply-accumulates performed by one optical pass."""
        return self.n_inputs * self.n_outputs

    @property
    def peak_throughput_macs_per_s(self) -> float:
        """Peak MAC throughput of the core."""
        return self.macs_per_mvm * self.mvm_rate_hz

    # ------------------------------------------------------------------ #
    # energy
    # ------------------------------------------------------------------ #
    @property
    def static_mesh_power_w(self) -> float:
        """Static electrical power to hold the programmed weights [W].

        Thermo-optic meshes hold, on average, half the full-scale phase per
        shifter; PCM meshes hold weights for free.
        """
        if self.non_volatile:
            return 0.0
        n_shifters = self.component_count.get("phase_shifters", 0)
        average_phase_power = self.thermo_shifter.material.heater_power_for_phase(np.pi / 2.0)
        return n_shifters * average_phase_power

    @property
    def laser_power_w(self) -> float:
        """Electrical power of the optical supply [W]."""
        return self.laser.electrical_power_w

    def programming_energy_j(self) -> float:
        """Energy to (re)program the full weight matrix once [J]."""
        n_shifters = self.component_count.get("phase_shifters", 0)
        if self.non_volatile:
            return n_shifters * self.pcm_shifter.programming_energy()
        return n_shifters * self.thermo_shifter.programming_energy()

    def energy_per_mvm_j(self) -> float:
        """Dynamic energy of one MVM [J] (excludes weight programming)."""
        encode = self.modulator.encoding_energy(self.n_inputs)
        readout = self.detector.readout_energy(self.n_outputs)
        optical = (self.laser_power_w + self.static_mesh_power_w) * self.mvm_latency_s
        digital = self.digital_overhead_energy_per_op * self.macs_per_mvm
        return encode + readout + optical + digital

    def energy_per_mac_j(self) -> float:
        """Dynamic energy per MAC [J] — the figure of merit quoted for accelerators."""
        return self.energy_per_mvm_j() / self.macs_per_mvm

    def inference_energy_j(self, n_mvms: int, include_programming: bool = True, hold_time_s: Optional[float] = None) -> float:
        """Total energy of a workload of ``n_mvms`` MVMs with static weights.

        ``hold_time_s`` defaults to the time the workload takes at the
        sustained MVM rate; for a thermo-optic mesh the static tuning power
        is integrated over this period, which is exactly the term the PCM
        platform removes.
        """
        if n_mvms < 0:
            raise ValueError("n_mvms must be non-negative")
        hold_time = hold_time_s if hold_time_s is not None else n_mvms / self.mvm_rate_hz
        dynamic = n_mvms * (
            self.modulator.encoding_energy(self.n_inputs)
            + self.detector.readout_energy(self.n_outputs)
            + self.digital_overhead_energy_per_op * self.macs_per_mvm
        )
        supply = (self.laser_power_w + self.static_mesh_power_w) * hold_time
        programming = self.programming_energy_j() if include_programming else 0.0
        return dynamic + supply + programming

    # ------------------------------------------------------------------ #
    # footprint
    # ------------------------------------------------------------------ #
    def area_mm2(self) -> float:
        """Total die area of the core [mm^2]."""
        mesh = self.area_model.mesh_area_mm2(
            self.component_count, non_volatile=self.non_volatile, compact=self.compact_cells
        )
        io = (
            self.n_inputs * self.area_model.modulator_mm2
            + self.n_outputs * self.area_model.detector_mm2
            + self.area_model.laser_mm2
        )
        return mesh + io

    def summary(self) -> dict:
        """All headline metrics in one dictionary (for table printing)."""
        return {
            "n_inputs": self.n_inputs,
            "n_outputs": self.n_outputs,
            "non_volatile": self.non_volatile,
            "mvm_latency_s": self.mvm_latency_s,
            "peak_throughput_macs_per_s": self.peak_throughput_macs_per_s,
            "static_mesh_power_w": self.static_mesh_power_w,
            "laser_power_w": self.laser_power_w,
            "energy_per_mac_j": self.energy_per_mac_j(),
            "programming_energy_j": self.programming_energy_j(),
            "area_mm2": self.area_mm2(),
        }


def combined_component_count(*meshes) -> dict:
    """Merge ``component_count()`` inventories of several meshes (SVD cores)."""
    totals: dict = {}
    for mesh in meshes:
        if mesh is None:
            continue
        for key, value in mesh.component_count().items():
            if key == "depth":
                totals[key] = totals.get(key, 0) + value
            elif key == "modes":
                totals[key] = max(totals.get(key, 0), value)
            else:
                totals[key] = totals.get(key, 0) + value
    return totals
