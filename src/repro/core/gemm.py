"""Generalised matrix-matrix multiplication (GeMM) on the photonic MVM core.

Section 4 of the paper: "Generalization to GeMM operations can be realized
through separating of the input matrix into rows, and processing those
either via time-division multiplexing or through encoding into multiple
dense wavelength division multiplexed (DWDM) channels that can be processed
in parallel in a single multiport interferometer without incurring
additional resource costs."

Two schedulers are provided on top of :class:`repro.core.mvm.PhotonicMVM`:

* ``TDMGeMM`` — input-matrix columns are streamed one per modulator symbol
  period (time-division multiplexing).
* ``WDMGeMM`` — columns are distributed over DWDM channels that share the
  same mesh; each channel behaves like an independent TDM stream, and
  inter-channel crosstalk couples the detected results.

Both return the numerical product plus a latency/energy estimate so the
system-level simulator and the E5 benchmark can compare the schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.backends import BackendSpec, resolve_backend
from repro.core.mvm import PhotonicMVM
from repro.core.wdm import WDMChannelPlan
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class GeMMResult:
    """Result of one photonic GeMM operation.

    Attributes:
        value: the analog estimate of ``W @ X``.
        reference: the exact digital product.
        latency_s: wall-clock time of the schedule [s].
        n_symbols: total modulator symbols consumed.
        n_passes: number of sequential mesh passes (TDM slots).
    """

    value: np.ndarray
    reference: np.ndarray
    latency_s: float
    n_symbols: int
    n_passes: int

    @property
    def relative_error(self) -> float:
        norm = np.linalg.norm(self.reference)
        if norm == 0.0:
            return float(np.linalg.norm(self.value))
        return float(np.linalg.norm(self.value - self.reference) / norm)

    @property
    def total_macs(self) -> int:
        """Total multiply-accumulate operations of the product (m * n * k)."""
        return int(self.reference.shape[0] * self.n_symbols)

    @property
    def throughput_macs_per_s(self) -> float:
        """Effective multiply-accumulate throughput of the schedule."""
        if self.latency_s == 0:
            return float("inf")
        return self.total_macs / self.latency_s


def backend_gemm(
    weights: np.ndarray,
    input_matrix: np.ndarray,
    backend: BackendSpec = None,
    **backend_kwargs,
) -> GeMMResult:
    """Compute ``W @ X`` on a registered execution backend.

    The registry (``repro.core.backends``) supplies the matmul
    implementation — ``ideal-digital`` (default), ``quantized-digital``,
    ``analog-photonic`` or any user-registered backend — while the exact
    digital product is always kept as the reference, so backend accuracy
    can be compared through the usual :class:`GeMMResult` metrics.  Analog
    backends report their modulator-limited schedule latency; digital
    backends are instantaneous at this layer.
    """
    weights = np.asarray(weights)
    input_matrix = np.asarray(input_matrix)
    if input_matrix.ndim != 2 or weights.ndim != 2:
        raise ValueError("weights and input matrix must be two-dimensional")
    if weights.shape[1] != input_matrix.shape[0]:
        raise ValueError(
            f"inner dimensions disagree: {weights.shape} @ {input_matrix.shape}"
        )
    impl = resolve_backend(backend, **backend_kwargs)
    n_in, n_columns = input_matrix.shape
    reference = weights @ input_matrix
    value = impl.matmul(weights, input_matrix)
    return GeMMResult(
        value=np.asarray(value),
        reference=reference,
        latency_s=impl.schedule_latency_s(n_columns),
        n_symbols=n_columns * n_in,
        n_passes=n_columns,
    )


class TDMGeMM:
    """Time-division-multiplexed GeMM scheduler.

    Attributes:
        engine: the programmed photonic MVM engine (matrix ``W``).
    """

    def __init__(self, engine: PhotonicMVM):
        self.engine = engine

    def multiply(self, input_matrix: np.ndarray, add_noise: bool = True) -> GeMMResult:
        """Compute ``W @ X`` by streaming the columns of ``X`` through the mesh.

        The whole column stream is simulated as one batched engine pass
        (the physical schedule is still ``n_columns`` sequential symbols,
        which is what the latency model charges for).
        """
        input_matrix = np.asarray(input_matrix, dtype=complex)
        n_in = self.engine.shape[1]
        if input_matrix.ndim != 2 or input_matrix.shape[0] != n_in:
            raise ValueError(f"input matrix must have {n_in} rows")
        n_columns = input_matrix.shape[1]
        batched = self.engine.apply_batch(input_matrix, add_noise=add_noise)
        reference = batched.reference
        value = batched.value
        symbol_period = 1.0 / self.engine.modulator.symbol_rate
        latency = n_columns * symbol_period
        if np.allclose(reference.imag, 0.0) and np.allclose(value.imag, 0.0):
            reference = np.real(reference)
            value = np.real(value)
        return GeMMResult(
            value=value,
            reference=reference,
            latency_s=latency,
            n_symbols=n_columns * n_in,
            n_passes=n_columns,
        )


class WDMGeMM:
    """DWDM-parallel GeMM scheduler sharing one mesh across channels.

    Attributes:
        engine: the programmed photonic MVM engine (matrix ``W``).
        channel_plan: the DWDM channel plan (number of channels, crosstalk).
        rng: seed or generator for the crosstalk/dispersion noise.
    """

    def __init__(
        self,
        engine: PhotonicMVM,
        channel_plan: Optional[WDMChannelPlan] = None,
        rng: RngLike = None,
    ):
        self.engine = engine
        self.channel_plan = channel_plan if channel_plan is not None else WDMChannelPlan()
        self._rng = ensure_rng(rng)

    def multiply(self, input_matrix: np.ndarray, add_noise: bool = True) -> GeMMResult:
        """Compute ``W @ X`` with columns distributed over DWDM channels.

        Columns are assigned round-robin to channels; all channels of a
        round traverse the mesh simultaneously, so the latency is the
        number of rounds times the symbol period.  After detection the
        per-channel results are mixed by the crosstalk matrix.
        """
        input_matrix = np.asarray(input_matrix, dtype=complex)
        n_in = self.engine.shape[1]
        if input_matrix.ndim != 2 or input_matrix.shape[0] != n_in:
            raise ValueError(f"input matrix must have {n_in} rows")
        n_columns = input_matrix.shape[1]
        n_channels = self.channel_plan.n_channels
        reference = np.asarray(self.engine.weight_matrix) @ input_matrix
        value = np.zeros(reference.shape, dtype=complex)

        n_rounds = int(np.ceil(n_columns / n_channels))
        for round_index in range(n_rounds):
            start = round_index * n_channels
            stop = min(start + n_channels, n_columns)
            n_active = stop - start
            # One batched engine pass per DWDM round: the round's columns
            # ride different wavelengths through the same mesh simultaneously.
            round_result = self.engine.apply_batch(
                input_matrix[:, start:stop], add_noise=add_noise, compute_reference=False
            )
            channel_outputs = np.asarray(round_result.value, dtype=complex).T
            if add_noise and n_active > 1:
                padded = np.zeros((n_channels,) + channel_outputs.shape[1:], dtype=complex)
                padded[:n_active] = channel_outputs
                mixed_real = self.channel_plan.apply_crosstalk(padded.real, rng=self._rng)
                mixed_imag = self.channel_plan.apply_crosstalk(padded.imag, rng=self._rng)
                channel_outputs = (mixed_real + 1j * mixed_imag)[:n_active]
            value[:, start:stop] = channel_outputs.T

        symbol_period = 1.0 / self.engine.modulator.symbol_rate
        latency = n_rounds * symbol_period
        if np.allclose(reference.imag, 0.0) and np.allclose(value.imag, 0.0):
            reference = reference.real
            value = value.real
        return GeMMResult(
            value=value,
            reference=reference,
            latency_s=latency,
            n_symbols=n_columns * n_in,
            n_passes=n_rounds,
        )
