"""Photonic matrix-vector multiplication (MVM) engine.

This is the paper's core computing architecture: an in-memory optical MVM
engine built from programmable MZI meshes.  An arbitrary (not necessarily
unitary) weight matrix ``W`` is realised through its singular value
decomposition ``W = U . diag(s) . V^H``: two unitary meshes implement ``U``
and ``V^H`` and a column of amplitude attenuators (or modulators)
implements the singular values, normalised so every optical element is
passive.  Input vectors are encoded onto the mesh inputs by high-speed
Mach-Zehnder modulators, and the outputs are read by photodetectors.

The engine exposes the full noise chain of the analog datapath: input DAC
quantisation, modulator extinction, mesh programming/fabrication errors,
PCM phase quantisation, detector shot/thermal noise and ADC quantisation.
A digital reference path (``W @ x``) is kept alongside for accuracy
studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.core.quantization import QuantizationSpec, quantize_uniform
from repro.devices.modulator import MachZehnderModulator
from repro.devices.photodetector import Photodetector
from repro.mesh.base import MeshErrorModel
from repro.mesh.clements import ClementsMesh
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class MVMResult:
    """Result of one photonic MVM operation (single vector or batch).

    Attributes:
        value: the analog (noisy) estimate of ``W @ x`` — a vector for
            :meth:`PhotonicMVM.apply`, an ``(n_out, batch)`` matrix for
            :meth:`PhotonicMVM.apply_batch`.
        reference: the exact digital result for comparison (``None`` when
            the caller opted out via ``compute_reference=False``).
        relative_error: ``||value - reference|| / ||reference||``
            (Frobenius norm for batches).
    """

    value: np.ndarray
    reference: Optional[np.ndarray]

    @property
    def relative_error(self) -> float:
        if self.reference is None:
            raise ValueError(
                "result has no reference (produced with compute_reference=False)"
            )
        norm = np.linalg.norm(self.reference)
        if norm == 0.0:
            return float(np.linalg.norm(self.value))
        return float(np.linalg.norm(self.value - self.reference) / norm)


@dataclass
class PhotonicMVM:
    """SVD-programmed photonic MVM engine.

    Attributes:
        weight_matrix: the programmed matrix ``W`` (real or complex,
            rectangular allowed).
        mesh_factory: callable mapping a mode count to a fresh unitary mesh
            (defaults to the Clements architecture).
        modulator: input encoder model.
        detector: output receiver model.
        quantization: datapath precision specification.
        error_model: mesh hardware error model applied to both meshes
            (``None`` = ideal meshes).
        coherent_detection: when True the output field (amplitude and sign)
            is recovered, modelling a coherent receiver; when False only
            intensities are detected and the sign information is lost.
        rng: seed or generator for the stochastic noise sources.
    """

    weight_matrix: np.ndarray
    mesh_factory: Callable[[int], object] = ClementsMesh
    modulator: MachZehnderModulator = field(default_factory=MachZehnderModulator)
    detector: Photodetector = field(default_factory=Photodetector)
    quantization: QuantizationSpec = field(default_factory=QuantizationSpec)
    error_model: Optional[MeshErrorModel] = None
    coherent_detection: bool = True
    rng: RngLike = None

    def __post_init__(self):
        weights = np.asarray(self.weight_matrix, dtype=complex)
        if weights.ndim != 2:
            raise ValueError("weight_matrix must be two-dimensional")
        self.weight_matrix = weights
        self._real_weights = bool(np.allclose(weights.imag, 0.0))
        self._rng = ensure_rng(self.rng)
        self._program()

    # ------------------------------------------------------------------ #
    # programming
    # ------------------------------------------------------------------ #
    def _program(self) -> None:
        """Program the two meshes and the singular-value attenuators."""
        n_out, n_in = self.weight_matrix.shape
        left, singular, right_h = np.linalg.svd(self.weight_matrix)
        self._scale = float(singular[0]) if singular.size and singular[0] > 0 else 1.0
        self._singular = singular / self._scale if self._scale > 0 else singular

        quant_levels = self.quantization.weight_levels
        error_model = self.error_model
        if quant_levels is not None:
            if error_model is None:
                error_model = MeshErrorModel(phase_quantization_levels=quant_levels)
            elif error_model.phase_quantization_levels is None:
                error_model = MeshErrorModel(
                    phase_error_std=error_model.phase_error_std,
                    coupler_ratio_error_std=error_model.coupler_ratio_error_std,
                    mzi_insertion_loss_db=error_model.mzi_insertion_loss_db,
                    phase_quantization_levels=quant_levels,
                    rng=error_model.rng,
                )
        self._effective_error_model = error_model

        self._left_mesh = self.mesh_factory(n_out) if n_out >= 2 else None
        self._right_mesh = self.mesh_factory(n_in) if n_in >= 2 else None
        if self._left_mesh is not None:
            self._left_mesh.program(left)
        if self._right_mesh is not None:
            self._right_mesh.program(right_h)

        # Realised (analog) transfer matrices, including errors/quantisation.
        left_real = (
            self._left_mesh.matrix(self._effective_error_model)
            if self._left_mesh is not None
            else self._realize_single_port(left)
        )
        right_real = (
            self._right_mesh.matrix(self._effective_error_model)
            if self._right_mesh is not None
            else self._realize_single_port(right_h)
        )
        sigma = np.zeros((n_out, n_in))
        np.fill_diagonal(sigma, self._singular)
        self._realized_normalized = left_real @ sigma @ right_real

    def _realize_single_port(self, unitary_1x1: np.ndarray) -> np.ndarray:
        """Realise a degenerate 1x1 unitary factor through the analog model.

        A one-port side of the SVD core has no mesh — just a single output
        phase shifter — but that shifter still sees the same phase
        programming error and PCM quantisation as the mesh phases, exactly
        like the output-phase column of :meth:`MZIMesh._physical_matrix`.
        """
        value = complex(np.asarray(unitary_1x1, dtype=complex).reshape(-1)[0])
        error_model = self._effective_error_model
        if error_model is None:
            return np.array([[value]], dtype=complex)
        phase = float(np.angle(value))
        generator = ensure_rng(error_model.rng)
        if error_model.phase_error_std > 0:
            phase += generator.normal(0.0, error_model.phase_error_std)
        phase = error_model.quantize_phase(phase)
        return np.array([[abs(value) * np.exp(1j * phase)]], dtype=complex)

    @property
    def shape(self) -> tuple:
        """Shape of the programmed weight matrix."""
        return self.weight_matrix.shape

    @property
    def realized_matrix(self) -> np.ndarray:
        """The matrix the analog hardware actually implements (rescaled)."""
        return self._realized_normalized * self._scale

    @property
    def component_count(self) -> dict:
        """Hardware inventory of the engine (for footprint accounting)."""
        n_out, n_in = self.weight_matrix.shape
        counts = {"modulators": n_in, "detectors": n_out, "attenuators": min(n_in, n_out)}
        for name, mesh in (("left", self._left_mesh), ("right", self._right_mesh)):
            if mesh is not None:
                for key, value in mesh.component_count().items():
                    counts[f"{name}_{key}"] = value
        return counts

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def apply_batch(
        self,
        vectors: np.ndarray,
        add_noise: bool = True,
        compute_reference: bool = True,
    ) -> MVMResult:
        """Run a batched photonic MVM: estimate ``W @ X`` for an ``(n_in, B)`` block.

        The whole batch is encoded, propagated (one ``matrix @ batch``
        product), detected and rescaled as ``(n_out, B)`` arrays — this is
        the engine's hot path; :meth:`apply` and :meth:`apply_many` are thin
        wrappers around it.  Each column is normalised to the modulator full
        scale independently, exactly as the single-vector path does.

        ``compute_reference=False`` skips the exact digital product (the
        result's ``reference`` is ``None``) — callers that only consume
        ``value`` save a second matmul of the same size as the optical one.
        """
        vectors = np.asarray(vectors, dtype=complex)
        n_out, n_in = self.weight_matrix.shape
        if vectors.ndim != 2 or vectors.shape[0] != n_in:
            raise ValueError(f"vectors must be a ({n_in}, batch) matrix")

        reference = self.weight_matrix @ vectors if compute_reference else None

        # --- input normalisation and encoding ---------------------------------
        input_scale = np.max(np.abs(vectors), axis=0)
        active = input_scale > 0.0
        safe_scale = np.where(active, input_scale, 1.0)
        normalized = vectors / safe_scale
        amplitudes = np.abs(normalized)
        phases = np.angle(normalized)
        if self.quantization.input_bits is not None:
            n_levels = 2 ** self.quantization.input_bits
            amplitudes = np.round(amplitudes * (n_levels - 1)) / (n_levels - 1)
            # Physical encoding: the modulator adds its own DAC grid and
            # extinction-ratio floor.  (Its insertion loss is common to all
            # inputs and removed again by the digital rescaling.)
            amplitudes = (
                self.modulator.encode(amplitudes) / self.modulator.field_transmission
            )
        fields = amplitudes * np.exp(1j * phases)

        # --- optical propagation ----------------------------------------------
        output_fields = self._realized_normalized @ fields

        # --- detection ---------------------------------------------------------
        if self.coherent_detection:
            detected = output_fields.copy()
            if add_noise:
                noise_scale = self._coherent_noise_scale()
                detected = detected + self._rng.normal(
                    0.0, noise_scale, size=detected.shape
                ) + 1j * self._rng.normal(0.0, noise_scale, size=detected.shape)
            if self.quantization.output_bits is not None:
                # The coherent ADC full scale must accommodate constructive
                # interference of all inputs, i.e. sqrt(n_in) in field units.
                adc_full_scale = float(np.sqrt(n_in))
                detected = quantize_uniform(
                    detected.real, self.quantization.output_bits, full_scale=adc_full_scale
                ) + 1j * quantize_uniform(
                    detected.imag, self.quantization.output_bits, full_scale=adc_full_scale
                )
            analog = detected
        else:
            intensities = self.detector.detect(
                output_fields, rng=self._rng, add_noise=add_noise
            )
            analog = np.sqrt(np.maximum(intensities, 0.0))

        # --- digital rescaling -------------------------------------------------
        value = analog * safe_scale * self._scale
        if not np.all(active):
            # All-zero input columns produce exactly zero output (the early
            # return of the scalar path), not the modulator extinction floor.
            value = value * active
        real_case = self._real_weights and bool(np.allclose(vectors.imag, 0.0))
        if real_case:
            if reference is not None:
                reference = reference.real
            value = value.real if np.iscomplexobj(value) else value
        return MVMResult(value=value, reference=reference)

    def apply(self, vector: np.ndarray, add_noise: bool = True) -> MVMResult:
        """Run one photonic MVM: estimate ``W @ x`` through the analog path.

        The input is normalised to the modulator full scale, pushed through
        the (possibly imperfect) optical transfer matrix, detected, and
        rescaled back to the digital domain.  Thin wrapper over
        :meth:`apply_batch` with a batch of one.
        """
        vector = np.asarray(vector, dtype=complex).reshape(-1)
        if vector.shape[0] != self.weight_matrix.shape[1]:
            raise ValueError(f"input vector must have length {self.weight_matrix.shape[1]}")
        batched = self.apply_batch(vector[:, None], add_noise=add_noise)
        return MVMResult(value=batched.value[:, 0], reference=batched.reference[:, 0])

    def _coherent_noise_scale(self) -> float:
        """Equivalent field-noise std of the coherent receiver.

        Derived from the detector's current-noise floor referenced to the
        full-scale photocurrent, so the same receiver parameters drive both
        detection modes.
        """
        full_scale_power = 1e-3
        current_noise = float(np.mean(self.detector.noise_std(np.array([full_scale_power]))))
        full_scale_current = self.detector.responsivity * full_scale_power
        relative = current_noise / full_scale_current
        # Intensity noise maps to roughly half the relative field noise.
        return relative / 2.0

    def apply_many(self, vectors: np.ndarray, add_noise: bool = True) -> np.ndarray:
        """Apply the engine to the columns of ``vectors``; returns the result matrix.

        Batched: one optical propagation for the whole block.  Real weight
        matrices applied to real inputs return a real array (including
        all-zero columns), matching the single-vector :meth:`apply`.
        """
        return self.apply_batch(vectors, add_noise=add_noise, compute_reference=False).value

    def matmul(self, inputs: np.ndarray, add_noise: bool = True) -> np.ndarray:
        """Execution-backend hook: analog ``W @ X`` through :meth:`apply_batch`.

        Real-valued problems come back as real arrays so the result can be
        compared (or rounded) against the digital reference directly.
        """
        inputs = np.asarray(inputs, dtype=complex)
        value = self.apply_batch(inputs, add_noise=add_noise, compute_reference=False).value
        if self._real_weights and np.allclose(inputs.imag, 0.0):
            return np.real(value)
        return value
