"""Quantisation utilities: input DACs and PCM weight levels.

Two quantisers matter for the accelerator:

* the input DAC driving the Mach-Zehnder modulators (uniform, ``bits`` wide,
  applied to the normalised input vector), and
* the PCM phase/weight levels (a small number of non-volatile levels per
  phase shifter), which bound the precision of the programmed matrix.

Both are exposed as plain functions plus a :class:`QuantizationSpec` bundle
that the MVM engine and the NN layers consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class QuantizationSpec:
    """Precision configuration of the photonic datapath.

    Attributes:
        input_bits: DAC resolution for input encoding (None = ideal
            encoding that also bypasses the modulator extinction floor).
        output_bits: ADC resolution for detection (None = ideal).
        weight_levels: number of PCM levels available per phase shifter
            (None = continuous analog programming).  Discrete level counts
            are explored by the quantisation experiments (E3, E6).
    """

    input_bits: Optional[int] = 8
    output_bits: Optional[int] = 8
    weight_levels: Optional[int] = None

    def __post_init__(self):
        for name, value in (
            ("input_bits", self.input_bits),
            ("output_bits", self.output_bits),
        ):
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 or None")
        if self.weight_levels is not None and self.weight_levels < 2:
            raise ValueError("weight_levels must be >= 2 or None")

    @classmethod
    def ideal(cls) -> "QuantizationSpec":
        """A specification with every quantiser disabled."""
        return cls(input_bits=None, output_bits=None, weight_levels=None)


def quantize_uniform(values: np.ndarray, n_bits: int, full_scale: float = 1.0) -> np.ndarray:
    """Uniformly quantise values in ``[-full_scale, full_scale]`` to ``n_bits``.

    Mid-tread quantiser (zero is on the grid) with symmetric saturation at
    the full-scale limits, so the absolute quantisation error never exceeds
    half a step anywhere in the input range.  The step is
    ``2 * full_scale / 2**n_bits``.
    """
    if n_bits < 1:
        raise ValueError("n_bits must be >= 1")
    if full_scale <= 0:
        raise ValueError("full_scale must be positive")
    values = np.asarray(values, dtype=float)
    n_levels = 2 ** n_bits
    step = 2.0 * full_scale / n_levels
    clipped = np.clip(values, -full_scale, full_scale)
    return np.round(clipped / step) * step


def quantize_nonnegative(values: np.ndarray, n_bits: int, full_scale: float = 1.0) -> np.ndarray:
    """Quantise non-negative values in ``[0, full_scale]`` onto a DAC grid."""
    if n_bits < 1:
        raise ValueError("n_bits must be >= 1")
    values = np.asarray(values, dtype=float)
    if np.any(values < -1e-12):
        raise ValueError("values must be non-negative")
    n_levels = 2 ** n_bits
    clipped = np.clip(values, 0.0, full_scale)
    return np.round(clipped / full_scale * (n_levels - 1)) / (n_levels - 1) * full_scale


def quantize_weights(weights: np.ndarray, n_levels: int) -> np.ndarray:
    """Quantise a weight matrix onto ``n_levels`` uniform levels.

    The grid is symmetric around zero and spans the maximum absolute weight,
    mirroring how multilevel PCM cells are mapped onto signed weights with a
    differential (push-pull) arrangement.
    """
    if n_levels < 2:
        raise ValueError("n_levels must be >= 2")
    weights = np.asarray(weights, dtype=float)
    max_abs = np.max(np.abs(weights))
    if max_abs == 0.0:
        return weights.copy()
    grid = np.linspace(-max_abs, max_abs, n_levels)
    indices = np.argmin(np.abs(weights[..., None] - grid), axis=-1)
    return grid[indices]


def effective_bits(signal: np.ndarray, reference: np.ndarray) -> float:
    """Effective number of bits (ENOB) of a noisy analog result.

    Computed from the signal-to-error ratio between ``signal`` (measured)
    and ``reference`` (exact), using the standard ``(SNR_dB - 1.76)/6.02``
    formula.  Returns ``inf`` if the two agree exactly.
    """
    signal = np.asarray(signal, dtype=float).ravel()
    reference = np.asarray(reference, dtype=float).ravel()
    if signal.shape != reference.shape:
        raise ValueError("signal and reference must have the same shape")
    error_power = float(np.mean((signal - reference) ** 2))
    if error_power == 0.0:
        return float("inf")
    signal_power = float(np.mean(reference**2))
    if signal_power == 0.0:
        raise ValueError("reference signal has zero power")
    snr_db = 10.0 * np.log10(signal_power / error_power)
    return (snr_db - 1.76) / 6.02
