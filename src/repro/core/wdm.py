"""Dense wavelength-division multiplexing (DWDM) channel model.

The paper's GeMM generalisation processes several input-matrix rows in
parallel by encoding them on different DWDM channels that share the same
multiport interferometer "without incurring additional resource costs".
The channel plan here models the resource side (how many lasers,
modulators and detectors a channel count implies) and the main physical
penalty of sharing the mesh: inter-channel crosstalk at the wavelength
(de)multiplexers and the weak wavelength dependence of the programmed mesh.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.units import SPEED_OF_LIGHT


@dataclass(frozen=True)
class WDMChannelPlan:
    """A DWDM channel plan on the standard C-band grid.

    Attributes:
        n_channels: number of wavelength channels used in parallel.
        channel_spacing_hz: grid spacing (100 GHz standard, 50 GHz dense).
        center_wavelength: centre of the channel comb [m].
        crosstalk_db: power leakage from each neighbouring channel after
            demultiplexing, expressed as a (negative) dB figure.
        dispersion_phase_std: std-dev of the per-channel random phase error
            of the shared mesh due to its wavelength dependence [rad].
    """

    n_channels: int = 4
    channel_spacing_hz: float = 100e9
    center_wavelength: float = 1550e-9
    crosstalk_db: float = -30.0
    dispersion_phase_std: float = 0.0

    def __post_init__(self):
        if self.n_channels < 1:
            raise ValueError("n_channels must be >= 1")
        if self.channel_spacing_hz <= 0:
            raise ValueError("channel_spacing_hz must be positive")
        if self.crosstalk_db > 0:
            raise ValueError("crosstalk_db must be <= 0")

    @property
    def wavelengths(self) -> np.ndarray:
        """Vacuum wavelengths [m] of the channels, centred on the grid."""
        center_freq = SPEED_OF_LIGHT / self.center_wavelength
        offsets = (np.arange(self.n_channels) - (self.n_channels - 1) / 2.0)
        freqs = center_freq + offsets * self.channel_spacing_hz
        return SPEED_OF_LIGHT / freqs

    @property
    def crosstalk_linear(self) -> float:
        """Linear power leakage per adjacent channel."""
        return float(10.0 ** (self.crosstalk_db / 10.0))

    def crosstalk_matrix(self) -> np.ndarray:
        """Channel mixing matrix applied to detected (power-domain) outputs.

        Nearest neighbours leak ``crosstalk_linear`` of their power, the
        diagonal keeps the remainder so total power is conserved.
        """
        n = self.n_channels
        matrix = np.zeros((n, n))
        leak = self.crosstalk_linear
        for i in range(n):
            neighbours = [j for j in (i - 1, i + 1) if 0 <= j < n]
            for j in neighbours:
                matrix[i, j] = leak
            matrix[i, i] = 1.0 - leak * len(neighbours)
        return matrix

    def apply_crosstalk(self, channel_outputs: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Apply inter-channel crosstalk to per-channel output vectors.

        ``channel_outputs`` has shape ``(n_channels, ...)``; the mixing acts
        on the channel axis.  When ``dispersion_phase_std`` is non-zero a
        per-channel multiplicative error is also applied, modelling the
        residual wavelength dependence of the shared mesh.
        """
        outputs = np.asarray(channel_outputs, dtype=float)
        if outputs.shape[0] != self.n_channels:
            raise ValueError(
                f"expected {self.n_channels} channel rows, got {outputs.shape[0]}"
            )
        mixed = np.tensordot(self.crosstalk_matrix(), outputs, axes=(1, 0))
        if self.dispersion_phase_std > 0:
            generator = ensure_rng(rng)
            gains = 1.0 + generator.normal(
                0.0, self.dispersion_phase_std, size=(self.n_channels,)
            )
            mixed = mixed * gains.reshape((-1,) + (1,) * (outputs.ndim - 1))
        return mixed

    def resource_overhead(self) -> dict:
        """Extra hardware needed per additional wavelength channel.

        The mesh is shared (that is the whole point); lasers, modulators and
        detectors scale with the channel count.
        """
        return {
            "lasers": self.n_channels,
            "modulator_banks": self.n_channels,
            "detector_banks": self.n_channels,
            "meshes": 1,
        }
