"""Mesh calibration against systematic hardware errors.

Fabricated meshes never realise exactly the matrix the decomposition asks
for: couplers deviate from 50:50 and phase shifters have static offsets.
Because those errors are *systematic* (fixed per chip), they can largely be
calibrated out: measure the matrix the chip actually implements (by probing
it with basis vectors), compare with the target, and re-program a corrected
target.  Iterating this measure-correct loop a few times recovers most of
the lost fidelity — the standard practice for MZI accelerators and the
reason programming-error robustness (random, un-calibratable errors) is the
quantity the architecture comparison focuses on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.mesh.base import MeshErrorModel
from repro.utils.linalg import matrix_fidelity


def measure_realized_matrix(mesh, error_model: Optional[MeshErrorModel] = None) -> np.ndarray:
    """Measure the matrix a (possibly imperfect) mesh implements.

    Probes the mesh with the canonical basis vectors, i.e. returns the full
    complex transfer matrix as a coherent characterisation setup would.
    """
    n = mesh.n_modes
    columns = []
    matrix = mesh.matrix(error_model)
    for i in range(n):
        basis = np.zeros(n, dtype=complex)
        basis[i] = 1.0
        columns.append(matrix @ basis)
    return np.stack(columns, axis=1)


def project_to_unitary(matrix: np.ndarray) -> np.ndarray:
    """Project a matrix onto the closest unitary (polar decomposition)."""
    u, _, vh = np.linalg.svd(np.asarray(matrix, dtype=complex))
    return u @ vh


@dataclass
class CalibrationReport:
    """Outcome of an iterative calibration run.

    Attributes:
        fidelities: fidelity to the target after each iteration (entry 0 is
            the uncalibrated fidelity).
        corrected_target: the pre-distorted target programmed at the end.
    """

    fidelities: List[float]
    corrected_target: np.ndarray

    @property
    def initial_fidelity(self) -> float:
        return self.fidelities[0]

    @property
    def final_fidelity(self) -> float:
        return self.fidelities[-1]

    @property
    def improvement(self) -> float:
        """Absolute fidelity gained by calibration."""
        return self.final_fidelity - self.initial_fidelity


def calibrate_mesh(
    mesh,
    target_unitary: np.ndarray,
    error_model: MeshErrorModel,
    n_iterations: int = 3,
) -> CalibrationReport:
    """Iteratively pre-distort the programmed target to cancel systematic errors.

    The error model must be *deterministic per chip* for calibration to be
    meaningful, so it is evaluated with a fixed seed: the same random draw
    represents the same fabricated chip across iterations.

    Each iteration measures the realised matrix ``M`` for the currently
    programmed corrected target ``T_c``, forms the residual ``R = M T^{-1}``
    (how the chip distorts the wanted operation), and programs
    ``T_c <- proj_U(R^{-1} T_c)`` so the distortion is pre-compensated.
    """
    target = np.asarray(target_unitary, dtype=complex)
    if error_model.rng is None:
        raise ValueError(
            "calibration needs a seeded error model: the random draw represents one chip"
        )
    chip_seed = error_model.rng

    def chip_model() -> MeshErrorModel:
        return MeshErrorModel(
            phase_error_std=error_model.phase_error_std,
            coupler_ratio_error_std=error_model.coupler_ratio_error_std,
            mzi_insertion_loss_db=error_model.mzi_insertion_loss_db,
            phase_quantization_levels=error_model.phase_quantization_levels,
            rng=chip_seed,
        )

    corrected = target.copy()
    mesh.program(corrected)
    realized = measure_realized_matrix(mesh, chip_model())
    fidelities = [matrix_fidelity(realized, target)]

    for _ in range(max(0, n_iterations)):
        residual = realized @ np.linalg.inv(target)
        corrected = project_to_unitary(np.linalg.inv(residual) @ corrected)
        mesh.program(corrected)
        realized = measure_realized_matrix(mesh, chip_model())
        fidelities.append(matrix_fidelity(realized, target))

    return CalibrationReport(fidelities=fidelities, corrected_target=corrected)
