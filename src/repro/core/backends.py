"""Pluggable execution backends: one registry for every matmul in the stack.

The repo grew three independent ways of answering "who multiplies the
matrices?": ``core.gemm`` talks to a :class:`~repro.core.mvm.PhotonicMVM`
engine directly, the system-level accelerators carried an
``Optional[PhotonicMVM]`` flag, and the eval workloads hardcoded ``W @ X``.
This module unifies them behind a small registry of named
:class:`ExecutionBackend` implementations:

* ``ideal-digital`` — exact floating/integer product (the digital reference).
* ``quantized-digital`` — fixed-point digital datapath with saturating
  operand precision (exact whenever the operands fit the bit widths).
* ``analog-photonic`` — the full analog chain, always routed through
  :meth:`repro.core.mvm.PhotonicMVM.apply_batch` so every noise source of
  the photonic datapath reaches the caller.

Users can register their own backends (e.g. a stochastic fault model or an
FPGA bit-accurate model) with :func:`register_backend`; everything that
resolves backends by name — ``core.gemm.backend_gemm``, the SoC
accelerators, ``eval.sweeps`` — picks them up automatically.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

import numpy as np

from repro.core.mvm import PhotonicMVM
from repro.core.quantization import QuantizationSpec, quantize_uniform
from repro.mesh.base import MeshErrorModel
from repro.utils.rng import RngLike


class ExecutionBackend:
    """A named matrix-multiplication implementation.

    Subclasses implement :meth:`matmul`; everything else (timing, energy,
    tiling) stays with the caller, so one backend serves the core GeMM
    schedulers, the SoC accelerators and the eval sweeps alike.

    Attributes:
        name: registry name of the backend class.
        deterministic: False when repeated calls draw fresh noise (analog).
    """

    name = "base"
    deterministic = True

    def matmul(self, weights: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Return this backend's estimate of ``weights @ inputs``."""
        raise NotImplementedError

    def schedule_latency_s(self, n_columns: int) -> float:
        """Wall-clock latency of streaming ``n_columns`` input columns.

        Digital backends are treated as instantaneous at this layer (their
        cycle cost is charged by the system simulator); analog backends
        report the modulator-limited symbol schedule.
        """
        return 0.0

    def cost_hint(self, n_rows: int, n_inner: int, n_cols: int) -> Dict[str, float]:
        """Static cost prior for one ``(n_rows, n_inner) @ (n_inner, n_cols)``.

        The model compiler's cost model seeds its predictions with these
        hints before any calibration data exists: ``macs`` is the
        arithmetic work, ``words_moved`` the operand + result traffic a
        tile of this shape generates, and ``latency_s`` the backend's own
        schedule estimate (0 for digital backends, the modulator-limited
        symbol schedule for analog ones).
        """
        return {
            "macs": float(n_rows * n_inner * n_cols),
            "words_moved": float(
                n_rows * n_inner + n_inner * n_cols + n_rows * n_cols
            ),
            "latency_s": self.schedule_latency_s(n_cols),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


class IdealDigitalBackend(ExecutionBackend):
    """Exact digital product — the reference every other backend is judged by."""

    name = "ideal-digital"

    def matmul(self, weights: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        return np.asarray(weights) @ np.asarray(inputs)


class QuantizedDigitalBackend(ExecutionBackend):
    """Fixed-point digital datapath with saturating operand quantisation.

    Integer operands are saturated to signed ``weight_bits`` / ``input_bits``
    ranges (exact when they already fit, which is how the SoC offload tests
    use it); float operands are uniformly quantised against their own full
    scale.  The accumulator is kept wide, as in a real MAC array.

    Attributes:
        weight_bits / input_bits: operand precision in bits.
    """

    name = "quantized-digital"

    def __init__(self, weight_bits: int = 8, input_bits: int = 8):
        if weight_bits < 2 or input_bits < 2:
            raise ValueError("operand precision must be >= 2 bits")
        self.weight_bits = int(weight_bits)
        self.input_bits = int(input_bits)

    @staticmethod
    def _quantize(values: np.ndarray, bits: int) -> np.ndarray:
        values = np.asarray(values)
        if np.issubdtype(values.dtype, np.integer):
            low, high = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
            return np.clip(values, low, high)
        scale = float(np.max(np.abs(values))) if values.size else 0.0
        if scale == 0.0:
            return values
        return quantize_uniform(values, bits, full_scale=scale)

    def matmul(self, weights: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        return self._quantize(weights, self.weight_bits) @ self._quantize(
            inputs, self.input_bits
        )


class AnalogPhotonicBackend(ExecutionBackend):
    """The analog photonic datapath, routed through ``PhotonicMVM.apply_batch``.

    Either wraps a pre-programmed engine (weights resident in the mesh) or
    programs engines on demand, caching them per weight matrix so repeated
    tiles of a sharded GeMM reuse their programmed mesh — the in-memory
    computing property the paper builds on.

    Attributes:
        engine: optional pre-programmed :class:`PhotonicMVM`; when set, the
            ``weights`` argument of :meth:`matmul` only selects the tile
            shape and the engine's programmed matrix is the ground truth.
        quantization / error_model / rng: forwarded to engines built on
            demand.
        add_noise: disable to get the noise-free analog transfer function.
    """

    name = "analog-photonic"
    deterministic = False

    #: programmed-engine cache bound (per backend instance)
    MAX_CACHED_ENGINES = 16

    def __init__(
        self,
        engine: Optional[PhotonicMVM] = None,
        quantization: Optional[QuantizationSpec] = None,
        error_model: Optional[MeshErrorModel] = None,
        add_noise: bool = True,
        rng: RngLike = 0,
    ):
        self.engine = engine
        self.quantization = quantization if quantization is not None else QuantizationSpec()
        self.error_model = error_model
        self.add_noise = bool(add_noise)
        self.rng = rng
        self._engines: Dict[tuple, PhotonicMVM] = {}

    def engine_for(self, weights: np.ndarray) -> PhotonicMVM:
        """The programmed engine used for this weight matrix."""
        if self.engine is not None:
            expected = tuple(self.engine.shape)
            observed = tuple(np.asarray(weights).shape)
            if observed != expected:
                # a fixed engine holds its weights resident in the mesh; a
                # differently-shaped tile would silently compute with the
                # wrong matrix (e.g. a sharded GeMM splitting the shard
                # into tiles smaller than the programmed engine)
                raise ValueError(
                    f"tile weights {observed} do not match the programmed "
                    f"engine {expected}; fixed-engine analog backends need "
                    f"one tile per offload (e.g. run_tiled_gemm with "
                    f"tile_rows equal to the PE's shard) or an on-demand "
                    f"AnalogPhotonicBackend without a fixed engine"
                )
            return self.engine
        weights = np.asarray(weights, dtype=float)
        cache_key = (weights.shape, weights.tobytes())
        cached = self._engines.get(cache_key)
        if cached is None:
            if len(self._engines) >= self.MAX_CACHED_ENGINES:
                self._engines.clear()
            cached = PhotonicMVM(
                weights,
                quantization=self.quantization,
                error_model=self.error_model,
                rng=self.rng,
            )
            self._engines[cache_key] = cached
        return cached

    def matmul(self, weights: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        engine = self.engine_for(weights)
        return engine.matmul(inputs, add_noise=self.add_noise)

    def schedule_latency_s(self, n_columns: int) -> float:
        if self.engine is None and not self._engines:
            return 0.0
        engine = self.engine if self.engine is not None else next(iter(self._engines.values()))
        return n_columns / engine.modulator.symbol_rate


#: Name of the backend used when callers pass ``backend=None``.
DEFAULT_BACKEND = "ideal-digital"

BackendSpec = Union[None, str, ExecutionBackend]

_REGISTRY: Dict[str, Callable[..., ExecutionBackend]] = {}


def register_backend(
    name: str, factory: Callable[..., ExecutionBackend], overwrite: bool = False
) -> None:
    """Register a backend factory under ``name``.

    ``factory(**kwargs)`` must return an :class:`ExecutionBackend`.
    Re-registering an existing name requires ``overwrite=True`` so two
    subsystems cannot silently shadow each other's backends.
    """
    if not callable(factory):
        raise TypeError("backend factory must be callable")
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"backend {name!r} is already registered")
    _REGISTRY[str(name)] = factory


def unregister_backend(name: str) -> None:
    """Remove a registered backend (unknown names are ignored)."""
    _REGISTRY.pop(name, None)


def available_backends() -> tuple:
    """Sorted names of all registered backends."""
    return tuple(sorted(_REGISTRY))


def create_backend(name: str, **kwargs) -> ExecutionBackend:
    """Instantiate a registered backend by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_backends())
        raise KeyError(f"unknown backend {name!r} (registered: {known})") from None
    backend = factory(**kwargs)
    if not isinstance(backend, ExecutionBackend):
        raise TypeError(f"factory for {name!r} returned {type(backend).__name__}")
    return backend


def resolve_backend(spec: BackendSpec = None, **kwargs) -> ExecutionBackend:
    """Resolve a backend spec: instance (pass-through), name, or None (default)."""
    if spec is None:
        spec = DEFAULT_BACKEND
    if isinstance(spec, ExecutionBackend):
        return spec
    if isinstance(spec, str):
        return create_backend(spec, **kwargs)
    raise TypeError(f"cannot resolve backend from {type(spec).__name__}")


def matmul(weights: np.ndarray, inputs: np.ndarray, backend: BackendSpec = None) -> np.ndarray:
    """One-shot ``weights @ inputs`` on a named (or default) backend."""
    return resolve_backend(backend).matmul(weights, inputs)


register_backend(IdealDigitalBackend.name, IdealDigitalBackend)
register_backend(QuantizedDigitalBackend.name, QuantizedDigitalBackend)
register_backend(AnalogPhotonicBackend.name, AnalogPhotonicBackend)
