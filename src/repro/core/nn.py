"""Photonic neural-network inference on the MVM core (experiment E6).

The point of the accelerator is to run the linear-algebra workloads that
"underpin a majority of current deep learning models".  This module builds
a small, dependency-free neural-network stack (dense layers + standard
activations), a float reference implementation, and a *photonic* execution
mode in which every dense layer's matrix product is carried out by a
:class:`repro.core.mvm.PhotonicMVM` engine with its full analog noise
chain.  Comparing the two quantifies how much accuracy the analog datapath
gives up as a function of precision, noise, and mesh errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.mvm import PhotonicMVM
from repro.core.quantization import QuantizationSpec
from repro.mesh.base import MeshErrorModel
from repro.mesh.clements import ClementsMesh
from repro.utils.rng import RngLike, ensure_rng


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear activation."""
    return np.maximum(x, 0.0)


def softmax(x: np.ndarray) -> np.ndarray:
    """Numerically stable softmax along the last axis."""
    shifted = x - np.max(x, axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=-1, keepdims=True)


def identity(x: np.ndarray) -> np.ndarray:
    """Identity activation (for the output layer before softmax/argmax)."""
    return x


ACTIVATIONS = {"relu": relu, "softmax": softmax, "identity": identity}


@dataclass
class DenseLayer:
    """A dense (fully connected) layer ``y = act(W x + b)``.

    Attributes:
        weights: (n_out, n_in) weight matrix.
        biases: (n_out,) bias vector.
        activation: one of ``"relu"``, ``"softmax"``, ``"identity"``.
    """

    weights: np.ndarray
    biases: np.ndarray
    activation: str = "relu"

    def __post_init__(self):
        self.weights = np.asarray(self.weights, dtype=float)
        self.biases = np.asarray(self.biases, dtype=float)
        if self.weights.ndim != 2:
            raise ValueError("weights must be a matrix")
        if self.biases.shape != (self.weights.shape[0],):
            raise ValueError("biases must match the output dimension")
        if self.activation not in ACTIVATIONS:
            raise ValueError(f"unknown activation {self.activation!r}")

    @property
    def n_inputs(self) -> int:
        return self.weights.shape[1]

    @property
    def n_outputs(self) -> int:
        return self.weights.shape[0]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Float reference forward pass for a single vector or a batch."""
        x = np.asarray(x, dtype=float)
        pre = x @ self.weights.T + self.biases
        return ACTIVATIONS[self.activation](pre)


class MLP:
    """A plain multilayer perceptron with a float reference forward pass."""

    def __init__(self, layers: Sequence[DenseLayer]):
        if not layers:
            raise ValueError("an MLP needs at least one layer")
        for previous, current in zip(layers[:-1], layers[1:]):
            if previous.n_outputs != current.n_inputs:
                raise ValueError("layer dimensions do not chain")
        self.layers = list(layers)

    @property
    def n_inputs(self) -> int:
        return self.layers[0].n_inputs

    @property
    def n_outputs(self) -> int:
        return self.layers[-1].n_outputs

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Float reference forward pass."""
        out = np.asarray(x, dtype=float)
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions (argmax of the final layer output)."""
        return np.argmax(self.forward(x), axis=-1)

    @classmethod
    def random_init(
        cls,
        layer_sizes: Sequence[int],
        rng: RngLike = 0,
        hidden_activation: str = "relu",
    ) -> "MLP":
        """He-initialised random MLP (used before training)."""
        generator = ensure_rng(rng)
        layers = []
        for i, (n_in, n_out) in enumerate(zip(layer_sizes[:-1], layer_sizes[1:])):
            scale = np.sqrt(2.0 / n_in)
            weights = generator.normal(0.0, scale, size=(n_out, n_in))
            biases = np.zeros(n_out)
            activation = hidden_activation if i < len(layer_sizes) - 2 else "identity"
            layers.append(DenseLayer(weights=weights, biases=biases, activation=activation))
        return cls(layers)


def train_mlp(
    model: MLP,
    inputs: np.ndarray,
    labels: np.ndarray,
    epochs: int = 30,
    learning_rate: float = 0.05,
    batch_size: int = 32,
    rng: RngLike = 0,
) -> List[float]:
    """Train an MLP with plain mini-batch SGD and cross-entropy loss.

    Only ReLU hidden layers and an identity output layer (softmax applied
    in the loss) are supported — enough for the digit-classification
    workload of experiment E6.  Returns the per-epoch training loss.
    """
    generator = ensure_rng(rng)
    inputs = np.asarray(inputs, dtype=float)
    labels = np.asarray(labels, dtype=int)
    n_samples = inputs.shape[0]
    n_classes = model.n_outputs
    one_hot = np.eye(n_classes)[labels]
    losses = []
    for _ in range(epochs):
        order = generator.permutation(n_samples)
        epoch_loss = 0.0
        for start in range(0, n_samples, batch_size):
            batch = order[start : start + batch_size]
            x = inputs[batch]
            y = one_hot[batch]
            # forward pass, caching activations
            activations = [x]
            for layer in model.layers:
                activations.append(layer.forward(activations[-1]))
            logits = activations[-1]
            probs = softmax(logits)
            epoch_loss += float(
                -np.sum(y * np.log(np.clip(probs, 1e-12, None))) / len(batch)
            )
            # backward pass
            grad = (probs - y) / len(batch)
            for index in range(len(model.layers) - 1, -1, -1):
                layer = model.layers[index]
                layer_input = activations[index]
                if layer.activation == "relu":
                    grad = grad * (activations[index + 1] > 0)
                grad_w = grad.T @ layer_input
                grad_b = grad.sum(axis=0)
                grad = grad @ layer.weights
                layer.weights = layer.weights - learning_rate * grad_w
                layer.biases = layer.biases - learning_rate * grad_b
        losses.append(epoch_loss / max(1, n_samples // batch_size))
    return losses


@dataclass
class PhotonicMLP:
    """Photonic execution of a trained MLP.

    Every dense layer is mapped onto a :class:`PhotonicMVM` engine; biases
    and activations stay digital, mirroring the paper's architecture where
    the photonic core accelerates the linear algebra and a host handles the
    rest.

    Attributes:
        model: the trained float MLP.
        quantization: datapath precision of all layer engines.
        error_model: mesh error model shared by all layers.
        mesh_factory: mesh architecture used for the SVD cores.
        add_noise: include stochastic detection noise at inference time.
        rng: seed or generator for the analog noise.
    """

    model: MLP
    quantization: QuantizationSpec = field(default_factory=QuantizationSpec)
    error_model: Optional[MeshErrorModel] = None
    mesh_factory: Callable[[int], object] = ClementsMesh
    add_noise: bool = True
    rng: RngLike = None

    def __post_init__(self):
        generator = ensure_rng(self.rng)
        self._engines = [
            PhotonicMVM(
                weight_matrix=layer.weights,
                mesh_factory=self.mesh_factory,
                quantization=self.quantization,
                error_model=self.error_model,
                rng=generator.integers(0, 2**31 - 1),
            )
            for layer in self.model.layers
        ]

    @property
    def engines(self) -> List[PhotonicMVM]:
        """The per-layer photonic MVM engines."""
        return list(self._engines)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Photonic forward pass for a single vector or a batch.

        The whole batch traverses each layer's engine in one batched MVM
        (one matmul per layer), mirroring how a TDM schedule streams an
        inference batch through the programmed mesh.
        """
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        value = x.reshape(1, -1) if single else x
        for layer, engine in zip(self.model.layers, self._engines):
            product = engine.apply_batch(
                value.T, add_noise=self.add_noise, compute_reference=False
            ).value
            pre = np.real(product).T + layer.biases
            value = ACTIVATIONS[layer.activation](pre)
        return value[0] if single else value

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions of the photonic forward pass."""
        return np.argmax(self.forward(x), axis=-1)

    def accuracy(self, inputs: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy of the photonic model on a dataset."""
        predictions = self.predict(inputs)
        return float(np.mean(predictions == np.asarray(labels, dtype=int)))
