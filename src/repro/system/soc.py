"""System-on-chip composition: CPU + memory + accelerators + interconnect.

``PhotonicSoC`` builds the full-system configuration of the paper's Fig. 3:
a RISC-V host CPU, main memory, a shared bus, an interrupt controller, and
one or more domain-specific accelerators (photonic and/or digital), each
with its own MMR block, scratchpads and DMA engine.  It also provides the
workload runners used by experiments E8-E10 — CPU-only GeMM, single-PE
offload, and multi-PE tiled GeMM — all returning a uniform
:class:`WorkloadReport` with cycles, energy and area.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.system.accelerator import (
    BaseMatrixAccelerator,
    MACArrayAccelerator,
    PhotonicMVMAccelerator,
    REG_COLS,
    REG_INNER,
    REG_INPUT_ADDR,
    REG_OUTPUT_ADDR,
    REG_ROWS,
    REG_SCALE_SHIFT,
    REG_WEIGHTS_ADDR,
)
from repro.system.assembler import assemble
from repro.system.bus import SystemBus
from repro.system.cpu import RiscvCPU
from repro.system.event import EventScheduler
from repro.system.interrupt import InterruptController
from repro.system.memory import MainMemory, WORD_BYTES, to_signed, to_unsigned
from repro.system.mmr import CTRL_IRQ_ENABLE, CTRL_START, STATUS_DONE
from repro.system.programs import accelerator_offload_program, gemm_program

#: Default address map.
MAIN_MEMORY_BASE = 0x0000_0000
MAIN_MEMORY_SIZE = 1 << 20          # 1 MiB
MMR_REGION_BASE = 0x4000_0000
MMR_REGION_STRIDE = 0x0000_1000     # one 4 KiB page per accelerator


@dataclass
class WorkloadReport:
    """Cycles / energy / area of one full-system workload run.

    Attributes:
        label: human-readable workload name.
        cycles: end-to-end cycle count (at the CPU clock).
        runtime_s: cycles converted to seconds.
        instructions: host instructions executed.
        energy_j: total system energy (CPU + memory + bus + DMA + DSA).
        area_mm2: silicon area of the configuration used.
        energy_breakdown: per-component energy [J].
        result: the numerical result of the workload (for correctness checks).
    """

    label: str
    cycles: int
    runtime_s: float
    instructions: int
    energy_j: float
    area_mm2: float
    energy_breakdown: Dict[str, float] = field(default_factory=dict)
    result: Optional[np.ndarray] = None

    @property
    def energy_per_cycle(self) -> float:
        return self.energy_j / self.cycles if self.cycles else 0.0


class PhotonicSoC:
    """Configurable full-system model (CPU + accelerators).

    Attributes:
        clock_hz: system clock frequency.
        cpu_area_mm2 / memory_area_mm2: area figures of the host side.
        max_cycles: watchdog bound used by ``run`` (hang detection).
    """

    def __init__(
        self,
        clock_hz: float = 1e9,
        main_memory_size: int = MAIN_MEMORY_SIZE,
        cpu_area_mm2: float = 0.2,
        memory_area_mm2: float = 0.5,
        max_cycles: int = 50_000_000,
    ):
        self.clock_hz = float(clock_hz)
        self.max_cycles = int(max_cycles)
        self.cpu_area_mm2 = float(cpu_area_mm2)
        self.memory_area_mm2 = float(memory_area_mm2)
        self.scheduler = EventScheduler()
        self.bus = SystemBus()
        self.main_memory = MainMemory(main_memory_size)
        self.bus.attach(MAIN_MEMORY_BASE, main_memory_size, self.main_memory, "main-memory")
        self.interrupts = InterruptController()
        self.cpu = RiscvCPU(self.scheduler, self.bus, clock_hz=clock_hz)
        self.accelerators: List[BaseMatrixAccelerator] = []

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #
    def add_photonic_accelerator(self, **kwargs) -> PhotonicMVMAccelerator:
        """Attach a photonic GeMM accelerator; returns the device."""
        accelerator = PhotonicMVMAccelerator(
            self.scheduler,
            self.bus,
            interrupt_controller=self.interrupts,
            clock_hz=self.clock_hz,
            name=f"photonic{len(self.accelerators)}",
            **kwargs,
        )
        self._attach_accelerator(accelerator)
        return accelerator

    def add_mac_array_accelerator(self, **kwargs) -> MACArrayAccelerator:
        """Attach a digital MAC-array accelerator; returns the device."""
        accelerator = MACArrayAccelerator(
            self.scheduler,
            self.bus,
            interrupt_controller=self.interrupts,
            clock_hz=self.clock_hz,
            name=f"macarray{len(self.accelerators)}",
            **kwargs,
        )
        self._attach_accelerator(accelerator)
        return accelerator

    def _attach_accelerator(self, accelerator: BaseMatrixAccelerator) -> None:
        base = MMR_REGION_BASE + len(self.accelerators) * MMR_REGION_STRIDE
        self.bus.attach(base, accelerator.mmr.size_bytes, accelerator.mmr, accelerator.name)
        accelerator.mmr_base = base
        if accelerator.irq_line is not None:
            self.interrupts.subscribe(
                accelerator.irq_line.index, lambda _line: self.cpu.raise_interrupt()
            )
        self.accelerators.append(accelerator)

    # ------------------------------------------------------------------ #
    # memory helpers
    # ------------------------------------------------------------------ #
    def write_matrix(self, address: int, matrix: np.ndarray) -> None:
        """Store an integer matrix row-major into main memory."""
        flat = np.asarray(matrix, dtype=np.int64).reshape(-1)
        self.main_memory.load_words(address, [to_unsigned(int(v)) for v in flat])

    def read_matrix(self, address: int, n_rows: int, n_cols: int) -> np.ndarray:
        """Read a row-major signed integer matrix from main memory."""
        words = self.main_memory.dump_words(address, n_rows * n_cols)
        values = [to_signed(word) for word in words]
        return np.asarray(values, dtype=np.int64).reshape(n_rows, n_cols)

    # ------------------------------------------------------------------ #
    # simulation driver
    # ------------------------------------------------------------------ #
    def run_program(self, source: str, max_cycles: Optional[int] = None) -> int:
        """Assemble and run a host program to completion; returns cycles."""
        program = assemble(source)
        self.cpu.load_program(program)
        self.cpu.start()
        limit = max_cycles if max_cycles is not None else self.max_cycles
        final_cycle = self.scheduler.run(max_cycles=limit)
        return final_cycle

    def _energy_breakdown(self) -> Dict[str, float]:
        breakdown = {
            "cpu": self.cpu.stats.energy_j,
            "main_memory": self.main_memory.energy_j(),
            "bus": self.bus.energy_j(),
        }
        for accelerator in self.accelerators:
            breakdown[accelerator.name] = accelerator.stats.energy_j
        return breakdown

    def total_area_mm2(self) -> float:
        """Total silicon area of the current configuration."""
        return (
            self.cpu_area_mm2
            + self.memory_area_mm2
            + sum(accelerator.area_mm2() for accelerator in self.accelerators)
        )

    def _report(self, label: str, cycles: int, result: Optional[np.ndarray]) -> WorkloadReport:
        breakdown = self._energy_breakdown()
        return WorkloadReport(
            label=label,
            cycles=int(cycles),
            runtime_s=cycles / self.clock_hz,
            instructions=self.cpu.stats.instructions,
            energy_j=float(sum(breakdown.values())),
            area_mm2=self.total_area_mm2(),
            energy_breakdown=breakdown,
            result=result,
        )

    # ------------------------------------------------------------------ #
    # workloads (experiments E8-E10)
    # ------------------------------------------------------------------ #
    def run_cpu_gemm(
        self,
        weights: np.ndarray,
        inputs: np.ndarray,
        a_addr: int = 0x1000,
        b_addr: int = 0x4000,
        c_addr: int = 0x8000,
    ) -> WorkloadReport:
        """CPU-only baseline: software GeMM on the RISC-V host."""
        weights = np.asarray(weights, dtype=np.int64)
        inputs = np.asarray(inputs, dtype=np.int64)
        n_rows, n_inner = weights.shape
        n_cols = inputs.shape[1]
        self.write_matrix(a_addr, weights)
        self.write_matrix(b_addr, inputs)
        source = gemm_program(a_addr, b_addr, c_addr, n_rows, n_inner, n_cols)
        cycles = self.run_program(source)
        result = self.read_matrix(c_addr, n_rows, n_cols)
        return self._report("cpu-gemm", cycles, result)

    def run_offloaded_gemm(
        self,
        weights: np.ndarray,
        inputs: np.ndarray,
        accelerator_index: int = 0,
        use_interrupt: bool = False,
        a_addr: int = 0x1000,
        b_addr: int = 0x4000,
        c_addr: int = 0x8000,
    ) -> WorkloadReport:
        """Offload the GeMM to one accelerator through its MMR interface."""
        if not self.accelerators:
            raise RuntimeError("no accelerator attached")
        accelerator = self.accelerators[accelerator_index]
        weights = np.asarray(weights, dtype=np.int64)
        inputs = np.asarray(inputs, dtype=np.int64)
        n_rows, n_inner = weights.shape
        n_cols = inputs.shape[1]
        self.write_matrix(a_addr, weights)
        self.write_matrix(b_addr, inputs)
        source = accelerator_offload_program(
            accelerator.mmr_base,
            a_addr,
            b_addr,
            c_addr,
            n_rows,
            n_inner,
            n_cols,
            use_interrupt=use_interrupt,
        )
        cycles = self.run_program(source)
        result = self.read_matrix(c_addr, n_rows, n_cols)
        label = f"offload-{accelerator.device_type}" + ("-irq" if use_interrupt else "")
        return self._report(label, cycles, result)

    def run_tiled_gemm(
        self,
        weights: np.ndarray,
        inputs: np.ndarray,
        a_addr: int = 0x1000,
        b_addr: int = 0x4000,
        c_addr: int = 0x8000,
    ) -> WorkloadReport:
        """Tile the GeMM across every attached accelerator (PE cluster).

        Output rows are partitioned across the PEs.  The host-side driver
        is modelled directly (MMR writes through the bus) rather than as an
        assembled program, so arbitrarily many PEs can be coordinated; the
        reported cycles are the scheduler time at which the last PE
        finished plus the host configuration accesses.
        """
        if not self.accelerators:
            raise RuntimeError("no accelerator attached")
        weights = np.asarray(weights, dtype=np.int64)
        inputs = np.asarray(inputs, dtype=np.int64)
        n_rows, n_inner = weights.shape
        n_cols = inputs.shape[1]
        n_pes = len(self.accelerators)
        row_chunks = np.array_split(np.arange(n_rows), n_pes)

        self.write_matrix(b_addr, inputs)
        host_cycles = 0
        row_offset_addresses = []
        for pe_index, (accelerator, rows) in enumerate(zip(self.accelerators, row_chunks)):
            if rows.size == 0:
                row_offset_addresses.append(None)
                continue
            tile_a_addr = a_addr + int(rows[0]) * n_inner * WORD_BYTES
            tile_c_addr = c_addr + int(rows[0]) * n_cols * WORD_BYTES
            self.write_matrix(tile_a_addr, weights[rows])
            registers = {
                REG_WEIGHTS_ADDR: tile_a_addr,
                REG_INPUT_ADDR: b_addr,
                REG_OUTPUT_ADDR: tile_c_addr,
                REG_ROWS: int(rows.size),
                REG_INNER: n_inner,
                REG_COLS: n_cols,
                REG_SCALE_SHIFT: 0,
            }
            for index, value in registers.items():
                host_cycles += self.bus.write_word(
                    accelerator.mmr_base + 0x08 + index * WORD_BYTES, value
                )
            host_cycles += self.bus.write_word(
                accelerator.mmr_base, CTRL_START | CTRL_IRQ_ENABLE
            )
            row_offset_addresses.append(tile_c_addr)

        final_cycle = self.scheduler.run(max_cycles=self.max_cycles)
        result = self.read_matrix(c_addr, n_rows, n_cols)
        return self._report(f"tiled-gemm-{n_pes}pe", final_cycle + host_cycles, result)

    def accelerator_status(self, accelerator_index: int = 0) -> int:
        """Read an accelerator's STATUS register (host-side view)."""
        accelerator = self.accelerators[accelerator_index]
        value, _ = self.bus.read_word(accelerator.mmr_base + 0x04)
        return value

    def all_accelerators_done(self) -> bool:
        """True when every attached accelerator reports DONE or idle."""
        return all(not accelerator.busy for accelerator in self.accelerators)
