"""System-on-chip composition: CPU + memory + accelerators + interconnect.

``PhotonicSoC`` builds the full-system configuration of the paper's Fig. 3:
a RISC-V host CPU, main memory, a shared bus, an interrupt controller, and
one or more domain-specific accelerators (photonic and/or digital), each
with its own MMR block, scratchpads and DMA engine.  It also provides the
workload runners used by experiments E8-E10 — CPU-only GeMM, single-PE
offload, and multi-PE tiled GeMM — all returning a uniform
:class:`WorkloadReport` with cycles, energy and area.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.system.accelerator import (
    BaseMatrixAccelerator,
    FLAG_SKIP_INPUT_LOAD,
    MACArrayAccelerator,
    PhotonicMVMAccelerator,
    REG_COLS,
    REG_FLAGS,
    REG_INNER,
    REG_INPUT_ADDR,
    REG_OUTPUT_ADDR,
    REG_ROWS,
    REG_SCALE_SHIFT,
    REG_WEIGHTS_ADDR,
    REG_WEIGHTS_PITCH,
    TileDescriptor,
)
from repro.system.assembler import assemble
from repro.system.bus import SystemBus
from repro.system.cpu import RiscvCPU
from repro.system.event import EventScheduler
from repro.system.interrupt import InterruptController
from repro.system.memory import MainMemory, WORD_BYTES, signed_to_words, words_to_signed
from repro.system.mmr import (
    CTRL_ENQUEUE,
    CTRL_IRQ_ENABLE,
    CTRL_IRQ_PER_TILE,
    CTRL_START,
    STATUS_DONE,
    STATUS_ERROR,
)
from repro.system.programs import accelerator_offload_program, gemm_program

#: Default address map.
MAIN_MEMORY_BASE = 0x0000_0000
MAIN_MEMORY_SIZE = 1 << 20          # 1 MiB
MMR_REGION_BASE = 0x4000_0000
MMR_REGION_STRIDE = 0x0000_1000     # one 4 KiB page per accelerator


def plan_shards(
    n_rows: int,
    n_inner: int,
    n_cols: int,
    n_pes: int,
    a_addr: int,
    b_addr: int,
    c_addr: int,
    tile_rows: Optional[int] = None,
    weights_pitch: int = 0,
) -> List[List[TileDescriptor]]:
    """Shard an (M, K, N) GeMM into per-PE tile streams.

    Output rows are partitioned contiguously across the PEs; each PE's
    shard is further split into ``tile_rows``-row tiles (default: half the
    shard, so the double-buffered pipeline always has a second tile to
    prefetch).  The ``(K, N)`` input operand is shared: only the first tile
    of each stream carries ``load_input`` and later tiles reuse the
    resident scratchpad copy (input-stationary dataflow).

    ``weights_pitch`` (words) describes the row pitch of the weight operand
    in memory.  The default ``0`` means densely packed (pitch = ``n_inner``);
    a larger pitch means the operand is a column slice ``A[:, k0:k1]`` of a
    wider row-major matrix, which the tiles then fetch with a strided DMA
    descriptor instead of requiring a contiguous staged copy.
    """
    if min(n_rows, n_inner, n_cols) < 1:
        raise ValueError(
            f"GeMM dimensions must be positive, got "
            f"(M, K, N) = ({n_rows}, {n_inner}, {n_cols})"
        )
    if n_pes < 1:
        raise ValueError("n_pes must be >= 1")
    if tile_rows is not None and tile_rows < 1:
        raise ValueError("tile_rows must be >= 1")
    if weights_pitch and weights_pitch < n_inner:
        raise ValueError("weights_pitch must be 0 or >= n_inner")
    row_pitch = weights_pitch if weights_pitch else n_inner
    plans: List[List[TileDescriptor]] = []
    for rows in np.array_split(np.arange(n_rows), n_pes):
        descriptors: List[TileDescriptor] = []
        if rows.size:
            chunk_rows = tile_rows if tile_rows is not None else max(1, -(-rows.size // 2))
            for start in range(0, rows.size, chunk_rows):
                chunk = rows[start : start + chunk_rows]
                first_row = int(chunk[0])
                descriptors.append(
                    TileDescriptor(
                        weights_addr=a_addr + first_row * row_pitch * WORD_BYTES,
                        input_addr=b_addr,
                        output_addr=c_addr + first_row * n_cols * WORD_BYTES,
                        rows=int(chunk.size),
                        inner=n_inner,
                        cols=n_cols,
                        load_input=start == 0,
                        weights_pitch=weights_pitch,
                    )
                )
        plans.append(descriptors)
    return plans


#: Default staging base for K-sharded operand slices and partial products.
K_STAGING_ADDR = 0x0004_0000


@dataclass(frozen=True)
class KShardSlice:
    """One K-slice of a K-sharded (M, K, N) GeMM.

    The slice's operands are ``A[:, k_start:k_stop]`` at ``a_addr`` and
    ``B[k_start:k_stop, :]`` at ``b_addr``; its (M, N) partial product goes
    to ``partial_addr``.  On the default in-place plan the operand
    addresses point straight into the original matrices (the weight slice
    is a strided view fetched by descriptor); on a staged plan they point
    at contiguous staged copies.  ``descriptors`` is the slice's row-tiled
    stream for one PE's double-buffered pipeline.
    """

    index: int
    k_start: int
    k_stop: int
    a_addr: int
    b_addr: int
    partial_addr: int
    descriptors: tuple

    @property
    def k_size(self) -> int:
        return self.k_stop - self.k_start


def plan_k_shards(
    n_rows: int,
    n_inner: int,
    n_cols: int,
    k_shards: int,
    staging_addr: int = K_STAGING_ADDR,
    tile_rows: Optional[int] = None,
    a_addr: Optional[int] = None,
    b_addr: Optional[int] = None,
) -> List[KShardSlice]:
    """Split the K (inner) dimension of an (M, K, N) GeMM into PE slices.

    Closes the rows-only gap of :func:`plan_shards`: each slice is a full
    (M, K_s, N) sub-GeMM whose (M, N) partial product accumulates into the
    final result.  Two operand layouts are supported:

    * **Staged** (``a_addr``/``b_addr`` omitted — the historical layout):
      operand slices live as contiguous copies laid out back-to-back from
      ``staging_addr`` as ``[A_0 | B_0 | C_0 | A_1 | B_1 | C_1 | ...]``;
      the caller must copy them there before launch.
    * **In place** (``a_addr`` and ``b_addr`` given): operand slices are
      read straight from the original matrices — ``A[:, k_start:k_stop]``
      becomes a strided DMA descriptor (``weights_pitch = n_inner``) and
      ``B[k_start:k_stop, :]`` a contiguous row range — so only the (M, N)
      partial-product buffers are allocated from ``staging_addr``.

    Every slice's stream starts with ``load_input=True`` (each slice has
    its own ``B`` operand) and row-tiles the slice exactly like
    :func:`plan_shards` does, so per-slice streams still double-buffer.
    """
    if k_shards < 1:
        raise ValueError("k_shards must be >= 1")
    if min(n_rows, n_inner, n_cols) < 1:
        raise ValueError(
            f"GeMM dimensions must be positive, got "
            f"(M, K, N) = ({n_rows}, {n_inner}, {n_cols})"
        )
    if k_shards > n_inner:
        raise ValueError(
            f"cannot split K={n_inner} into {k_shards} shards (need k_shards <= K)"
        )
    if (a_addr is None) != (b_addr is None):
        raise ValueError("in-place planning needs both a_addr and b_addr")
    in_place = a_addr is not None
    slices: List[KShardSlice] = []
    cursor = int(staging_addr)
    for index, columns in enumerate(np.array_split(np.arange(n_inner), k_shards)):
        k_start, k_stop = int(columns[0]), int(columns[-1]) + 1
        k_size = k_stop - k_start
        if in_place:
            slice_a = a_addr + k_start * WORD_BYTES
            slice_b = b_addr + k_start * n_cols * WORD_BYTES
            partial_addr = cursor
            cursor = partial_addr + n_rows * n_cols * WORD_BYTES
            weights_pitch = n_inner
        else:
            slice_a = cursor
            slice_b = slice_a + n_rows * k_size * WORD_BYTES
            partial_addr = slice_b + k_size * n_cols * WORD_BYTES
            cursor = partial_addr + n_rows * n_cols * WORD_BYTES
            weights_pitch = 0
        descriptors = plan_shards(
            n_rows, k_size, n_cols, 1, slice_a, slice_b, partial_addr,
            tile_rows=tile_rows, weights_pitch=weights_pitch,
        )[0]
        slices.append(
            KShardSlice(
                index=index,
                k_start=k_start,
                k_stop=k_stop,
                a_addr=slice_a,
                b_addr=slice_b,
                partial_addr=partial_addr,
                descriptors=tuple(descriptors),
            )
        )
    return slices


@dataclass
class WorkloadReport:
    """Cycles / energy / area of one full-system workload run.

    Attributes:
        label: human-readable workload name.
        cycles: end-to-end cycle count (at the CPU clock).
        runtime_s: cycles converted to seconds.
        instructions: host instructions executed.
        energy_j: total system energy (CPU + memory + bus + DMA + DSA).
        area_mm2: silicon area of the configuration used.
        energy_breakdown: per-component energy [J].
        result: the numerical result of the workload (for correctness checks).
    """

    label: str
    cycles: int
    runtime_s: float
    instructions: int
    energy_j: float
    area_mm2: float
    energy_breakdown: Dict[str, float] = field(default_factory=dict)
    result: Optional[np.ndarray] = None
    #: pipeline accounting of tiled offloads (empty for other workloads):
    #: n_tiles, dma_cycles, compute_cycles, serial_cycles (all phases of
    #: all PEs run back-to-back), critical_path_serial_cycles (slowest PE
    #: with no intra-PE overlap), pipelined_cycles, overlap_cycles and
    #: intra_pe_overlap_cycles (what double buffering alone saved).
    pipeline: Dict[str, int] = field(default_factory=dict)
    #: per-DMA-channel traffic of this run (delta-based, like the pipeline
    #: phases): ``{engine_name: {transfers, words_moved, bytes_moved,
    #: busy_cycles}}`` — the observable before/after of any data-movement
    #: change, in every report rather than only in the benchmarks.
    dma: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def energy_per_cycle(self) -> float:
        return self.energy_j / self.cycles if self.cycles else 0.0


class PhotonicSoC:
    """Configurable full-system model (CPU + accelerators).

    Attributes:
        clock_hz: system clock frequency.
        cpu_area_mm2 / memory_area_mm2: area figures of the host side.
        max_cycles: watchdog bound used by ``run`` (hang detection).
    """

    def __init__(
        self,
        clock_hz: float = 1e9,
        main_memory_size: int = MAIN_MEMORY_SIZE,
        cpu_area_mm2: float = 0.2,
        memory_area_mm2: float = 0.5,
        max_cycles: int = 50_000_000,
    ):
        self.clock_hz = float(clock_hz)
        self.max_cycles = int(max_cycles)
        self.cpu_area_mm2 = float(cpu_area_mm2)
        self.memory_area_mm2 = float(memory_area_mm2)
        self.scheduler = EventScheduler()
        self.bus = SystemBus()
        self.main_memory = MainMemory(main_memory_size)
        self.bus.attach(MAIN_MEMORY_BASE, main_memory_size, self.main_memory, "main-memory")
        self.interrupts = InterruptController()
        self.cpu = RiscvCPU(self.scheduler, self.bus, clock_hz=clock_hz)
        self.accelerators: List[BaseMatrixAccelerator] = []

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #
    def add_photonic_accelerator(self, **kwargs) -> PhotonicMVMAccelerator:
        """Attach a photonic GeMM accelerator; returns the device."""
        accelerator = PhotonicMVMAccelerator(
            self.scheduler,
            self.bus,
            interrupt_controller=self.interrupts,
            clock_hz=self.clock_hz,
            name=f"photonic{len(self.accelerators)}",
            **kwargs,
        )
        self._attach_accelerator(accelerator)
        return accelerator

    def add_mac_array_accelerator(self, **kwargs) -> MACArrayAccelerator:
        """Attach a digital MAC-array accelerator; returns the device."""
        accelerator = MACArrayAccelerator(
            self.scheduler,
            self.bus,
            interrupt_controller=self.interrupts,
            clock_hz=self.clock_hz,
            name=f"macarray{len(self.accelerators)}",
            **kwargs,
        )
        self._attach_accelerator(accelerator)
        return accelerator

    def _attach_accelerator(self, accelerator: BaseMatrixAccelerator) -> None:
        base = MMR_REGION_BASE + len(self.accelerators) * MMR_REGION_STRIDE
        self.bus.attach(base, accelerator.mmr.size_bytes, accelerator.mmr, accelerator.name)
        accelerator.mmr_base = base
        if accelerator.irq_line is not None:
            self.interrupts.subscribe(
                accelerator.irq_line.index, lambda _line: self.cpu.raise_interrupt()
            )
        self.accelerators.append(accelerator)

    # ------------------------------------------------------------------ #
    # memory helpers
    # ------------------------------------------------------------------ #
    def write_matrix(self, address: int, matrix: np.ndarray) -> None:
        """Store an integer matrix row-major into main memory."""
        flat = np.asarray(matrix, dtype=np.int64).reshape(-1)
        self.main_memory.load_words(address, signed_to_words(flat))

    def read_matrix(self, address: int, n_rows: int, n_cols: int) -> np.ndarray:
        """Read a row-major signed integer matrix from main memory."""
        words = self.main_memory.dump_words(address, n_rows * n_cols)
        return words_to_signed(words).reshape(n_rows, n_cols)

    # ------------------------------------------------------------------ #
    # simulation driver
    # ------------------------------------------------------------------ #
    def run_program(self, source: str, max_cycles: Optional[int] = None) -> int:
        """Assemble and run a host program to completion; returns cycles."""
        program = assemble(source)
        self.cpu.load_program(program)
        self.cpu.start()
        limit = max_cycles if max_cycles is not None else self.max_cycles
        final_cycle = self.scheduler.run(max_cycles=limit)
        return final_cycle

    def _energy_breakdown(self) -> Dict[str, float]:
        breakdown = {
            "cpu": self.cpu.stats.energy_j,
            "main_memory": self.main_memory.energy_j(),
            "bus": self.bus.energy_j(),
        }
        for accelerator in self.accelerators:
            breakdown[accelerator.name] = accelerator.stats.energy_j
        return breakdown

    def total_area_mm2(self) -> float:
        """Total silicon area of the current configuration."""
        return (
            self.cpu_area_mm2
            + self.memory_area_mm2
            + sum(accelerator.area_mm2() for accelerator in self.accelerators)
        )

    def _report(self, label: str, cycles: int, result: Optional[np.ndarray]) -> WorkloadReport:
        breakdown = self._energy_breakdown()
        return WorkloadReport(
            label=label,
            cycles=int(cycles),
            runtime_s=cycles / self.clock_hz,
            instructions=self.cpu.stats.instructions,
            energy_j=float(sum(breakdown.values())),
            area_mm2=self.total_area_mm2(),
            energy_breakdown=breakdown,
            result=result,
        )

    def _delta_report(
        self,
        label: str,
        cycles: int,
        result: Optional[np.ndarray],
        energy_before: Dict[str, float],
        instructions_before: int,
    ) -> WorkloadReport:
        """A report charging only what *this* run consumed.

        Energy counters and instruction counts are cumulative over the
        SoC's lifetime; like the per-run cycle delta, repeated offloads
        (compiled plans, serving engines) must report their own
        consumption, not the running total.  Identical to :meth:`_report`
        on a fresh SoC.
        """
        report = self._report(label, cycles, result)
        report.energy_breakdown = {
            name: energy - energy_before.get(name, 0.0)
            for name, energy in report.energy_breakdown.items()
        }
        report.energy_j = float(sum(report.energy_breakdown.values()))
        report.instructions -= instructions_before
        return report

    # ------------------------------------------------------------------ #
    # workloads (experiments E8-E10)
    # ------------------------------------------------------------------ #
    def run_cpu_gemm(
        self,
        weights: np.ndarray,
        inputs: np.ndarray,
        a_addr: int = 0x1000,
        b_addr: int = 0x4000,
        c_addr: int = 0x8000,
    ) -> WorkloadReport:
        """CPU-only baseline: software GeMM on the RISC-V host."""
        weights = np.asarray(weights, dtype=np.int64)
        inputs = np.asarray(inputs, dtype=np.int64)
        n_rows, n_inner = weights.shape
        n_cols = inputs.shape[1]
        self.write_matrix(a_addr, weights)
        self.write_matrix(b_addr, inputs)
        source = gemm_program(a_addr, b_addr, c_addr, n_rows, n_inner, n_cols)
        cycles = self.run_program(source)
        result = self.read_matrix(c_addr, n_rows, n_cols)
        return self._report("cpu-gemm", cycles, result)

    def run_offloaded_gemm(
        self,
        weights: np.ndarray,
        inputs: np.ndarray,
        accelerator_index: int = 0,
        use_interrupt: bool = False,
        a_addr: int = 0x1000,
        b_addr: int = 0x4000,
        c_addr: int = 0x8000,
    ) -> WorkloadReport:
        """Offload the GeMM to one accelerator through its MMR interface."""
        if not self.accelerators:
            raise RuntimeError("no accelerator attached")
        accelerator = self.accelerators[accelerator_index]
        weights = np.asarray(weights, dtype=np.int64)
        inputs = np.asarray(inputs, dtype=np.int64)
        n_rows, n_inner = weights.shape
        n_cols = inputs.shape[1]
        self.write_matrix(a_addr, weights)
        self.write_matrix(b_addr, inputs)
        source = accelerator_offload_program(
            accelerator.mmr_base,
            a_addr,
            b_addr,
            c_addr,
            n_rows,
            n_inner,
            n_cols,
            use_interrupt=use_interrupt,
        )
        dma_snapshot = self._dma_snapshot()
        cycles = self.run_program(source)
        result = self.read_matrix(c_addr, n_rows, n_cols)
        label = f"offload-{accelerator.device_type}" + ("-irq" if use_interrupt else "")
        report = self._report(label, cycles, result)
        self._dma_accounting(report, dma_snapshot)
        return report

    def _enqueue_streams(self, plans: List[List[TileDescriptor]], irq_per_tile: bool):
        """Program every PE's tile stream through its MMR block.

        Returns ``(host_cycles, n_tiles)`` — the bus cycles the host driver
        spent on MMR writes and the total tiles enqueued.
        """
        start_bits = CTRL_START | CTRL_IRQ_ENABLE | (
            CTRL_IRQ_PER_TILE if irq_per_tile else 0
        )
        host_cycles = 0
        n_tiles = 0
        for accelerator, descriptors in zip(self.accelerators, plans):
            # Only strided streams program the pitch register, so the host
            # driver cost (and the register traffic) of the classic dense
            # row-path streams is unchanged.
            stream_uses_pitch = any(d.weights_pitch for d in descriptors)
            for descriptor in descriptors:
                registers = {
                    REG_WEIGHTS_ADDR: descriptor.weights_addr,
                    REG_INPUT_ADDR: descriptor.input_addr,
                    REG_OUTPUT_ADDR: descriptor.output_addr,
                    REG_ROWS: descriptor.rows,
                    REG_INNER: descriptor.inner,
                    REG_COLS: descriptor.cols,
                    REG_SCALE_SHIFT: descriptor.scale_shift,
                    REG_FLAGS: 0 if descriptor.load_input else FLAG_SKIP_INPUT_LOAD,
                }
                if stream_uses_pitch:
                    registers[REG_WEIGHTS_PITCH] = descriptor.weights_pitch
                for index, value in registers.items():
                    host_cycles += self.bus.write_word(
                        accelerator.mmr_base + 0x08 + index * WORD_BYTES, value
                    )
                host_cycles += self.bus.write_word(accelerator.mmr_base, CTRL_ENQUEUE)
                n_tiles += 1
            if descriptors:
                # restore the protocol defaults (load-input, dense pitch) so
                # a later single-shot offload does not latch stale state
                host_cycles += self.bus.write_word(
                    accelerator.mmr_base + 0x08 + REG_FLAGS * WORD_BYTES, 0
                )
                if stream_uses_pitch:
                    host_cycles += self.bus.write_word(
                        accelerator.mmr_base + 0x08 + REG_WEIGHTS_PITCH * WORD_BYTES, 0
                    )
                host_cycles += self.bus.write_word(accelerator.mmr_base, start_bits)
        return host_cycles, n_tiles

    def _run_streams(self, plans: List[List[TileDescriptor]]) -> int:
        """Drive the event loop until every stream drains.

        Returns the cycles *this* offload took (the scheduler clock is
        absolute over the SoC's lifetime; repeated offloads — a compiled
        multi-layer plan, a long-lived serving engine — must not fold the
        previous runs' time into their own report).
        """
        start_cycle = self.scheduler.current_cycle
        final_cycle = self.scheduler.run(max_cycles=start_cycle + self.max_cycles)
        failed = [
            accelerator.name
            for accelerator, descriptors in zip(self.accelerators, plans)
            if descriptors and accelerator.mmr.status == STATUS_ERROR
        ]
        if failed:
            raise RuntimeError(
                f"tiled GeMM stream rejected by {', '.join(failed)} "
                f"(STATUS_ERROR: tile invalid or larger than the scratchpad)"
            )
        return final_cycle - start_cycle

    def _dma_snapshot(self) -> Dict[str, tuple]:
        """Per-engine DMA counter snapshot (for delta-based reporting)."""
        snapshot: Dict[str, tuple] = {}
        for accelerator in self.accelerators:
            for engine in (accelerator.dma, accelerator.dma_wb):
                snapshot[engine.name] = (
                    engine.stats.transfers,
                    engine.stats.words_moved,
                    engine.stats.busy_cycles,
                )
        return snapshot

    def _dma_accounting(self, report: WorkloadReport, snapshot: Dict[str, tuple]) -> None:
        """Fill ``report.dma`` with per-channel traffic deltas of this run."""
        traffic: Dict[str, Dict[str, int]] = {}
        for accelerator in self.accelerators:
            for engine in (accelerator.dma, accelerator.dma_wb):
                before = snapshot.get(engine.name, (0, 0, 0))
                words = engine.stats.words_moved - before[1]
                traffic[engine.name] = {
                    "transfers": engine.stats.transfers - before[0],
                    "words_moved": words,
                    "bytes_moved": words * WORD_BYTES,
                    "busy_cycles": engine.stats.busy_cycles - before[2],
                }
        report.dma = traffic

    def _pipeline_accounting(
        self,
        report: WorkloadReport,
        phase_snapshot,
        host_cycles: int,
        n_tiles: int,
        extra_serial_cycles: int = 0,
    ) -> None:
        """Fill ``report.pipeline`` from the PEs' phase-cycle deltas."""
        per_pe_phases = [
            (pe.stats.dma_cycles - before[0]) + (pe.stats.compute_cycles - before[1])
            for pe, before in zip(self.accelerators, phase_snapshot)
        ]
        dma_cycles = sum(
            pe.stats.dma_cycles - before[0]
            for pe, before in zip(self.accelerators, phase_snapshot)
        )
        compute_cycles = sum(
            pe.stats.compute_cycles - before[1]
            for pe, before in zip(self.accelerators, phase_snapshot)
        )
        # serial_cycles sums every phase of every PE (one-PE-at-a-time
        # execution); critical_path_serial_cycles is the slowest PE run
        # serially with no intra-PE overlap, so intra_pe_overlap_cycles
        # isolates what double buffering (not PE parallelism) saved.
        # extra_serial_cycles carries phase costs charged on both sides
        # (e.g. the K-shard partial-product reduction).
        serial_cycles = dma_cycles + compute_cycles + host_cycles + extra_serial_cycles
        critical_path = max(per_pe_phases, default=0) + host_cycles + extra_serial_cycles
        report.pipeline = {
            "n_tiles": n_tiles,
            "dma_cycles": dma_cycles,
            "compute_cycles": compute_cycles,
            "serial_cycles": serial_cycles,
            "critical_path_serial_cycles": critical_path,
            "pipelined_cycles": report.cycles,
            "overlap_cycles": serial_cycles - report.cycles,
            "intra_pe_overlap_cycles": critical_path - report.cycles,
        }

    def run_tiled_gemm(
        self,
        weights: np.ndarray,
        inputs: np.ndarray,
        a_addr: int = 0x1000,
        b_addr: int = 0x4000,
        c_addr: int = 0x8000,
        tile_rows: Optional[int] = None,
        irq_per_tile: bool = False,
        k_shards: Optional[int] = None,
        k_staging: str = "in-place",
    ) -> WorkloadReport:
        """Shard the GeMM across every attached accelerator (PE cluster).

        :func:`plan_shards` partitions the output rows across the PEs and
        splits each shard into multiple tiles; the host-side driver
        (modelled directly as MMR writes through the bus, so arbitrarily
        many PEs can be coordinated) enqueues each PE's tile stream with
        the ENQUEUE control bit and launches them together.  Inside every
        PE the double-buffered pipeline overlaps the DMA-in of tile ``t+1``
        with the compute/write-back of tile ``t``; the report's
        ``pipeline`` dict records the measured overlap against the serial
        DMA + compute phase sum.

        Args:
            tile_rows: rows per tile (default: half of each PE's shard).
            irq_per_tile: raise the completion interrupt per tile write-back
                instead of once per drained stream.
            k_shards: split the inner (K) dimension into this many slices
                instead of sharding rows — each slice computes an (M, N)
                partial product on its PE (round-robin when there are more
                slices than PEs) and the host accumulates the partials into
                the final result over the bus.  Bitwise identical to the
                unsharded product for deterministic backends (integer
                partial sums are exact; results must fit 32-bit words, the
                same constraint the row-sharded path has).
            k_staging: K-shard operand layout.  ``"in-place"`` (default)
                streams each slice's operands straight from the original
                matrices — the weight slice via a strided DMA descriptor —
                with zero host staging copies; ``"staged"`` keeps the
                historical contiguous staging copies, now charged as real
                bus traffic so the two layouts compare apples to apples.
        """
        if not self.accelerators:
            raise RuntimeError("no accelerator attached")
        if k_staging not in ("in-place", "staged"):
            raise ValueError(f"unknown k_staging mode {k_staging!r}")
        weights = np.asarray(weights, dtype=np.int64)
        inputs = np.asarray(inputs, dtype=np.int64)
        n_rows, n_inner = weights.shape
        n_cols = inputs.shape[1]
        n_pes = len(self.accelerators)
        if k_shards is not None and int(k_shards) > 1:
            return self._run_k_sharded_gemm(
                weights, inputs, c_addr, tile_rows, irq_per_tile, int(k_shards),
                a_addr=a_addr, b_addr=b_addr, staged=k_staging == "staged",
            )
        plans = plan_shards(
            n_rows, n_inner, n_cols, n_pes, a_addr, b_addr, c_addr, tile_rows=tile_rows
        )

        self.write_matrix(a_addr, weights)
        self.write_matrix(b_addr, inputs)
        phase_snapshot = [
            (pe.stats.dma_cycles, pe.stats.compute_cycles) for pe in self.accelerators
        ]
        dma_snapshot = self._dma_snapshot()
        energy_before = self._energy_breakdown()
        instructions_before = self.cpu.stats.instructions
        host_cycles, n_tiles = self._enqueue_streams(plans, irq_per_tile)
        final_cycle = self._run_streams(plans)
        result = self.read_matrix(c_addr, n_rows, n_cols)
        report = self._delta_report(
            f"tiled-gemm-{n_pes}pe",
            final_cycle + host_cycles,
            result,
            energy_before,
            instructions_before,
        )
        self._pipeline_accounting(report, phase_snapshot, host_cycles, n_tiles)
        self._dma_accounting(report, dma_snapshot)
        return report

    def _run_k_sharded_gemm(
        self,
        weights: np.ndarray,
        inputs: np.ndarray,
        c_addr: int,
        tile_rows: Optional[int],
        irq_per_tile: bool,
        k_shards: int,
        staging_addr: int = K_STAGING_ADDR,
        a_addr: int = 0x1000,
        b_addr: int = 0x4000,
        staged: bool = False,
    ) -> WorkloadReport:
        """K-dimension sharding: per-slice partial products + accumulation.

        Each K-slice runs as its own row-tiled stream (so double buffering
        still overlaps DMA and compute inside every PE); slices are dealt
        round-robin to the PEs.  After the streams drain, the host reduces
        the (M, N) partials into ``c_addr`` with charged bulk bus reads and
        one bulk write — the accumulation cost appears on both sides of the
        pipelined-vs-serial comparison so the reported overlap is still the
        pipeline's own win.

        By default the operand slices are read **in place**: the weight
        slice ``A[:, k_start:k_stop]`` is a strided view of the row-major
        matrix at ``a_addr``, so each tile programs ``REG_WEIGHTS_PITCH``
        and its DMA fetch becomes one strided descriptor
        (``system/dma.py:DMADescriptor``) streaming the slice straight from
        its original bus addresses; ``B[k_start:k_stop, :]`` is a
        contiguous row range of the matrix at ``b_addr`` and needs no
        descriptor at all.  Only the (M, N) partial-product buffers are
        allocated from ``staging_addr``, and the host copies nothing.

        ``staged=True`` keeps the historical layout — contiguous operand
        copies per slice — as a measurable comparison point: the staging
        copies are charged as real bus traffic (strided read of each weight
        slice, bulk read of each input range, bulk writes into the staging
        region, plus the partial-buffer zeroing the in-place path does not
        need), using the same first-word-per-block burst accounting as the
        accumulation phase.  Both modes are bitwise identical.
        """
        n_rows, n_inner = weights.shape
        n_cols = inputs.shape[1]
        n_pes = len(self.accelerators)
        n_words = n_rows * n_cols
        slices = plan_k_shards(
            n_rows, n_inner, n_cols, k_shards, staging_addr=staging_addr,
            tile_rows=tile_rows,
            a_addr=None if staged else a_addr,
            b_addr=None if staged else b_addr,
        )
        needed = slices[-1].partial_addr + n_words * WORD_BYTES
        if needed > self.main_memory.size_bytes:
            raise ValueError(
                f"K-shard staging region [{staging_addr:#x}, {needed:#x}) exceeds "
                f"main memory ({self.main_memory.size_bytes:#x} bytes)"
            )
        # Operand load: host setup, unaccounted — the same convention as
        # the row path's write_matrix operand loads.
        self.write_matrix(a_addr, weights)
        self.write_matrix(b_addr, inputs)
        plans: List[List[TileDescriptor]] = [[] for _ in range(n_pes)]
        for piece in slices:
            plans[piece.index % n_pes].extend(piece.descriptors)

        phase_snapshot = [
            (pe.stats.dma_cycles, pe.stats.compute_cycles) for pe in self.accelerators
        ]
        dma_snapshot = self._dma_snapshot()
        energy_before = self._energy_breakdown()
        instructions_before = self.cpu.stats.instructions

        staging_cycles = 0
        staging_words = 0
        if staged:
            # Host-side staging copies, charged with the same burst model
            # as the accumulation phase: the first word of each block pays
            # the access latency, the rest stream one word per cycle.  Each
            # word crosses the bus twice (read from the original matrix,
            # write into the staging region), and both crossings count.
            for piece in slices:
                n_a = n_rows * piece.k_size
                values, per_word = self.bus.read_strided(
                    a_addr + piece.k_start * WORD_BYTES,
                    piece.k_size, n_rows, n_inner,
                )
                staging_cycles += per_word + (n_a - 1)
                per_word = self.bus.write_block(piece.a_addr, values)
                staging_cycles += per_word + (n_a - 1)
                n_b = piece.k_size * n_cols
                values, per_word = self.bus.read_block(
                    b_addr + piece.k_start * n_cols * WORD_BYTES, n_b
                )
                staging_cycles += per_word + (n_b - 1)
                per_word = self.bus.write_block(piece.b_addr, values)
                staging_cycles += per_word + (n_b - 1)
                # zero the partial region so a stale buffer can never alias
                per_word = self.bus.write_block(
                    piece.partial_addr, np.zeros(n_words, dtype=np.int64)
                )
                staging_cycles += per_word + (n_words - 1)
                staging_words += 2 * (n_a + n_b) + n_words
        # In-place mode writes no partial zeros either: every partial word
        # is overwritten by a tile's DMA write-back before the accumulation
        # reads it (the slice streams cover all M rows, and stream errors
        # raise before any partial is read).

        host_cycles, n_tiles = self._enqueue_streams(plans, irq_per_tile)
        final_cycle = self._run_streams(plans)

        # partial-product accumulation: bulk bus reads of every partial,
        # one bulk write of the reduced result (burst model: first word of
        # each block pays the access latency, the rest stream 1 word/cycle)
        accumulated = np.zeros((n_rows, n_cols), dtype=np.int64)
        accumulate_cycles = 0
        for piece in slices:
            values, per_word = self.bus.read_block(piece.partial_addr, n_words)
            accumulate_cycles += per_word + (n_words - 1)
            accumulated += words_to_signed(values).reshape(n_rows, n_cols)
        per_word = self.bus.write_block(c_addr, signed_to_words(accumulated.reshape(-1)))
        accumulate_cycles += per_word + (n_words - 1)

        result = self.read_matrix(c_addr, n_rows, n_cols)
        label = f"tiled-gemm-{n_pes}pe-k{k_shards}" + ("-staged" if staged else "")
        report = self._delta_report(
            label,
            final_cycle + host_cycles + staging_cycles + accumulate_cycles,
            result,
            energy_before,
            instructions_before,
        )
        self._pipeline_accounting(
            report, phase_snapshot, host_cycles, n_tiles,
            extra_serial_cycles=staging_cycles + accumulate_cycles,
        )
        report.pipeline["k_shards"] = k_shards
        report.pipeline["accumulate_cycles"] = accumulate_cycles
        report.pipeline["staging_cycles"] = staging_cycles
        report.pipeline["staging_words"] = staging_words
        self._dma_accounting(report, dma_snapshot)
        return report

    def accelerator_status(self, accelerator_index: int = 0) -> int:
        """Read an accelerator's STATUS register (host-side view)."""
        accelerator = self.accelerators[accelerator_index]
        value, _ = self.bus.read_word(accelerator.mmr_base + 0x04)
        return value

    def all_accelerators_done(self) -> bool:
        """True when every attached accelerator reports DONE or idle."""
        return all(not accelerator.busy for accelerator in self.accelerators)
