"""Memory-mapped registers (MMRs): the accelerator's host interface.

Following gem5-MARVEL, the Communications Interface of a domain-specific
accelerator exposes configurable status, control and data registers to the
host.  The host configures a computation by writing data registers (matrix
dimensions, buffer addresses), starts it by writing the control register,
and learns about completion either by polling the status register or
through an interrupt line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.system.memory import MemoryAccessError, WORD_BYTES, to_unsigned

#: Conventional register offsets shared by all accelerators in this repo.
CTRL_OFFSET = 0x00
STATUS_OFFSET = 0x04
#: First data register offset; data registers are contiguous words after it.
DATA_OFFSET = 0x08

#: CTRL register bits.
CTRL_START = 0x1
CTRL_RESET = 0x2
CTRL_IRQ_ENABLE = 0x4
#: Push the descriptor currently held in the data registers onto the
#: device's tile queue without starting it (multi-tile offload streams).
CTRL_ENQUEUE = 0x8
#: Raise the IRQ line on every per-tile write-back completion instead of
#: only when the whole tile stream drains.
CTRL_IRQ_PER_TILE = 0x10

#: STATUS register bits.
STATUS_IDLE = 0x0
STATUS_BUSY = 0x1
STATUS_DONE = 0x2
STATUS_ERROR = 0x4


@dataclass
class MemoryMappedRegisters:
    """The MMR block of one accelerator.

    Attributes:
        n_data_registers: number of general-purpose data registers.
        on_start: callback invoked when the host sets the START bit.
        on_reset: callback invoked when the host sets the RESET bit.
    """

    n_data_registers: int = 16
    on_start: Optional[Callable[[], None]] = None
    on_reset: Optional[Callable[[], None]] = None
    on_enqueue: Optional[Callable[[], None]] = None

    def __post_init__(self):
        if self.n_data_registers < 1:
            raise ValueError("need at least one data register")
        self.control = 0
        self.status = STATUS_IDLE
        self.data: List[int] = [0] * self.n_data_registers
        self.read_count = 0
        self.write_count = 0

    @property
    def size_bytes(self) -> int:
        """Address-space footprint of the register block."""
        return DATA_OFFSET + self.n_data_registers * WORD_BYTES

    @property
    def irq_enabled(self) -> bool:
        """Whether the host asked for a completion interrupt."""
        return bool(self.control & CTRL_IRQ_ENABLE)

    @property
    def irq_per_tile(self) -> bool:
        """Whether the host asked for one interrupt per completed tile."""
        return bool(self.control & CTRL_IRQ_PER_TILE)

    # ------------------------------------------------------------------ #
    # bus-facing interface
    # ------------------------------------------------------------------ #
    def read_word(self, offset: int) -> int:
        """Read a register by byte offset inside the block."""
        self.read_count += 1
        if offset == CTRL_OFFSET:
            return self.control
        if offset == STATUS_OFFSET:
            return self.status
        index = self._data_index(offset)
        return self.data[index]

    def write_word(self, offset: int, value: int) -> None:
        """Write a register by byte offset inside the block."""
        self.write_count += 1
        value = to_unsigned(int(value))
        if offset == CTRL_OFFSET:
            self.control = value
            if value & CTRL_RESET:
                self.status = STATUS_IDLE
                if self.on_reset is not None:
                    self.on_reset()
            if value & CTRL_ENQUEUE and self.on_enqueue is not None:
                self.on_enqueue()
            if value & CTRL_START:
                self.status = STATUS_BUSY
                if self.on_start is not None:
                    self.on_start()
            return
        if offset == STATUS_OFFSET:
            # The status register is device-owned; host writes clear DONE.
            self.status = STATUS_IDLE
            return
        index = self._data_index(offset)
        self.data[index] = value

    def _data_index(self, offset: int) -> int:
        if offset < DATA_OFFSET or offset % WORD_BYTES != 0:
            raise MemoryAccessError(f"invalid MMR offset {offset:#x}")
        index = (offset - DATA_OFFSET) // WORD_BYTES
        if index >= self.n_data_registers:
            raise MemoryAccessError(f"MMR data register {index} out of range")
        return index

    # ------------------------------------------------------------------ #
    # device-facing interface
    # ------------------------------------------------------------------ #
    def mark_done(self, error: bool = False) -> None:
        """Called by the accelerator when a computation finishes."""
        self.status = STATUS_ERROR if error else STATUS_DONE

    def mark_busy(self) -> None:
        """Called by the accelerator when it starts working."""
        self.status = STATUS_BUSY

    def data_register(self, index: int) -> int:
        """Device-side read of a data register by index."""
        if not 0 <= index < self.n_data_registers:
            raise MemoryAccessError(f"MMR data register {index} out of range")
        return self.data[index]

    def set_data_register(self, index: int, value: int) -> None:
        """Device-side write of a data register by index."""
        if not 0 <= index < self.n_data_registers:
            raise MemoryAccessError(f"MMR data register {index} out of range")
        self.data[index] = to_unsigned(int(value))
