"""Discrete-event simulation kernel for the system-level simulator.

The gem5-style full-system model is driven by a single global event queue:
every component (CPU, DMA engine, accelerator, interrupt controller)
schedules callbacks at future cycle counts and the kernel executes them in
time order.  Cycle counts are integers; ties are broken by scheduling
order so the simulation is fully deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple


@dataclass(order=True)
class _ScheduledEvent:
    cycle: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)


class EventScheduler:
    """Global event queue ordered by cycle count.

    Attributes:
        current_cycle: simulation time of the event being processed (or the
            last processed one when idle).
    """

    def __init__(self):
        self._queue: List[_ScheduledEvent] = []
        self._sequence = 0
        self.current_cycle = 0
        self.events_processed = 0
        #: optional (cycle, label) dispatch log, enabled by :meth:`enable_trace`
        self.trace: Optional[List[Tuple[int, str]]] = None

    def enable_trace(self) -> List[Tuple[int, str]]:
        """Record every dispatched event as ``(cycle, label)``.

        Used by the pipeline tests and benchmarks to prove DMA/compute
        overlap from the actual event stream instead of aggregate counters.
        """
        self.trace = []
        return self.trace

    def schedule(self, delay: int, callback: Callable[[], None], label: str = "") -> _ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` cycles from now.

        Returns a handle that can be passed to :meth:`cancel`.
        """
        if delay < 0:
            raise ValueError("cannot schedule events in the past")
        event = _ScheduledEvent(
            cycle=self.current_cycle + int(delay),
            sequence=self._sequence,
            callback=callback,
            label=label,
        )
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, cycle: int, callback: Callable[[], None], label: str = "") -> _ScheduledEvent:
        """Schedule ``callback`` at an absolute cycle count."""
        if cycle < self.current_cycle:
            raise ValueError("cannot schedule events in the past")
        return self.schedule(cycle - self.current_cycle, callback, label)

    def cancel(self, event: _ScheduledEvent) -> None:
        """Cancel a previously scheduled event (lazy removal)."""
        event.cancelled = True

    @property
    def pending(self) -> int:
        """Number of events still waiting (including cancelled ones)."""
        return len(self._queue)

    def step(self) -> bool:
        """Process the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.current_cycle = event.cycle
            if self.trace is not None:
                self.trace.append((event.cycle, event.label))
            event.callback()
            self.events_processed += 1
            return True
        return False

    def run(self, max_cycles: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains or a limit is hit; returns the final cycle.

        ``max_cycles`` bounds simulated time, ``max_events`` bounds work —
        the latter is the watchdog used by fault-injection campaigns to
        classify hangs.
        """
        processed = 0
        while self._queue:
            next_event = self._queue[0]
            if next_event.cancelled:
                heapq.heappop(self._queue)
                continue
            if max_cycles is not None and next_event.cycle > max_cycles:
                break
            if max_events is not None and processed >= max_events:
                break
            self.step()
            processed += 1
        return self.current_cycle
