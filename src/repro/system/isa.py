"""RISC-V (RV32IM subset) instruction definitions.

The NEUROPULS simulation platform ports gem5-SALAM from Arm to RISC-V; the
host processor of this reproduction is therefore a small RV32IM core.  The
ISA layer defines the instruction set as structured objects (rather than
binary encodings): the assembler produces :class:`Instruction` instances
and the CPU executes them directly.  This keeps the simulator readable
while preserving the architectural behaviour (register semantics, control
flow, memory access, multiply/divide) that the workloads and the fault
injector need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Architectural register count (x0..x31).
N_REGISTERS = 32

#: ABI register names accepted by the assembler, mapped to indices.
ABI_NAMES = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7,
    "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15, "a6": 16, "a7": 17,
    "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23, "s8": 24, "s9": 25,
    "s10": 26, "s11": 27,
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}

#: Instruction categories used for timing and fault models.
ALU_OPS = {
    "add", "sub", "and", "or", "xor", "slt", "sltu", "sll", "srl", "sra",
    "addi", "andi", "ori", "xori", "slti", "sltiu", "slli", "srli", "srai",
    "lui", "auipc",
}
MUL_OPS = {"mul", "mulh", "div", "rem"}
LOAD_OPS = {"lw"}
STORE_OPS = {"sw"}
BRANCH_OPS = {"beq", "bne", "blt", "bge", "bltu", "bgeu"}
JUMP_OPS = {"jal", "jalr"}
SYSTEM_OPS = {"ecall", "ebreak"}

ALL_OPS = ALU_OPS | MUL_OPS | LOAD_OPS | STORE_OPS | BRANCH_OPS | JUMP_OPS | SYSTEM_OPS


class IllegalInstructionError(Exception):
    """Raised when the CPU encounters an unknown or malformed instruction."""


@dataclass(frozen=True)
class Instruction:
    """One decoded RV32IM instruction.

    Attributes:
        op: mnemonic (lower case).
        rd / rs1 / rs2: register indices (None when unused).
        imm: immediate value (None when unused); branch/jump immediates are
            byte offsets relative to the instruction address, as in RISC-V.
        label: optional source-level label for debugging.
    """

    op: str
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: Optional[int] = None
    label: str = ""

    def __post_init__(self):
        if self.op not in ALL_OPS:
            raise IllegalInstructionError(f"unknown mnemonic {self.op!r}")
        for name, reg in (("rd", self.rd), ("rs1", self.rs1), ("rs2", self.rs2)):
            if reg is not None and not 0 <= reg < N_REGISTERS:
                raise IllegalInstructionError(f"{name} register index {reg} out of range")

    @property
    def category(self) -> str:
        """Timing category: alu, mul, load, store, branch, jump or system."""
        if self.op in ALU_OPS:
            return "alu"
        if self.op in MUL_OPS:
            return "mul"
        if self.op in LOAD_OPS:
            return "load"
        if self.op in STORE_OPS:
            return "store"
        if self.op in BRANCH_OPS:
            return "branch"
        if self.op in JUMP_OPS:
            return "jump"
        return "system"


def parse_register(token: str) -> int:
    """Parse a register token (``x7``, ``a0``, ``sp`` ...) to its index."""
    token = token.strip().lower().rstrip(",")
    if token in ABI_NAMES:
        return ABI_NAMES[token]
    if token.startswith("x"):
        try:
            index = int(token[1:])
        except ValueError as exc:
            raise IllegalInstructionError(f"bad register {token!r}") from exc
        if 0 <= index < N_REGISTERS:
            return index
    raise IllegalInstructionError(f"bad register {token!r}")
