"""RISC-V (RV32IM subset) host CPU model.

An in-order, single-issue core with a simple timing model: every
instruction costs its category's base latency plus, for loads and stores,
the latency reported by the bus for the access.  This is deliberately a
*system-level* CPU model in the gem5 "timing simple" spirit — accurate
enough to compare a software GeMM against the photonic accelerator
offload, cheap enough to run fault-injection campaigns with thousands of
simulated executions.

The CPU is event-driven: it schedules its own next-instruction events on
the shared :class:`repro.system.event.EventScheduler`, so DMA transfers,
accelerator completions and interrupts interleave with instruction
execution at the right cycle counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.system.assembler import Program
from repro.system.event import EventScheduler
from repro.system.bus import SystemBus
from repro.system.isa import Instruction, IllegalInstructionError, N_REGISTERS
from repro.system.memory import MemoryAccessError, to_signed, to_unsigned

#: Base latency (cycles) per instruction category.
DEFAULT_LATENCIES: Dict[str, int] = {
    "alu": 1,
    "mul": 3,
    "load": 1,      # plus bus/memory latency
    "store": 1,     # plus bus/memory latency
    "branch": 1,
    "jump": 1,
    "system": 1,
}

#: Dynamic energy per instruction category [J] (small in-order RISC-V core).
DEFAULT_ENERGIES: Dict[str, float] = {
    "alu": 5e-12,
    "mul": 15e-12,
    "load": 10e-12,
    "store": 10e-12,
    "branch": 4e-12,
    "jump": 4e-12,
    "system": 2e-12,
}


class CPUError(Exception):
    """Raised for architectural errors (bad pc, illegal instruction)."""


@dataclass
class CPUStats:
    """Execution statistics of one CPU."""

    instructions: int = 0
    cycles: int = 0
    loads: int = 0
    stores: int = 0
    branches_taken: int = 0
    stall_cycles: int = 0
    energy_j: float = 0.0
    per_category: Dict[str, int] = field(default_factory=dict)

    @property
    def cpi(self) -> float:
        """Cycles per instruction."""
        if self.instructions == 0:
            return 0.0
        return self.cycles / self.instructions


class RiscvCPU:
    """Event-driven RV32IM subset core.

    Attributes:
        scheduler: shared event queue.
        bus: system interconnect for loads/stores.
        clock_hz: core clock (converts cycles to seconds for reports).
        name: instance name (used by multi-core / cluster configurations).
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        bus: SystemBus,
        clock_hz: float = 1e9,
        name: str = "cpu0",
        latencies: Optional[Dict[str, int]] = None,
        energies: Optional[Dict[str, float]] = None,
    ):
        self.scheduler = scheduler
        self.bus = bus
        self.clock_hz = float(clock_hz)
        self.name = name
        self.latencies = dict(DEFAULT_LATENCIES, **(latencies or {}))
        self.energies = dict(DEFAULT_ENERGIES, **(energies or {}))
        self.registers = [0] * N_REGISTERS
        self.pc = 0
        self.program: Optional[Program] = None
        self.halted = False
        self.waiting_for_interrupt = False
        self.stats = CPUStats()
        self._pending_interrupt = False
        self._max_instructions: Optional[int] = None

    # ------------------------------------------------------------------ #
    # register file
    # ------------------------------------------------------------------ #
    def read_register(self, index: int) -> int:
        if not 0 <= index < N_REGISTERS:
            raise CPUError(f"register x{index} out of range")
        return 0 if index == 0 else self.registers[index]

    def write_register(self, index: int, value: int) -> None:
        if not 0 <= index < N_REGISTERS:
            raise CPUError(f"register x{index} out of range")
        if index != 0:
            self.registers[index] = to_unsigned(int(value))

    # ------------------------------------------------------------------ #
    # program control
    # ------------------------------------------------------------------ #
    def load_program(self, program: Program, max_instructions: Optional[int] = None) -> None:
        """Load a program and reset the architectural state."""
        self.program = program
        self.pc = 0
        self.registers = [0] * N_REGISTERS
        self.halted = False
        self.waiting_for_interrupt = False
        self._pending_interrupt = False
        self.stats = CPUStats()
        self._max_instructions = max_instructions

    def start(self, delay: int = 0) -> None:
        """Schedule the first instruction fetch."""
        if self.program is None:
            raise CPUError("no program loaded")
        self.scheduler.schedule(delay, self._execute_next, label=f"{self.name}-fetch")

    def raise_interrupt(self) -> None:
        """Signal an external interrupt (wakes a core waiting on WFI-style poll)."""
        self._pending_interrupt = True
        if self.waiting_for_interrupt and not self.halted:
            self.waiting_for_interrupt = False
            self.scheduler.schedule(1, self._execute_next, label=f"{self.name}-wake")

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _fetch(self) -> Instruction:
        if self.program is None:
            raise CPUError("no program loaded")
        index = self.pc // 4
        if self.pc % 4 != 0 or not 0 <= index < len(self.program.instructions):
            raise CPUError(f"pc {self.pc:#x} outside program")
        return self.program.instructions[index]

    def _execute_next(self) -> None:
        if self.halted or self.waiting_for_interrupt:
            return
        if (
            self._max_instructions is not None
            and self.stats.instructions >= self._max_instructions
        ):
            self.halted = True
            return
        try:
            instruction = self._fetch()
            latency = self._execute(instruction)
        except (CPUError, MemoryAccessError, IllegalInstructionError) as exc:
            # Architectural faults halt the core; the SoC records the cause.
            self.halted = True
            self.fault_cause = str(exc)
            return
        self.stats.instructions += 1
        self.stats.cycles += latency
        category = instruction.category
        self.stats.per_category[category] = self.stats.per_category.get(category, 0) + 1
        self.stats.energy_j += self.energies[category]
        if not self.halted and not self.waiting_for_interrupt:
            self.scheduler.schedule(latency, self._execute_next, label=f"{self.name}-exec")

    def _execute(self, instruction: Instruction) -> int:
        """Execute one instruction; returns its latency in cycles."""
        op = instruction.op
        latency = self.latencies[instruction.category]
        next_pc = self.pc + 4

        if op in ("ecall", "ebreak"):
            self.halted = True
        elif op == "lui":
            self.write_register(instruction.rd, instruction.imm << 12)
        elif op == "auipc":
            self.write_register(instruction.rd, self.pc + (instruction.imm << 12))
        elif op == "jal":
            self.write_register(instruction.rd, self.pc + 4)
            next_pc = self.pc + instruction.imm
        elif op == "jalr":
            target = (self.read_register(instruction.rs1) + instruction.imm) & ~1
            self.write_register(instruction.rd, self.pc + 4)
            next_pc = to_unsigned(target)
        elif op in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            taken = self._branch_taken(instruction)
            if taken:
                next_pc = self.pc + instruction.imm
                self.stats.branches_taken += 1
                latency += 1  # simple taken-branch penalty
        elif op == "lw":
            address = to_unsigned(self.read_register(instruction.rs1) + instruction.imm)
            value, access_latency = self.bus.read_word(address)
            self.write_register(instruction.rd, value)
            latency += access_latency
            self.stats.loads += 1
            self.stats.stall_cycles += access_latency
        elif op == "sw":
            address = to_unsigned(self.read_register(instruction.rs1) + instruction.imm)
            access_latency = self.bus.write_word(address, self.read_register(instruction.rs2))
            latency += access_latency
            self.stats.stores += 1
            self.stats.stall_cycles += access_latency
        else:
            self._execute_alu(instruction)

        self.pc = next_pc
        return latency

    def _branch_taken(self, instruction: Instruction) -> bool:
        lhs = self.read_register(instruction.rs1)
        rhs = self.read_register(instruction.rs2)
        signed_lhs, signed_rhs = to_signed(lhs), to_signed(rhs)
        op = instruction.op
        if op == "beq":
            return lhs == rhs
        if op == "bne":
            return lhs != rhs
        if op == "blt":
            return signed_lhs < signed_rhs
        if op == "bge":
            return signed_lhs >= signed_rhs
        if op == "bltu":
            return lhs < rhs
        if op == "bgeu":
            return lhs >= rhs
        raise IllegalInstructionError(op)

    def _execute_alu(self, instruction: Instruction) -> None:
        op = instruction.op
        rs1 = self.read_register(instruction.rs1) if instruction.rs1 is not None else 0
        signed_rs1 = to_signed(rs1)
        if instruction.rs2 is not None:
            operand = self.read_register(instruction.rs2)
        else:
            operand = to_unsigned(instruction.imm)
        signed_operand = to_signed(operand) if instruction.rs2 is not None else instruction.imm

        if op in ("add", "addi"):
            result = rs1 + (operand if instruction.rs2 is not None else instruction.imm)
        elif op == "sub":
            result = rs1 - operand
        elif op in ("and", "andi"):
            result = rs1 & operand
        elif op in ("or", "ori"):
            result = rs1 | operand
        elif op in ("xor", "xori"):
            result = rs1 ^ operand
        elif op in ("slt", "slti"):
            result = 1 if signed_rs1 < signed_operand else 0
        elif op in ("sltu", "sltiu"):
            compare = operand if instruction.rs2 is not None else to_unsigned(instruction.imm)
            result = 1 if rs1 < compare else 0
        elif op in ("sll", "slli"):
            result = rs1 << (operand & 0x1F)
        elif op in ("srl", "srli"):
            result = rs1 >> (operand & 0x1F)
        elif op in ("sra", "srai"):
            result = signed_rs1 >> (operand & 0x1F)
        elif op == "mul":
            result = signed_rs1 * to_signed(operand)
        elif op == "mulh":
            result = (signed_rs1 * to_signed(operand)) >> 32
        elif op == "div":
            divisor = to_signed(operand)
            result = -1 if divisor == 0 else int(signed_rs1 / divisor)
        elif op == "rem":
            divisor = to_signed(operand)
            result = signed_rs1 if divisor == 0 else signed_rs1 - int(signed_rs1 / divisor) * divisor
        else:
            raise IllegalInstructionError(op)
        self.write_register(instruction.rd, result)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def runtime_seconds(self) -> float:
        """Wall-clock runtime of the executed instructions at the core clock."""
        return self.stats.cycles / self.clock_hz
