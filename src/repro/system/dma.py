"""Direct memory access (DMA) engine.

Accelerators do not issue word-by-word loads through the host; a DMA engine
streams blocks between main memory and the accelerator scratchpads.  The
model charges per-word bus/memory latency with a configurable burst
overlap factor and accumulates the moved-byte counters the data-movement
energy analysis needs.  Transfers move as single bulk (vectorised) block
copies through ``SystemBus.read_block``/``write_block`` — bitwise equal to
the historical word-at-a-time loop with identical cycle/energy accounting,
just without the Python-level per-word overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.system.bus import SystemBus
from repro.system.event import EventScheduler
from repro.system.memory import MainMemory, WORD_BYTES


@dataclass
class DMAStats:
    """Transfer statistics of one DMA engine."""

    transfers: int = 0
    words_moved: int = 0
    busy_cycles: int = 0

    @property
    def bytes_moved(self) -> int:
        return self.words_moved * WORD_BYTES


class DMAEngine:
    """A single-channel DMA engine moving words over the system bus.

    Attributes:
        scheduler: shared event queue (completion callbacks are scheduled
            after the modelled transfer time).
        bus: interconnect used for the main-memory side of transfers.
        words_per_burst: words moved per burst; bursts pipeline so the
            effective per-word cost drops for long transfers.
        energy_per_word: DMA engine energy per word moved [J].
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        bus: SystemBus,
        words_per_burst: int = 8,
        energy_per_word: float = 2e-12,
        name: str = "dma0",
    ):
        if words_per_burst < 1:
            raise ValueError("words_per_burst must be >= 1")
        self.scheduler = scheduler
        self.bus = bus
        self.words_per_burst = int(words_per_burst)
        self.energy_per_word = float(energy_per_word)
        self.name = name
        self.stats = DMAStats()
        self.busy = False

    def _transfer_latency(self, n_words: int, per_word_latency: int) -> int:
        """Cycle cost of a transfer with burst pipelining.

        The first word of each burst pays the full access latency, the rest
        stream at one word per cycle.
        """
        if n_words == 0:
            return 0
        n_bursts = (n_words + self.words_per_burst - 1) // self.words_per_burst
        return n_bursts * per_word_latency + (n_words - n_bursts)

    def copy_to_scratchpad(
        self,
        source_address: int,
        destination: MainMemory,
        destination_offset: int,
        n_words: int,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> int:
        """Copy ``n_words`` from bus address space into a scratchpad.

        Returns the modelled transfer latency in cycles.  The data is moved
        immediately (functional view); the completion callback fires after
        the latency has elapsed (timing view).
        """
        if self.busy:
            raise RuntimeError(f"{self.name} is already busy")
        per_word_latency = 0
        self.bus.begin_stream(self.name)
        try:
            if n_words:
                values, per_word_latency = self.bus.read_block(
                    source_address, n_words, initiator=self.name
                )
                destination.write_block(destination_offset, values)
        except Exception:
            # a faulted transfer must not leave a phantom stream taxing
            # every later access with arbitration cycles
            self.bus.end_stream(self.name)
            raise
        return self._finish(n_words, per_word_latency, on_complete)

    def copy_from_scratchpad(
        self,
        source: MainMemory,
        source_offset: int,
        destination_address: int,
        n_words: int,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> int:
        """Copy ``n_words`` from a scratchpad into bus address space."""
        if self.busy:
            raise RuntimeError(f"{self.name} is already busy")
        per_word_latency = 0
        self.bus.begin_stream(self.name)
        try:
            if n_words:
                values = source.read_block(source_offset, n_words)
                per_word_latency = self.bus.write_block(
                    destination_address, values, initiator=self.name
                )
        except Exception:
            self.bus.end_stream(self.name)
            raise
        return self._finish(n_words, per_word_latency, on_complete)

    def _finish(self, n_words: int, per_word_latency: int, on_complete) -> int:
        latency = self._transfer_latency(n_words, max(per_word_latency, 1))
        self.stats.transfers += 1
        self.stats.words_moved += n_words
        self.stats.busy_cycles += latency
        if self.bus.arbitration_penalty > 0:
            # hold the bus grant for the modelled transfer window so other
            # streams see contention; with arbitration off, begin_stream was
            # a no-op and no release event perturbs the event queue
            self.scheduler.schedule(
                latency,
                lambda: self.bus.end_stream(self.name),
                label=f"{self.name}-bus-release",
            )
        if on_complete is not None:
            self.busy = True

            def _complete():
                self.busy = False
                on_complete()

            self.scheduler.schedule(latency, _complete, label=f"{self.name}-done")
        return latency

    def energy_j(self) -> float:
        """DMA engine energy consumed so far."""
        return self.stats.words_moved * self.energy_per_word
