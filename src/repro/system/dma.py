"""Direct memory access (DMA) engine.

Accelerators do not issue word-by-word loads through the host; a DMA engine
streams blocks between main memory and the accelerator scratchpads.  The
model charges per-word bus/memory latency with a configurable burst
overlap factor and accumulates the moved-byte counters the data-movement
energy analysis needs.  Transfers move as single bulk (vectorised) block
copies through ``SystemBus.read_block``/``write_block`` — bitwise equal to
the historical word-at-a-time loop with identical cycle/energy accounting,
just without the Python-level per-word overhead.

Transfers are described either by a plain ``(address, n_words)`` pair or by
a :class:`DMADescriptor` — base / block length / block count / stride —
which lets a single transfer stream a strided view such as the column slice
``A[:, k0:k1]`` of a row-major matrix directly from its original bus
addresses.  :class:`GatherDescriptor` covers irregular address lists.  Both
are charged with the same burst model as a contiguous transfer of equal
word count: the burst engine re-registers at block boundaries for free, but
every word still crosses the bus and is counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Union

from repro.system.bus import SystemBus
from repro.system.event import EventScheduler
from repro.system.memory import MainMemory, WORD_BYTES


@dataclass(frozen=True)
class DMADescriptor:
    """A strided transfer: ``n_blocks`` blocks of ``block_words`` words,
    consecutive block bases ``stride_words`` apart.

    ``stride_words == 0`` (or ``== block_words``) describes a contiguous
    transfer; ``stride_words > block_words`` skips words between blocks,
    which is exactly the shape of a row-major matrix column slice.
    """

    base: int
    block_words: int
    n_blocks: int = 1
    stride_words: int = 0

    def __post_init__(self):
        if self.base < 0:
            raise ValueError("descriptor base must be >= 0")
        if self.block_words < 0 or self.n_blocks < 0:
            raise ValueError("descriptor block shape must be >= 0")
        if self.stride_words < 0:
            raise ValueError("descriptor stride must be >= 0")
        if self.n_blocks > 1 and 0 < self.stride_words < self.block_words:
            raise ValueError("descriptor blocks overlap: stride < block length")

    @property
    def n_words(self) -> int:
        """Total words the descriptor moves."""
        return self.block_words * self.n_blocks

    @property
    def contiguous(self) -> bool:
        """True when the blocks form one gap-free range."""
        return self.n_blocks <= 1 or self.stride_words in (0, self.block_words)


@dataclass(frozen=True)
class GatherDescriptor:
    """A gather transfer: one ``block_words``-sized block per address."""

    addresses: Tuple[int, ...]
    block_words: int

    def __post_init__(self):
        object.__setattr__(self, "addresses", tuple(int(a) for a in self.addresses))
        if any(address < 0 for address in self.addresses):
            raise ValueError("gather addresses must be >= 0")
        if self.block_words < 0:
            raise ValueError("gather block length must be >= 0")

    @property
    def n_words(self) -> int:
        return self.block_words * len(self.addresses)


Source = Union[int, DMADescriptor, GatherDescriptor]


@dataclass
class DMAStats:
    """Transfer statistics of one DMA engine."""

    transfers: int = 0
    words_moved: int = 0
    busy_cycles: int = 0

    @property
    def bytes_moved(self) -> int:
        return self.words_moved * WORD_BYTES


class DMAEngine:
    """A single-channel DMA engine moving words over the system bus.

    Attributes:
        scheduler: shared event queue (completion callbacks are scheduled
            after the modelled transfer time).
        bus: interconnect used for the main-memory side of transfers.
        words_per_burst: words moved per burst; bursts pipeline so the
            effective per-word cost drops for long transfers.
        energy_per_word: DMA engine energy per word moved [J].

    The engine is busy for the whole modelled transfer window, callback or
    not.  Several transfers issued in the *same* cycle chain as one
    descriptor list — the window extends by each transfer's latency, which
    is how an accelerator queues its weights + input fetches back to back.
    Issuing from a strictly later cycle while the window is still open is a
    programming error and raises.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        bus: SystemBus,
        words_per_burst: int = 8,
        energy_per_word: float = 2e-12,
        name: str = "dma0",
    ):
        if words_per_burst < 1:
            raise ValueError("words_per_burst must be >= 1")
        self.scheduler = scheduler
        self.bus = bus
        self.words_per_burst = int(words_per_burst)
        self.energy_per_word = float(energy_per_word)
        self.name = name
        self.stats = DMAStats()
        self._busy_until = 0
        self._issue_cycle = -1

    @property
    def busy(self) -> bool:
        """True while the modelled transfer window of the last transfer
        (or chain of same-cycle transfers) is still open."""
        return self.scheduler.current_cycle < self._busy_until

    def _check_idle(self) -> None:
        now = self.scheduler.current_cycle
        if now < self._busy_until and now > self._issue_cycle:
            raise RuntimeError(f"{self.name} is already busy")

    def _transfer_latency(self, n_words: int, per_word_latency: int) -> int:
        """Cycle cost of a transfer with burst pipelining.

        The first word of each burst pays the full access latency, the rest
        stream at one word per cycle.
        """
        if n_words == 0:
            return 0
        n_bursts = (n_words + self.words_per_burst - 1) // self.words_per_burst
        return n_bursts * per_word_latency + (n_words - n_bursts)

    def copy_to_scratchpad(
        self,
        source: Source,
        destination: MainMemory,
        destination_offset: int,
        n_words: int,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> int:
        """Copy ``n_words`` from bus address space into a scratchpad.

        ``source`` is either a plain word-aligned bus address (contiguous
        transfer) or a :class:`DMADescriptor`/:class:`GatherDescriptor`,
        whose word count must match ``n_words``.  Returns the modelled
        transfer latency in cycles.  The data is moved immediately
        (functional view); the completion callback fires after the latency
        has elapsed (timing view).
        """
        self._check_idle()
        if isinstance(source, (DMADescriptor, GatherDescriptor)) and source.n_words != n_words:
            raise ValueError(
                f"descriptor moves {source.n_words} words, transfer asked for {n_words}"
            )
        per_word_latency = 0
        self.bus.begin_stream(self.name)
        try:
            if n_words:
                if isinstance(source, DMADescriptor):
                    values, per_word_latency = self.bus.read_strided(
                        source.base,
                        source.block_words,
                        source.n_blocks,
                        source.stride_words,
                        initiator=self.name,
                    )
                elif isinstance(source, GatherDescriptor):
                    values, per_word_latency = self.bus.read_gather(
                        source.addresses, source.block_words, initiator=self.name
                    )
                else:
                    values, per_word_latency = self.bus.read_block(
                        source, n_words, initiator=self.name
                    )
                destination.write_block(destination_offset, values)
        except Exception:
            # a faulted transfer must not leave a phantom stream taxing
            # every later access with arbitration cycles
            self.bus.end_stream(self.name)
            raise
        return self._finish(n_words, per_word_latency, on_complete)

    def copy_from_scratchpad(
        self,
        source: MainMemory,
        source_offset: int,
        destination_address: int,
        n_words: int,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> int:
        """Copy ``n_words`` from a scratchpad into bus address space."""
        self._check_idle()
        per_word_latency = 0
        self.bus.begin_stream(self.name)
        try:
            if n_words:
                values = source.read_block(source_offset, n_words)
                per_word_latency = self.bus.write_block(
                    destination_address, values, initiator=self.name
                )
        except Exception:
            self.bus.end_stream(self.name)
            raise
        return self._finish(n_words, per_word_latency, on_complete)

    def _finish(self, n_words: int, per_word_latency: int, on_complete) -> int:
        latency = self._transfer_latency(n_words, max(per_word_latency, 1))
        self.stats.transfers += 1
        self.stats.words_moved += n_words
        self.stats.busy_cycles += latency
        now = self.scheduler.current_cycle
        window_start = max(now, self._busy_until)
        self._busy_until = window_start + latency
        self._issue_cycle = now
        if self.bus.arbitration_penalty > 0:
            # hold the bus grant for the modelled transfer window so other
            # streams see contention; with arbitration off, begin_stream was
            # a no-op and no release event perturbs the event queue
            self.scheduler.schedule(
                self._busy_until - now,
                lambda: self.bus.end_stream(self.name),
                label=f"{self.name}-bus-release",
            )
        if on_complete is not None:
            self.scheduler.schedule(
                self._busy_until - now, on_complete, label=f"{self.name}-done"
            )
        return latency

    def energy_j(self) -> float:
        """DMA engine energy consumed so far."""
        return self.stats.words_moved * self.energy_per_word
