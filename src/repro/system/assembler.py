"""A small two-pass assembler for the RV32IM subset.

Accepts the usual assembly syntax with labels, comments (``#`` or ``;``),
decimal/hex immediates, ``offset(base)`` memory operands and a handful of
pseudo-instructions (``li``, ``mv``, ``j``, ``nop``, ``halt``, ``ret``,
``call``).  The output is a list of :class:`repro.system.isa.Instruction`
objects ready for the CPU model, plus the label table for debugging.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.system.isa import (
    BRANCH_OPS,
    Instruction,
    IllegalInstructionError,
    parse_register,
)

#: Instruction size used for label arithmetic (matches RV32 word size).
INSTRUCTION_BYTES = 4

_MEM_OPERAND = re.compile(r"^(-?\w+)\((\w+)\)$")


class AssemblyError(Exception):
    """Raised for syntax errors, unknown labels or malformed operands."""


@dataclass(frozen=True)
class Program:
    """An assembled program.

    Attributes:
        instructions: the decoded instruction list (index = pc / 4).
        labels: label name -> instruction byte address.
        source: the original assembly text.
    """

    instructions: Tuple[Instruction, ...]
    labels: Dict[str, int]
    source: str

    def __len__(self) -> int:
        return len(self.instructions)


def _strip(line: str) -> str:
    for marker in ("#", ";", "//"):
        if marker in line:
            line = line.split(marker, 1)[0]
    return line.strip()


def _parse_immediate(token: str, labels: Dict[str, int], pc: int) -> int:
    token = token.strip().rstrip(",")
    if token in labels:
        return labels[token] - pc
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblyError(f"bad immediate or unknown label {token!r}") from exc


def _parse_absolute(token: str, labels: Dict[str, int]) -> int:
    token = token.strip().rstrip(",")
    if token in labels:
        return labels[token]
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblyError(f"bad immediate or unknown label {token!r}") from exc


def _expand_pseudo(op: str, operands: List[str]) -> List[Tuple[str, List[str]]]:
    """Expand pseudo-instructions into base instructions."""
    if op == "nop":
        return [("addi", ["x0", "x0", "0"])]
    if op == "mv":
        return [("addi", [operands[0], operands[1], "0"])]
    if op == "li":
        # The CPU model holds immediates as Python ints, so a single addi
        # from x0 covers the full 32-bit range without lui/addi splitting.
        return [("addi", [operands[0], "x0", operands[1]])]
    if op == "j":
        return [("jal", ["x0", operands[0]])]
    if op == "call":
        return [("jal", ["ra", operands[0]])]
    if op == "ret":
        return [("jalr", ["x0", "ra", "0"])]
    if op == "halt":
        return [("ebreak", [])]
    if op == "beqz":
        return [("beq", [operands[0], "x0", operands[1]])]
    if op == "bnez":
        return [("bne", [operands[0], "x0", operands[1]])]
    return [(op, operands)]


def assemble(source: str) -> Program:
    """Assemble a program text into a :class:`Program`."""
    # ---- pass 1: collect labels -------------------------------------------
    lines = source.splitlines()
    labels: Dict[str, int] = {}
    pending: List[Tuple[str, List[str], int]] = []  # (op, operands, line_no)
    address = 0
    for line_no, raw in enumerate(lines, start=1):
        line = _strip(raw)
        if not line:
            continue
        while ":" in line:
            label, line = line.split(":", 1)
            label = label.strip()
            if not label.isidentifier():
                raise AssemblyError(f"line {line_no}: bad label {label!r}")
            if label in labels:
                raise AssemblyError(f"line {line_no}: duplicate label {label!r}")
            labels[label] = address
            line = line.strip()
        if not line:
            continue
        parts = line.replace(",", " ").split()
        op = parts[0].lower()
        operands = parts[1:]
        for expanded_op, expanded_operands in _expand_pseudo(op, operands):
            pending.append((expanded_op, expanded_operands, line_no))
            address += INSTRUCTION_BYTES

    # ---- pass 2: encode ----------------------------------------------------
    instructions: List[Instruction] = []
    for index, (op, operands, line_no) in enumerate(pending):
        pc = index * INSTRUCTION_BYTES
        try:
            instructions.append(_encode(op, operands, labels, pc))
        except (AssemblyError, IllegalInstructionError) as exc:
            raise AssemblyError(f"line {line_no}: {exc}") from exc
    return Program(instructions=tuple(instructions), labels=labels, source=source)


def _encode(op: str, operands: List[str], labels: Dict[str, int], pc: int) -> Instruction:
    if op in ("ecall", "ebreak"):
        return Instruction(op=op)
    if op in ("lui", "auipc"):
        _require(operands, 2, op)
        return Instruction(op=op, rd=parse_register(operands[0]),
                           imm=_parse_absolute(operands[1], labels))
    if op in ("jal",):
        _require(operands, 2, op)
        return Instruction(op=op, rd=parse_register(operands[0]),
                           imm=_parse_immediate(operands[1], labels, pc))
    if op in ("jalr",):
        _require(operands, 3, op)
        return Instruction(op=op, rd=parse_register(operands[0]),
                           rs1=parse_register(operands[1]),
                           imm=_parse_absolute(operands[2], labels))
    if op in BRANCH_OPS:
        _require(operands, 3, op)
        return Instruction(op=op, rs1=parse_register(operands[0]),
                           rs2=parse_register(operands[1]),
                           imm=_parse_immediate(operands[2], labels, pc))
    if op in ("lw",):
        _require(operands, 2, op)
        offset, base = _parse_memory_operand(operands[1], labels)
        return Instruction(op=op, rd=parse_register(operands[0]), rs1=base, imm=offset)
    if op in ("sw",):
        _require(operands, 2, op)
        offset, base = _parse_memory_operand(operands[1], labels)
        return Instruction(op=op, rs2=parse_register(operands[0]), rs1=base, imm=offset)
    if op in ("addi", "andi", "ori", "xori", "slti", "sltiu", "slli", "srli", "srai"):
        _require(operands, 3, op)
        return Instruction(op=op, rd=parse_register(operands[0]),
                           rs1=parse_register(operands[1]),
                           imm=_parse_absolute(operands[2], labels))
    if op in ("add", "sub", "and", "or", "xor", "slt", "sltu", "sll", "srl", "sra",
              "mul", "mulh", "div", "rem"):
        _require(operands, 3, op)
        return Instruction(op=op, rd=parse_register(operands[0]),
                           rs1=parse_register(operands[1]),
                           rs2=parse_register(operands[2]))
    raise AssemblyError(f"unknown instruction {op!r}")


def _require(operands: List[str], count: int, op: str) -> None:
    if len(operands) != count:
        raise AssemblyError(f"{op} expects {count} operands, got {len(operands)}")


def _parse_memory_operand(token: str, labels: Dict[str, int]) -> Tuple[int, int]:
    match = _MEM_OPERAND.match(token.strip())
    if not match:
        raise AssemblyError(f"bad memory operand {token!r}; expected offset(base)")
    offset_token, base_token = match.groups()
    offset = _parse_absolute(offset_token, labels)
    return offset, parse_register(base_token)
