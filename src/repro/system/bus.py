"""System interconnect: address decoding between CPU, memories and devices.

A single shared bus routes word accesses from initiators (CPU, DMA) to
targets (main memory, scratchpads, MMR blocks) based on an address map.
Each target reports its own access latency; the bus adds a fixed traversal
latency, which is how the data-movement cost the paper worries about shows
up in end-to-end cycle counts.  An opt-in round-robin arbitration model
(``arbitration_penalty``) additionally charges every access for concurrent
DMA streams holding the bus; it defaults to off, keeping the historical
contention-free accounting bitwise identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.system.memory import MainMemory, MemoryAccessError, WORD_BYTES
from repro.system.mmr import MemoryMappedRegisters


@dataclass
class BusMapping:
    """One entry of the address map."""

    base: int
    size: int
    target: object
    name: str

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end


class SystemBus:
    """Shared word-addressed interconnect with a flat address map.

    Attributes:
        traversal_latency: cycles added to every access crossing the bus.
        energy_per_transfer: interconnect energy per word moved [J].
        arbitration_penalty: opt-in round-robin arbitration cost — extra
            cycles charged per access for every *other* DMA stream holding
            the bus at the same simulated time (0 = historical contention-
            free accounting, bitwise identical to the pre-arbitration model).
        contention_cycles: arbitration cycles accumulated per *bus access*
            (a bulk block transfer on the fast path is one access; the
            word-loop fallback is one access per word).  This is a
            contention indicator, not the end-to-end charged cost: DMA
            burst pipelining multiplies the per-word latency — and its
            arbitration component — by the burst count downstream.
        contention_events: number of accesses that paid an arbitration delay.
    """

    def __init__(
        self,
        traversal_latency: int = 2,
        energy_per_transfer: float = 1e-12,
        arbitration_penalty: int = 0,
    ):
        if arbitration_penalty < 0:
            raise ValueError("arbitration_penalty must be >= 0")
        self.traversal_latency = int(traversal_latency)
        self.energy_per_transfer = float(energy_per_transfer)
        self.arbitration_penalty = int(arbitration_penalty)
        self._map: List[BusMapping] = []
        self.transfers = 0
        self._active_streams: Dict[str, int] = {}
        self.contention_cycles = 0
        self.contention_events = 0

    def attach(self, base: int, size: int, target: object, name: str) -> BusMapping:
        """Attach a target device at ``[base, base + size)``.

        Overlapping ranges are rejected — a silent shadowing bug in the
        address map would corrupt every experiment built on top of it.
        """
        if base < 0 or size <= 0:
            raise ValueError("invalid mapping range")
        new = BusMapping(base=base, size=size, target=target, name=name)
        for existing in self._map:
            if new.base < existing.end and existing.base < new.end:
                raise ValueError(
                    f"mapping {name!r} overlaps existing mapping {existing.name!r}"
                )
        self._map.append(new)
        self._map.sort(key=lambda m: m.base)
        return new

    def find(self, address: int) -> BusMapping:
        """Return the mapping that contains ``address``."""
        for mapping in self._map:
            if mapping.contains(address):
                return mapping
        raise MemoryAccessError(f"bus decode error: no target at {address:#x}")

    def mappings(self) -> List[BusMapping]:
        """The current address map (sorted by base address)."""
        return list(self._map)

    # ------------------------------------------------------------------ #
    # arbitration (opt-in)
    # ------------------------------------------------------------------ #
    def begin_stream(self, initiator: str) -> None:
        """Mark a DMA stream as holding the bus (until :meth:`end_stream`).

        Streams are only tracked when arbitration is enabled, so the default
        configuration stays free of bookkeeping side effects.  Windows are
        counted per initiator, so back-to-back transfers of one engine whose
        windows overlap still release correctly.
        """
        if self.arbitration_penalty > 0:
            self._active_streams[initiator] = self._active_streams.get(initiator, 0) + 1

    def end_stream(self, initiator: str) -> None:
        """Release a DMA stream's claim on the bus."""
        count = self._active_streams.get(initiator, 0)
        if count <= 1:
            self._active_streams.pop(initiator, None)
        else:
            self._active_streams[initiator] = count - 1

    @property
    def active_streams(self) -> int:
        """Number of distinct DMA initiators currently holding the bus."""
        return len(self._active_streams)

    def _arbitration_delay(self, initiator: Optional[str] = None) -> int:
        """Round-robin arbitration cost of one access for ``initiator``.

        Each concurrent *other* stream costs ``arbitration_penalty`` cycles:
        a fair round-robin arbiter makes every requester wait out one slot
        per competitor before its grant comes around.
        """
        if self.arbitration_penalty <= 0 or not self._active_streams:
            return 0
        competitors = len(self._active_streams)
        if initiator in self._active_streams:
            competitors -= 1
        if competitors <= 0:
            return 0
        delay = competitors * self.arbitration_penalty
        self.contention_cycles += delay
        self.contention_events += 1
        return delay

    # ------------------------------------------------------------------ #
    # access routing
    # ------------------------------------------------------------------ #
    def read_word(self, address: int, initiator: Optional[str] = None) -> Tuple[int, int]:
        """Read a word; returns ``(value, latency_cycles)``."""
        mapping = self.find(address)
        offset = address - mapping.base
        self.transfers += 1
        target = mapping.target
        delay = self._arbitration_delay(initiator)
        if isinstance(target, MemoryMappedRegisters):
            return target.read_word(offset), self.traversal_latency + 1 + delay
        if isinstance(target, MainMemory):
            return (
                target.read_word(offset),
                self.traversal_latency + target.read_latency + delay,
            )
        raise MemoryAccessError(f"target {mapping.name!r} is not readable")

    def write_word(self, address: int, value: int, initiator: Optional[str] = None) -> int:
        """Write a word; returns the access latency in cycles."""
        mapping = self.find(address)
        offset = address - mapping.base
        self.transfers += 1
        target = mapping.target
        delay = self._arbitration_delay(initiator)
        if isinstance(target, MemoryMappedRegisters):
            target.write_word(offset, value)
            return self.traversal_latency + 1 + delay
        if isinstance(target, MainMemory):
            target.write_word(offset, value)
            return self.traversal_latency + target.write_latency + delay
        raise MemoryAccessError(f"target {mapping.name!r} is not writable")

    # ------------------------------------------------------------------ #
    # bulk routing (DMA fast path)
    # ------------------------------------------------------------------ #
    def read_block(self, address: int, n_words: int, initiator: Optional[str] = None):
        """Bulk read of ``n_words`` words; returns ``(values, per_word_latency)``.

        The accounting equivalent of ``n_words`` :meth:`read_word` calls
        (same transfer count, same per-word latency) resolved through a
        single address decode, so DMA streams avoid the per-word Python
        loop.  Blocks that leave the mapping or target register blocks fall
        back to the word-by-word path.  With arbitration enabled, the
        per-word latency carries the round-robin delay against every other
        active stream.
        """
        if n_words == 0:
            return np.zeros(0, dtype=np.uint32), 0
        mapping = self.find(address)
        target = mapping.target
        if isinstance(target, MainMemory) and address + n_words * WORD_BYTES <= mapping.end:
            self.transfers += n_words
            values = target.read_block(address - mapping.base, n_words)
            delay = self._arbitration_delay(initiator)
            return values, self.traversal_latency + target.read_latency + delay
        values = np.zeros(n_words, dtype=np.uint32)
        latency = 0
        for index in range(n_words):
            values[index], word_latency = self.read_word(
                address + index * WORD_BYTES, initiator=initiator
            )
            latency = max(latency, word_latency)
        return values, latency

    def read_strided(
        self,
        address: int,
        block_words: int,
        n_blocks: int,
        stride_words: int,
        initiator: Optional[str] = None,
    ):
        """Bulk read of a strided sequence of blocks; returns
        ``(values, per_word_latency)``.

        Accounting-equivalent to ``n_blocks`` :meth:`read_block` calls of
        ``block_words`` words each, resolved through a single address decode
        when the whole span stays inside one main-memory mapping.  This is
        how a DMA descriptor with ``stride_words > block_words`` streams a
        matrix column slice in place, without host staging copies.
        """
        total = n_blocks * block_words
        if total == 0:
            return np.zeros(0, dtype=np.uint32), 0
        if n_blocks == 1 or stride_words in (0, block_words):
            return self.read_block(address, total, initiator=initiator)
        mapping = self.find(address)
        target = mapping.target
        span_end = address + ((n_blocks - 1) * stride_words + block_words) * WORD_BYTES
        if isinstance(target, MainMemory) and stride_words >= 0 and span_end <= mapping.end:
            self.transfers += total
            values = target.read_strided(
                address - mapping.base, block_words, n_blocks, stride_words
            )
            delay = self._arbitration_delay(initiator)
            return values, self.traversal_latency + target.read_latency + delay
        pieces = []
        latency = 0
        for index in range(n_blocks):
            values, block_latency = self.read_block(
                address + index * stride_words * WORD_BYTES,
                block_words,
                initiator=initiator,
            )
            pieces.append(values)
            latency = max(latency, block_latency)
        return np.concatenate(pieces), latency

    def read_gather(self, addresses, block_words: int, initiator: Optional[str] = None):
        """Bulk read of one block per (arbitrary) address; returns
        ``(values, per_word_latency)`` — the irregular-access sibling of
        :meth:`read_strided`."""
        addresses = [int(address) for address in addresses]
        if not addresses or block_words == 0:
            return np.zeros(0, dtype=np.uint32), 0
        mapping = self.find(min(addresses))
        target = mapping.target
        if isinstance(target, MainMemory) and all(
            mapping.base <= address and address + block_words * WORD_BYTES <= mapping.end
            for address in addresses
        ):
            self.transfers += len(addresses) * block_words
            values = target.read_gather(
                [address - mapping.base for address in addresses], block_words
            )
            delay = self._arbitration_delay(initiator)
            return values, self.traversal_latency + target.read_latency + delay
        pieces = []
        latency = 0
        for address in addresses:
            values, block_latency = self.read_block(
                address, block_words, initiator=initiator
            )
            pieces.append(values)
            latency = max(latency, block_latency)
        return np.concatenate(pieces), latency

    def write_block(self, address: int, values, initiator: Optional[str] = None) -> int:
        """Bulk write of consecutive words; returns the per-word latency."""
        values = np.asarray(values)
        if values.size == 0:
            return 0
        mapping = self.find(address)
        target = mapping.target
        if isinstance(target, MainMemory) and address + values.size * WORD_BYTES <= mapping.end:
            self.transfers += values.size
            target.write_block(address - mapping.base, values)
            delay = self._arbitration_delay(initiator)
            return self.traversal_latency + target.write_latency + delay
        latency = 0
        for index, value in enumerate(values):
            word_latency = self.write_word(
                address + index * WORD_BYTES, int(value), initiator=initiator
            )
            latency = max(latency, word_latency)
        return latency

    def energy_j(self) -> float:
        """Interconnect energy consumed so far."""
        return self.transfers * self.energy_per_transfer
