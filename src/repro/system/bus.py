"""System interconnect: address decoding between CPU, memories and devices.

A single shared bus routes word accesses from initiators (CPU, DMA) to
targets (main memory, scratchpads, MMR blocks) based on an address map.
Each target reports its own access latency; the bus adds a fixed traversal
latency, which is how the data-movement cost the paper worries about shows
up in end-to-end cycle counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.system.memory import MainMemory, MemoryAccessError, WORD_BYTES
from repro.system.mmr import MemoryMappedRegisters


@dataclass
class BusMapping:
    """One entry of the address map."""

    base: int
    size: int
    target: object
    name: str

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end


class SystemBus:
    """Shared word-addressed interconnect with a flat address map.

    Attributes:
        traversal_latency: cycles added to every access crossing the bus.
        energy_per_transfer: interconnect energy per word moved [J].
    """

    def __init__(self, traversal_latency: int = 2, energy_per_transfer: float = 1e-12):
        self.traversal_latency = int(traversal_latency)
        self.energy_per_transfer = float(energy_per_transfer)
        self._map: List[BusMapping] = []
        self.transfers = 0

    def attach(self, base: int, size: int, target: object, name: str) -> BusMapping:
        """Attach a target device at ``[base, base + size)``.

        Overlapping ranges are rejected — a silent shadowing bug in the
        address map would corrupt every experiment built on top of it.
        """
        if base < 0 or size <= 0:
            raise ValueError("invalid mapping range")
        new = BusMapping(base=base, size=size, target=target, name=name)
        for existing in self._map:
            if new.base < existing.end and existing.base < new.end:
                raise ValueError(
                    f"mapping {name!r} overlaps existing mapping {existing.name!r}"
                )
        self._map.append(new)
        self._map.sort(key=lambda m: m.base)
        return new

    def find(self, address: int) -> BusMapping:
        """Return the mapping that contains ``address``."""
        for mapping in self._map:
            if mapping.contains(address):
                return mapping
        raise MemoryAccessError(f"bus decode error: no target at {address:#x}")

    def mappings(self) -> List[BusMapping]:
        """The current address map (sorted by base address)."""
        return list(self._map)

    # ------------------------------------------------------------------ #
    # access routing
    # ------------------------------------------------------------------ #
    def read_word(self, address: int) -> Tuple[int, int]:
        """Read a word; returns ``(value, latency_cycles)``."""
        mapping = self.find(address)
        offset = address - mapping.base
        self.transfers += 1
        target = mapping.target
        if isinstance(target, MemoryMappedRegisters):
            return target.read_word(offset), self.traversal_latency + 1
        if isinstance(target, MainMemory):
            return target.read_word(offset), self.traversal_latency + target.read_latency
        raise MemoryAccessError(f"target {mapping.name!r} is not readable")

    def write_word(self, address: int, value: int) -> int:
        """Write a word; returns the access latency in cycles."""
        mapping = self.find(address)
        offset = address - mapping.base
        self.transfers += 1
        target = mapping.target
        if isinstance(target, MemoryMappedRegisters):
            target.write_word(offset, value)
            return self.traversal_latency + 1
        if isinstance(target, MainMemory):
            target.write_word(offset, value)
            return self.traversal_latency + target.write_latency
        raise MemoryAccessError(f"target {mapping.name!r} is not writable")

    # ------------------------------------------------------------------ #
    # bulk routing (DMA fast path)
    # ------------------------------------------------------------------ #
    def read_block(self, address: int, n_words: int):
        """Bulk read of ``n_words`` words; returns ``(values, per_word_latency)``.

        The accounting equivalent of ``n_words`` :meth:`read_word` calls
        (same transfer count, same per-word latency) resolved through a
        single address decode, so DMA streams avoid the per-word Python
        loop.  Blocks that leave the mapping or target register blocks fall
        back to the word-by-word path.
        """
        if n_words == 0:
            return np.zeros(0, dtype=np.uint32), 0
        mapping = self.find(address)
        target = mapping.target
        if isinstance(target, MainMemory) and address + n_words * WORD_BYTES <= mapping.end:
            self.transfers += n_words
            values = target.read_block(address - mapping.base, n_words)
            return values, self.traversal_latency + target.read_latency
        values = np.zeros(n_words, dtype=np.uint32)
        latency = 0
        for index in range(n_words):
            values[index], word_latency = self.read_word(address + index * WORD_BYTES)
            latency = max(latency, word_latency)
        return values, latency

    def write_block(self, address: int, values) -> int:
        """Bulk write of consecutive words; returns the per-word latency."""
        values = np.asarray(values)
        if values.size == 0:
            return 0
        mapping = self.find(address)
        target = mapping.target
        if isinstance(target, MainMemory) and address + values.size * WORD_BYTES <= mapping.end:
            self.transfers += values.size
            target.write_block(address - mapping.base, values)
            return self.traversal_latency + target.write_latency
        latency = 0
        for index, value in enumerate(values):
            word_latency = self.write_word(address + index * WORD_BYTES, int(value))
            latency = max(latency, word_latency)
        return latency

    def energy_j(self) -> float:
        """Interconnect energy consumed so far."""
        return self.transfers * self.energy_per_transfer
