"""Domain-specific accelerator (DSA) devices for the full-system simulator.

Each accelerator follows the gem5-MARVEL structure: a Compute Unit (the
datapath model) plus a Communications Interface (MMRs, scratchpad
memories, a DMA engine and an interrupt line).  The host sees only the MMR
block; it configures buffer addresses and matrix dimensions, sets the START
bit, and waits for DONE (polling or interrupt).

Two compute units are provided:

* :class:`MACArrayAccelerator` — a digital MAC-array GeMM engine whose
  timing comes from scheduling the corresponding dataflow graph
  (``repro.system.dfg``).  This is the electronic DSA baseline.
* :class:`PhotonicMVMAccelerator` — the photonic GeMM core: timing and
  energy come from :class:`repro.core.energy.PhotonicCoreEnergyModel`, and
  the functional result can optionally be produced by the full analog
  model (:class:`repro.core.mvm.PhotonicMVM`) so analog error propagates
  into the application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.energy import PhotonicCoreEnergyModel
from repro.core.mvm import PhotonicMVM
from repro.core.quantization import QuantizationSpec
from repro.system.bus import SystemBus
from repro.system.dfg import build_gemm_dfg
from repro.system.dma import DMAEngine
from repro.system.event import EventScheduler
from repro.system.interrupt import InterruptController
from repro.system.memory import Scratchpad, WORD_BYTES, to_signed, to_unsigned
from repro.system.mmr import MemoryMappedRegisters

#: MMR data-register assignments shared by both accelerator types.
REG_WEIGHTS_ADDR = 0
REG_INPUT_ADDR = 1
REG_OUTPUT_ADDR = 2
REG_ROWS = 3        # M: output rows
REG_INNER = 4       # K: inner (shared) dimension
REG_COLS = 5        # N: input-matrix columns
REG_SCALE_SHIFT = 6  # fixed-point scaling shift applied to results


@dataclass
class AcceleratorStats:
    """Execution statistics of one accelerator device."""

    invocations: int = 0
    compute_cycles: int = 0
    dma_cycles: int = 0
    macs: int = 0
    energy_j: float = 0.0

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.dma_cycles


class BaseMatrixAccelerator:
    """Shared Communications Interface logic of the matrix accelerators."""

    #: human-readable device type, overridden by subclasses
    device_type = "base"

    def __init__(
        self,
        scheduler: EventScheduler,
        bus: SystemBus,
        interrupt_controller: Optional[InterruptController] = None,
        scratchpad_bytes: int = 64 * 1024,
        clock_hz: float = 1e9,
        name: str = "dsa0",
    ):
        self.scheduler = scheduler
        self.bus = bus
        self.clock_hz = float(clock_hz)
        self.name = name
        self.mmr = MemoryMappedRegisters(n_data_registers=16, on_start=self._on_start)
        self.input_spm = Scratchpad(scratchpad_bytes)
        self.weight_spm = Scratchpad(scratchpad_bytes)
        self.output_spm = Scratchpad(scratchpad_bytes)
        self.dma = DMAEngine(scheduler, bus, name=f"{name}-dma")
        self.stats = AcceleratorStats()
        self.interrupt_controller = interrupt_controller
        self.irq_line = None
        if interrupt_controller is not None:
            self.irq_line = interrupt_controller.allocate_line(name)
        self.busy = False
        self._weights = None
        self._inputs = None

    # ------------------------------------------------------------------ #
    # host protocol
    # ------------------------------------------------------------------ #
    def _read_config(self) -> dict:
        return {
            "weights_addr": self.mmr.data_register(REG_WEIGHTS_ADDR),
            "input_addr": self.mmr.data_register(REG_INPUT_ADDR),
            "output_addr": self.mmr.data_register(REG_OUTPUT_ADDR),
            "rows": self.mmr.data_register(REG_ROWS),
            "inner": self.mmr.data_register(REG_INNER),
            "cols": self.mmr.data_register(REG_COLS),
            "scale_shift": self.mmr.data_register(REG_SCALE_SHIFT),
        }

    def _on_start(self) -> None:
        """Host set the START bit: run DMA-in, compute, DMA-out, signal DONE."""
        if self.busy:
            return
        self.busy = True
        config = self._read_config()
        rows, inner, cols = config["rows"], config["inner"], config["cols"]
        if min(rows, inner, cols) < 1:
            self.mmr.mark_done(error=True)
            self.busy = False
            return

        # --- DMA weights and inputs into the scratchpads (functional now) ----
        dma_in = self.dma.copy_to_scratchpad(
            config["weights_addr"], self.weight_spm, 0, rows * inner
        )
        dma_in += self.dma.copy_to_scratchpad(
            config["input_addr"], self.input_spm, 0, inner * cols
        )

        weights = self._read_matrix(self.weight_spm, rows, inner)
        inputs = self._read_matrix(self.input_spm, inner, cols)

        compute_cycles, energy, outputs = self._compute(weights, inputs, config)

        scaled = np.asarray(np.round(outputs), dtype=np.int64)
        self._write_matrix(self.output_spm, scaled)
        dma_out = self.dma.copy_from_scratchpad(
            self.output_spm, 0, config["output_addr"], rows * cols
        )

        spm_energy = (
            self.input_spm.energy_j() + self.weight_spm.energy_j() + self.output_spm.energy_j()
        )
        self.stats.invocations += 1
        self.stats.compute_cycles += compute_cycles
        self.stats.dma_cycles += dma_in + dma_out
        self.stats.macs += rows * inner * cols
        self.stats.energy_j += energy + self.dma.energy_j() + spm_energy

        total_latency = dma_in + compute_cycles + dma_out
        self.scheduler.schedule(total_latency, self._complete, label=f"{self.name}-done")

    def _complete(self) -> None:
        self.busy = False
        self.mmr.mark_done()
        if self.irq_line is not None and self.mmr.irq_enabled:
            self.interrupt_controller.raise_interrupt(self.irq_line.index)

    # ------------------------------------------------------------------ #
    # scratchpad (de)serialisation: row-major signed 32-bit words
    # ------------------------------------------------------------------ #
    @staticmethod
    def _read_matrix(spm: Scratchpad, n_rows: int, n_cols: int) -> np.ndarray:
        values = [
            to_signed(spm.read_word(index * WORD_BYTES)) for index in range(n_rows * n_cols)
        ]
        return np.asarray(values, dtype=np.int64).reshape(n_rows, n_cols)

    @staticmethod
    def _write_matrix(spm: Scratchpad, matrix: np.ndarray) -> None:
        flat = np.asarray(matrix, dtype=np.int64).reshape(-1)
        for index, value in enumerate(flat):
            spm.write_word(index * WORD_BYTES, to_unsigned(int(value)))

    # ------------------------------------------------------------------ #
    # compute unit (subclass responsibility)
    # ------------------------------------------------------------------ #
    def _compute(self, weights: np.ndarray, inputs: np.ndarray, config: dict):
        """Run the datapath; returns (cycles, energy_j, output matrix)."""
        raise NotImplementedError

    def area_mm2(self) -> float:
        """Die area of the accelerator [mm^2]."""
        raise NotImplementedError


class MACArrayAccelerator(BaseMatrixAccelerator):
    """Digital MAC-array GeMM accelerator (electronic DSA baseline).

    Attributes:
        n_mac_units: parallel multiply-accumulate units.
        mac_energy: energy per MAC [J] (digital 32-bit fixed point).
    """

    device_type = "mac-array"

    def __init__(self, *args, n_mac_units: int = 16, mac_energy: float = 1e-12, **kwargs):
        super().__init__(*args, **kwargs)
        if n_mac_units < 1:
            raise ValueError("n_mac_units must be >= 1")
        self.n_mac_units = int(n_mac_units)
        self.mac_energy = float(mac_energy)

    def _compute(self, weights: np.ndarray, inputs: np.ndarray, config: dict):
        rows, inner = weights.shape
        cols = inputs.shape[1]
        outputs = (weights @ inputs) >> config["scale_shift"] if config["scale_shift"] else weights @ inputs
        # Timing: schedule the GeMM dataflow graph on the MAC array.  For
        # large products the graph is sampled (one representative output
        # block) and scaled, to keep simulation cost bounded.
        sample_rows = min(rows, 4)
        sample_cols = min(cols, 4)
        dfg = build_gemm_dfg(sample_rows, inner, sample_cols)
        schedule = dfg.schedule(resources={"mac": self.n_mac_units})
        scale = (rows * cols) / (sample_rows * sample_cols)
        cycles = int(np.ceil(schedule.total_cycles * scale))
        energy = rows * inner * cols * self.mac_energy
        return cycles, energy, outputs

    def area_mm2(self) -> float:
        """MAC array + SPM area (digital 16 nm-ish figures)."""
        mac_area = self.n_mac_units * 0.002
        spm_area = 3 * (self.input_spm.size_bytes / 1024) * 0.001
        return mac_area + spm_area


class PhotonicMVMAccelerator(BaseMatrixAccelerator):
    """Photonic in-memory GeMM accelerator (the paper's DSA).

    Attributes:
        energy_model: photonic core speed/energy/footprint model (its MVM
            dimensions must cover the offloaded tiles).
        analog_model: optional :class:`PhotonicMVM` used for the functional
            result so analog noise reaches the application; when ``None``
            the result is exact and only timing/energy are photonic.
        reprogram_every_call: if True the weight-programming energy is paid
            on every offload (weights change per call); if False weights
            are considered resident (in-memory computing) after the first
            call.
    """

    device_type = "photonic"

    def __init__(
        self,
        *args,
        energy_model: Optional[PhotonicCoreEnergyModel] = None,
        analog_model: Optional[PhotonicMVM] = None,
        reprogram_every_call: bool = False,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.energy_model = energy_model
        self.analog_model = analog_model
        self.reprogram_every_call = reprogram_every_call
        self._programmed = False

    def _default_energy_model(self, rows: int, inner: int) -> PhotonicCoreEnergyModel:
        component_count = {
            "mzis": rows * (rows - 1) // 2 + inner * (inner - 1) // 2,
            "phase_shifters": rows * (rows - 1) + inner * (inner - 1) + rows + inner,
            "couplers": rows * (rows - 1) + inner * (inner - 1),
            "modes": max(rows, inner),
            "depth": rows + inner,
        }
        return PhotonicCoreEnergyModel(
            n_inputs=inner, n_outputs=rows, component_count=component_count
        )

    def _compute(self, weights: np.ndarray, inputs: np.ndarray, config: dict):
        rows, inner = weights.shape
        cols = inputs.shape[1]
        model = self.energy_model or self._default_energy_model(rows, inner)

        if self.analog_model is not None:
            analog = self.analog_model.apply_many(inputs.astype(float))
            outputs = np.asarray(np.real(analog), dtype=np.int64)
        else:
            outputs = weights @ inputs
        if config["scale_shift"]:
            outputs = outputs >> config["scale_shift"]

        # One optical pass per input column, pipelined at the modulator rate.
        latency_s = model.mvm_latency_s + (cols - 1) / model.mvm_rate_hz
        cycles = max(1, int(np.ceil(latency_s * self.clock_hz)))
        include_programming = self.reprogram_every_call or not self._programmed
        energy = model.inference_energy_j(cols, include_programming=include_programming)
        self._programmed = True
        return cycles, energy, outputs

    def area_mm2(self) -> float:
        """Photonic core + SPM area."""
        spm_area = 3 * (self.input_spm.size_bytes / 1024) * 0.001
        if self.energy_model is not None:
            return self.energy_model.area_mm2() + spm_area
        return 1.0 + spm_area
