"""Domain-specific accelerator (DSA) devices for the full-system simulator.

Each accelerator follows the gem5-MARVEL structure: a Compute Unit (the
datapath model) plus a Communications Interface (MMRs, scratchpad
memories, DMA engines and an interrupt line).  The host sees only the MMR
block; it configures buffer addresses and matrix dimensions, sets the START
bit, and waits for DONE (polling or interrupt).

The Communications Interface is a pipelined, double-buffered offload
engine.  Work arrives as :class:`TileDescriptor` streams — either a single
descriptor latched from the MMR data registers on START (the classic
protocol), or many descriptors pushed with the ENQUEUE control bit and
launched together.  Three stages run concurrently on the shared event
scheduler:

``DMA-in  ──►  compute  ──►  DMA-out``

with ping-pong weight/output scratchpad buffers, so the DMA-in of tile
``t+1`` overlaps the compute/write-back of tile ``t``.  The input matrix is
input-stationary: it is loaded once per stream (descriptors with
``load_input=False`` reuse the resident operand), which is what makes the
sharded multi-tile GeMM of :meth:`repro.system.soc.PhotonicSoC.run_tiled_gemm`
cheaper than replaying the single-shot protocol per tile.

The functional datapath is a pluggable execution backend
(``repro.core.backends``): ``ideal-digital`` reproduces the exact integer
product, ``quantized-digital`` models a saturating fixed-point datapath and
``analog-photonic`` routes through :meth:`repro.core.mvm.PhotonicMVM.apply_batch`
so analog error propagates into the application.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

import numpy as np

from repro.core.backends import (
    AnalogPhotonicBackend,
    BackendSpec,
    ExecutionBackend,
    resolve_backend,
)
from repro.core.energy import PhotonicCoreEnergyModel
from repro.core.mvm import PhotonicMVM
from repro.system.bus import SystemBus
from repro.system.dfg import build_gemm_dfg
from repro.system.dma import DMADescriptor, DMAEngine
from repro.system.event import EventScheduler
from repro.system.interrupt import InterruptController
from repro.system.memory import (
    Scratchpad,
    WORD_BYTES,
    signed_to_words,
    words_to_signed,
)
from repro.system.mmr import MemoryMappedRegisters

#: MMR data-register assignments shared by both accelerator types.
REG_WEIGHTS_ADDR = 0
REG_INPUT_ADDR = 1
REG_OUTPUT_ADDR = 2
REG_ROWS = 3        # M: output rows
REG_INNER = 4       # K: inner (shared) dimension
REG_COLS = 5        # N: input-matrix columns
REG_SCALE_SHIFT = 6  # fixed-point scaling shift applied to results
REG_FLAGS = 7       # per-tile flags (see FLAG_*)
REG_TILES_DONE = 8  # device-written: completed-tile count of the stream
REG_WEIGHTS_PITCH = 9  # row pitch (words) of the weight operand; 0 = dense

#: REG_FLAGS bits.  The default (0) loads the input operand, which keeps
#: the classic single-shot START protocol unchanged.
FLAG_SKIP_INPUT_LOAD = 0x1


@dataclass(frozen=True)
class TileDescriptor:
    """One ``(rows x inner) @ (inner x cols)`` sub-problem routed to a PE.

    Attributes:
        weights_addr / input_addr / output_addr: main-memory buffers.
        rows / inner / cols: tile dimensions (M, K, N).
        scale_shift: fixed-point right-shift applied to the results.
        load_input: DMA the input operand in; ``False`` reuses the operand
            already resident in the input scratchpad (input-stationary
            streams where only the weight tile changes).
        weights_pitch: row pitch of the weight operand in main memory, in
            words.  ``0`` (or ``== inner``) means the tile is densely
            packed; a larger pitch makes the fetch a strided DMA descriptor
            that streams the ``rows x inner`` slice of a wider row-major
            matrix in place, without a host staging copy.
    """

    weights_addr: int
    input_addr: int
    output_addr: int
    rows: int
    inner: int
    cols: int
    scale_shift: int = 0
    load_input: bool = True
    weights_pitch: int = 0

    @property
    def weight_words(self) -> int:
        return self.rows * self.inner

    @property
    def input_words(self) -> int:
        return self.inner * self.cols

    @property
    def output_words(self) -> int:
        return self.rows * self.cols

    @property
    def macs(self) -> int:
        return self.rows * self.inner * self.cols

    @property
    def valid(self) -> bool:
        if self.weights_pitch and self.weights_pitch < self.inner:
            return False
        return min(self.rows, self.inner, self.cols) >= 1


@dataclass
class _TileJob:
    """In-flight pipeline state of one tile."""

    descriptor: TileDescriptor
    buffer: int
    exclusive: bool = False
    outputs: Optional[np.ndarray] = None
    dma_in_cycles: int = 0
    compute_cycles: int = 0
    dma_out_cycles: int = 0


@dataclass
class AcceleratorStats:
    """Execution statistics of one accelerator device."""

    invocations: int = 0
    tiles_completed: int = 0
    compute_cycles: int = 0
    dma_cycles: int = 0
    macs: int = 0
    energy_j: float = 0.0

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.dma_cycles


class BaseMatrixAccelerator:
    """Shared Communications Interface logic of the matrix accelerators.

    Attributes:
        backend: the :class:`~repro.core.backends.ExecutionBackend`
            producing the functional result of every tile.
        n_buffers: scratchpad buffers per operand (2 = double buffering;
            1 degenerates to the old serial DMA/compute/DMA schedule).
    """

    #: human-readable device type, overridden by subclasses
    device_type = "base"
    #: registry name of the backend used when none is given
    default_backend = "ideal-digital"

    def __init__(
        self,
        scheduler: EventScheduler,
        bus: SystemBus,
        interrupt_controller: Optional[InterruptController] = None,
        scratchpad_bytes: int = 64 * 1024,
        clock_hz: float = 1e9,
        name: str = "dsa0",
        backend: BackendSpec = None,
        n_buffers: int = 2,
    ):
        if n_buffers < 1:
            raise ValueError("n_buffers must be >= 1")
        self.scheduler = scheduler
        self.bus = bus
        self.clock_hz = float(clock_hz)
        self.name = name
        self.backend: ExecutionBackend = resolve_backend(
            backend if backend is not None else self.default_backend
        )
        self.n_buffers = int(n_buffers)
        self.mmr = MemoryMappedRegisters(
            n_data_registers=16,
            on_start=self._on_start,
            on_enqueue=self._on_enqueue,
            on_reset=self._on_reset,
        )
        self.input_spm = Scratchpad(scratchpad_bytes)
        self.weight_spm = Scratchpad(scratchpad_bytes)
        self.output_spm = Scratchpad(scratchpad_bytes)
        self.dma = DMAEngine(scheduler, bus, name=f"{name}-dma")
        self.dma_wb = DMAEngine(scheduler, bus, name=f"{name}-dma-wb")
        self.stats = AcceleratorStats()
        self.interrupt_controller = interrupt_controller
        self.irq_line = None
        if interrupt_controller is not None:
            self.irq_line = interrupt_controller.allocate_line(name)
        self.busy = False
        # pipeline state
        self._pending: Deque[TileDescriptor] = deque()
        self._ready: Deque[_TileJob] = deque()
        self._writeback: Deque[_TileJob] = deque()
        self._dma_in_job: Optional[_TileJob] = None
        self._compute_job: Optional[_TileJob] = None
        self._dma_out_job: Optional[_TileJob] = None
        self._next_buffer = 0
        self._accounted_device_energy = 0.0
        self._tiles_done_this_stream = 0
        self._stream_error = False
        self._exclusive_active = False

    # ------------------------------------------------------------------ #
    # host protocol
    # ------------------------------------------------------------------ #
    def _descriptor_from_registers(self) -> TileDescriptor:
        flags = self.mmr.data_register(REG_FLAGS)
        return TileDescriptor(
            weights_addr=self.mmr.data_register(REG_WEIGHTS_ADDR),
            input_addr=self.mmr.data_register(REG_INPUT_ADDR),
            output_addr=self.mmr.data_register(REG_OUTPUT_ADDR),
            rows=self.mmr.data_register(REG_ROWS),
            inner=self.mmr.data_register(REG_INNER),
            cols=self.mmr.data_register(REG_COLS),
            scale_shift=self.mmr.data_register(REG_SCALE_SHIFT),
            load_input=not flags & FLAG_SKIP_INPUT_LOAD,
            weights_pitch=self.mmr.data_register(REG_WEIGHTS_PITCH),
        )

    def _tile_fit(self, descriptor: TileDescriptor) -> Optional[str]:
        """How a tile fits the scratchpads.

        ``"pipelined"`` — fits one ping-pong buffer region and can be
        double-buffered; ``"exclusive"`` — too large for a region but fits
        the whole scratchpad, so it runs with the pipeline flushed (the old
        serial engine's capacity is preserved); ``None`` — does not fit.
        """
        weight_region = (self.weight_spm.size_bytes // self.n_buffers) // WORD_BYTES
        output_region = (self.output_spm.size_bytes // self.n_buffers) // WORD_BYTES
        input_words = self.input_spm.size_bytes // WORD_BYTES
        if descriptor.input_words > input_words:
            return None
        if descriptor.weight_words <= weight_region and descriptor.output_words <= output_region:
            return "pipelined"
        if (
            descriptor.weight_words <= self.weight_spm.size_bytes // WORD_BYTES
            and descriptor.output_words <= self.output_spm.size_bytes // WORD_BYTES
        ):
            return "exclusive"
        return None

    def enqueue_tile(self, descriptor: TileDescriptor) -> None:
        """Device-side enqueue (the MMR ENQUEUE bit routes here).

        Invalid or scratchpad-oversized descriptors latch a stream error:
        the stream refuses to start (or completes with STATUS_ERROR) rather
        than silently producing a partial result.
        """
        if not descriptor.valid or self._tile_fit(descriptor) is None:
            self._stream_error = True
            if not self.busy:
                self.mmr.mark_done(error=True)
            return
        self._pending.append(descriptor)

    def _on_enqueue(self) -> None:
        """Host set the ENQUEUE bit: queue the latched descriptor."""
        self.enqueue_tile(self._descriptor_from_registers())

    def _on_reset(self) -> None:
        """Host set the RESET bit: abort queued work and clear error state.

        Tiles already in flight drain normally (their completion events are
        committed); everything still waiting is dropped.
        """
        self._pending.clear()
        self._stream_error = False
        if not self.busy:
            self._next_buffer = 0

    def _on_start(self) -> None:
        """Host set the START bit: launch the pipeline over the tile queue.

        With an empty queue this latches the single descriptor currently
        held in the data registers — the classic one-shot offload protocol.
        """
        if self.busy:
            return
        if self._stream_error:
            self._pending.clear()
            self._stream_error = False
            self.mmr.mark_done(error=True)
            return
        if not self._pending:
            descriptor = self._descriptor_from_registers()
            if not descriptor.valid or self._tile_fit(descriptor) is None:
                self.mmr.mark_done(error=True)
                return
            self._pending.append(descriptor)
        self.busy = True
        self.stats.invocations += 1
        self.mmr.mark_busy()
        self.mmr.set_data_register(REG_TILES_DONE, 0)
        self._tiles_done_this_stream = 0
        self._advance()

    # ------------------------------------------------------------------ #
    # pipeline stages
    # ------------------------------------------------------------------ #
    def _advance(self) -> None:
        self._try_start_dma_in()
        self._try_start_compute()
        self._try_start_dma_out()

    def _input_buffers_in_flight(self) -> int:
        return (
            (1 if self._dma_in_job is not None else 0)
            + len(self._ready)
            + (1 if self._compute_job is not None else 0)
        )

    def _buffer_offset(self, spm: Scratchpad, buffer: int) -> int:
        region = (spm.size_bytes // self.n_buffers) // WORD_BYTES * WORD_BYTES
        return buffer * region

    def _pipeline_idle(self) -> bool:
        """No job in flight anywhere past the pending queue."""
        return not (
            self._ready
            or self._writeback
            or self._compute_job is not None
            or self._dma_out_job is not None
        )

    def _try_start_dma_in(self) -> None:
        if self._dma_in_job is not None or not self._pending:
            return
        if self._exclusive_active:
            # an oversized tile owns the whole scratchpad until it drains
            return
        descriptor = self._pending[0]
        exclusive = self._tile_fit(descriptor) == "exclusive"
        if exclusive:
            # too large for a ping-pong region: run it unpipelined with
            # exclusive use of the full scratchpads (old serial capacity)
            if not self._pipeline_idle():
                return
        elif self._input_buffers_in_flight() >= self.n_buffers:
            return
        if descriptor.load_input and (self._ready or self._compute_job is not None):
            # Reloading the shared input operand would corrupt tiles that
            # have been fetched but not yet computed: flush first.
            return
        self._pending.popleft()
        job = _TileJob(descriptor, buffer=0 if exclusive else self._next_buffer,
                       exclusive=exclusive)
        if exclusive:
            self._exclusive_active = True
        else:
            self._next_buffer = (self._next_buffer + 1) % self.n_buffers
        weight_source = descriptor.weights_addr
        if descriptor.weights_pitch and descriptor.weights_pitch != descriptor.inner:
            # the tile is a column slice of a wider row-major matrix: one
            # strided descriptor streams it in place over the bus
            weight_source = DMADescriptor(
                base=descriptor.weights_addr,
                block_words=descriptor.inner,
                n_blocks=descriptor.rows,
                stride_words=descriptor.weights_pitch,
            )
        latency = self.dma.copy_to_scratchpad(
            weight_source,
            self.weight_spm,
            self._buffer_offset(self.weight_spm, job.buffer),
            descriptor.weight_words,
        )
        if descriptor.load_input:
            latency += self.dma.copy_to_scratchpad(
                descriptor.input_addr, self.input_spm, 0, descriptor.input_words
            )
        job.dma_in_cycles = latency
        self.stats.dma_cycles += latency
        self._dma_in_job = job
        self.scheduler.schedule(
            latency, lambda: self._finish_dma_in(job), label=f"{self.name}-dma-in"
        )

    def _finish_dma_in(self, job: _TileJob) -> None:
        self._dma_in_job = None
        self._ready.append(job)
        self._advance()

    def _try_start_compute(self) -> None:
        if self._compute_job is not None or not self._ready:
            return
        output_backlog = len(self._writeback) + (1 if self._dma_out_job is not None else 0)
        if output_backlog >= self.n_buffers:
            return
        job = self._ready.popleft()
        self._compute_job = job
        descriptor = job.descriptor
        weights = self._read_matrix(
            self.weight_spm,
            self._buffer_offset(self.weight_spm, job.buffer),
            descriptor.rows,
            descriptor.inner,
        )
        inputs = self._read_matrix(self.input_spm, 0, descriptor.inner, descriptor.cols)
        config = {
            "rows": descriptor.rows,
            "inner": descriptor.inner,
            "cols": descriptor.cols,
            "scale_shift": descriptor.scale_shift,
        }
        cycles, energy, outputs = self._compute(weights, inputs, config)
        job.compute_cycles = cycles
        job.outputs = outputs
        self.stats.compute_cycles += cycles
        self.stats.macs += descriptor.macs
        self.stats.energy_j += energy
        self.scheduler.schedule(
            cycles, lambda: self._finish_compute(job), label=f"{self.name}-compute"
        )

    def _finish_compute(self, job: _TileJob) -> None:
        self._compute_job = None
        scaled = np.asarray(np.round(job.outputs), dtype=np.int64)
        self._write_matrix(
            self.output_spm, self._buffer_offset(self.output_spm, job.buffer), scaled
        )
        self._writeback.append(job)
        self._advance()

    def _try_start_dma_out(self) -> None:
        if self._dma_out_job is not None or not self._writeback:
            return
        job = self._writeback.popleft()
        self._dma_out_job = job
        descriptor = job.descriptor
        latency = self.dma_wb.copy_from_scratchpad(
            self.output_spm,
            self._buffer_offset(self.output_spm, job.buffer),
            descriptor.output_addr,
            descriptor.output_words,
        )
        job.dma_out_cycles = latency
        self.stats.dma_cycles += latency
        self.scheduler.schedule(
            latency, lambda: self._finish_dma_out(job), label=f"{self.name}-dma-out"
        )

    def _finish_dma_out(self, job: _TileJob) -> None:
        self._dma_out_job = None
        if job.exclusive:
            self._exclusive_active = False
        self.stats.tiles_completed += 1
        self._tiles_done_this_stream += 1
        self.mmr.set_data_register(REG_TILES_DONE, self._tiles_done_this_stream)
        if (
            self.irq_line is not None
            and self.mmr.irq_enabled
            and self.mmr.irq_per_tile
        ):
            self.interrupt_controller.raise_interrupt(self.irq_line.index)
        if self._drained():
            self._complete()
        else:
            self._advance()

    def _drained(self) -> bool:
        return not (
            self._pending
            or self._ready
            or self._writeback
            or self._dma_in_job is not None
            or self._compute_job is not None
            or self._dma_out_job is not None
        )

    def _complete(self) -> None:
        device_energy = (
            self.dma.energy_j()
            + self.dma_wb.energy_j()
            + self.input_spm.energy_j()
            + self.weight_spm.energy_j()
            + self.output_spm.energy_j()
        )
        self.stats.energy_j += device_energy - self._accounted_device_energy
        self._accounted_device_energy = device_energy
        self.busy = False
        # A bad descriptor enqueued mid-stream must surface as an error even
        # though the remaining tiles drained normally.
        self.mmr.mark_done(error=self._stream_error)
        self._stream_error = False
        if self.irq_line is not None and self.mmr.irq_enabled and not self.mmr.irq_per_tile:
            self.interrupt_controller.raise_interrupt(self.irq_line.index)

    # ------------------------------------------------------------------ #
    # scratchpad (de)serialisation: row-major signed 32-bit words
    # ------------------------------------------------------------------ #
    @staticmethod
    def _read_matrix(
        spm: Scratchpad, offset_bytes: int, n_rows: int, n_cols: int
    ) -> np.ndarray:
        words = spm.read_block(offset_bytes, n_rows * n_cols)
        return words_to_signed(words).reshape(n_rows, n_cols)

    @staticmethod
    def _write_matrix(spm: Scratchpad, offset_bytes: int, matrix: np.ndarray) -> None:
        flat = np.asarray(matrix, dtype=np.int64).reshape(-1)
        spm.write_block(offset_bytes, signed_to_words(flat))

    # ------------------------------------------------------------------ #
    # compute unit (subclass responsibility)
    # ------------------------------------------------------------------ #
    def _compute(self, weights: np.ndarray, inputs: np.ndarray, config: dict):
        """Run the datapath; returns (cycles, energy_j, output matrix)."""
        raise NotImplementedError

    def area_mm2(self) -> float:
        """Die area of the accelerator [mm^2]."""
        raise NotImplementedError

    def _functional_product(self, weights: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Backend product reduced to the integer output domain."""
        raw = self.backend.matmul(weights, inputs)
        raw = np.asarray(raw)
        if np.iscomplexobj(raw):
            raw = np.real(raw)
        return np.asarray(raw, dtype=np.int64)


class MACArrayAccelerator(BaseMatrixAccelerator):
    """Digital MAC-array GeMM accelerator (electronic DSA baseline).

    Attributes:
        n_mac_units: parallel multiply-accumulate units.
        mac_energy: energy per MAC [J] (digital 32-bit fixed point).
    """

    device_type = "mac-array"

    def __init__(self, *args, n_mac_units: int = 16, mac_energy: float = 1e-12, **kwargs):
        super().__init__(*args, **kwargs)
        if n_mac_units < 1:
            raise ValueError("n_mac_units must be >= 1")
        self.n_mac_units = int(n_mac_units)
        self.mac_energy = float(mac_energy)

    def _compute(self, weights: np.ndarray, inputs: np.ndarray, config: dict):
        rows, inner = weights.shape
        cols = inputs.shape[1]
        outputs = self._functional_product(weights, inputs)
        if config["scale_shift"]:
            outputs = outputs >> config["scale_shift"]
        # Timing: schedule the GeMM dataflow graph on the MAC array.  For
        # large products the graph is sampled (one representative output
        # block) and scaled, to keep simulation cost bounded.
        sample_rows = min(rows, 4)
        sample_cols = min(cols, 4)
        dfg = build_gemm_dfg(sample_rows, inner, sample_cols)
        schedule = dfg.schedule(resources={"mac": self.n_mac_units})
        scale = (rows * cols) / (sample_rows * sample_cols)
        cycles = int(np.ceil(schedule.total_cycles * scale))
        energy = rows * inner * cols * self.mac_energy
        return cycles, energy, outputs

    def area_mm2(self) -> float:
        """MAC array + SPM area (digital 16 nm-ish figures)."""
        mac_area = self.n_mac_units * 0.002
        spm_area = 3 * (self.input_spm.size_bytes / 1024) * 0.001
        return mac_area + spm_area


class PhotonicMVMAccelerator(BaseMatrixAccelerator):
    """Photonic in-memory GeMM accelerator (the paper's DSA).

    Attributes:
        energy_model: photonic core speed/energy/footprint model (its MVM
            dimensions must cover the offloaded tiles).
        backend: execution backend producing the functional result; pass
            ``backend="analog-photonic"`` (or an
            :class:`~repro.core.backends.AnalogPhotonicBackend`) so analog
            noise reaches the application, or keep the default
            ``ideal-digital`` for exact results with photonic timing/energy.
        reprogram_every_call: if True the weight-programming energy is paid
            on every offload (weights change per call); if False weights
            are considered resident (in-memory computing) after the first
            call.
    """

    device_type = "photonic"

    def __init__(
        self,
        *args,
        energy_model: Optional[PhotonicCoreEnergyModel] = None,
        analog_model: Optional[PhotonicMVM] = None,
        reprogram_every_call: bool = False,
        **kwargs,
    ):
        if analog_model is not None:
            if kwargs.get("backend") is not None:
                raise ValueError("pass either analog_model or backend, not both")
            kwargs["backend"] = AnalogPhotonicBackend(engine=analog_model)
        super().__init__(*args, **kwargs)
        self.energy_model = energy_model
        self.reprogram_every_call = reprogram_every_call
        self._programmed = False

    @property
    def analog_model(self) -> Optional[PhotonicMVM]:
        """The analog engine when the backend is photonic (else ``None``)."""
        if isinstance(self.backend, AnalogPhotonicBackend):
            return self.backend.engine
        return None

    def _default_energy_model(self, rows: int, inner: int) -> PhotonicCoreEnergyModel:
        component_count = {
            "mzis": rows * (rows - 1) // 2 + inner * (inner - 1) // 2,
            "phase_shifters": rows * (rows - 1) + inner * (inner - 1) + rows + inner,
            "couplers": rows * (rows - 1) + inner * (inner - 1),
            "modes": max(rows, inner),
            "depth": rows + inner,
        }
        return PhotonicCoreEnergyModel(
            n_inputs=inner, n_outputs=rows, component_count=component_count
        )

    def _compute(self, weights: np.ndarray, inputs: np.ndarray, config: dict):
        rows, inner = weights.shape
        cols = inputs.shape[1]
        model = self.energy_model or self._default_energy_model(rows, inner)

        outputs = self._functional_product(weights, inputs)
        if config["scale_shift"]:
            outputs = outputs >> config["scale_shift"]

        # One optical pass per input column, pipelined at the modulator rate.
        latency_s = model.mvm_latency_s + (cols - 1) / model.mvm_rate_hz
        cycles = max(1, int(np.ceil(latency_s * self.clock_hz)))
        include_programming = self.reprogram_every_call or not self._programmed
        energy = model.inference_energy_j(cols, include_programming=include_programming)
        self._programmed = True
        return cycles, energy, outputs

    def area_mm2(self) -> float:
        """Photonic core + SPM area."""
        spm_area = 3 * (self.input_spm.size_bytes / 1024) * 0.001
        if self.energy_model is not None:
            return self.energy_model.area_mm2() + spm_area
        return 1.0 + spm_area
