"""Dataflow-graph IR for accelerator datapath modelling.

gem5-SALAM / gem5-MARVEL model a domain-specific accelerator from the LLVM
IR of its C description: the IR becomes a dataflow graph whose nodes are
scheduled dynamically subject to data dependencies and hardware resource
limits.  This module provides the equivalent substrate: a small typed
dataflow graph, per-operation latency/energy tables, and a list scheduler
that reports the cycle count, resource occupancy and energy of executing
the graph — exactly what the compute-unit timing model needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

#: Default per-operation latency in accelerator clock cycles.
DEFAULT_OP_LATENCY: Dict[str, int] = {
    "load": 2,
    "store": 2,
    "add": 1,
    "mul": 3,
    "mac": 4,
    "relu": 1,
    "phi": 0,
    "branch": 1,
    "photonic_mvm": 1,
}

#: Default per-operation energy [J].
DEFAULT_OP_ENERGY: Dict[str, float] = {
    "load": 1e-12,
    "store": 1e-12,
    "add": 0.1e-12,
    "mul": 0.8e-12,
    "mac": 1.0e-12,
    "relu": 0.05e-12,
    "phi": 0.0,
    "branch": 0.05e-12,
    "photonic_mvm": 0.0,
}


class DataflowError(Exception):
    """Raised for malformed graphs (cycles, unknown operations...)."""


@dataclass(frozen=True)
class DFGNode:
    """One operation of the dataflow graph.

    Attributes:
        name: unique node name.
        op: operation type (a key of the latency/energy tables).
        latency: optional per-node latency override [cycles].
    """

    name: str
    op: str
    latency: Optional[int] = None


@dataclass
class ScheduleResult:
    """Outcome of scheduling one dataflow graph.

    Attributes:
        total_cycles: makespan of the schedule.
        start_times: node name -> issue cycle.
        energy_j: summed per-operation energy.
        critical_path: node names on the longest dependency chain.
        resource_limited: True if functional-unit limits (not dependencies)
            set the makespan.
    """

    total_cycles: int
    start_times: Dict[str, int]
    energy_j: float
    critical_path: List[str]
    resource_limited: bool


class DataflowGraph:
    """A typed dataflow graph with a resource-constrained list scheduler."""

    def __init__(
        self,
        op_latency: Optional[Dict[str, int]] = None,
        op_energy: Optional[Dict[str, float]] = None,
    ):
        self.graph = nx.DiGraph()
        self.op_latency = dict(DEFAULT_OP_LATENCY, **(op_latency or {}))
        self.op_energy = dict(DEFAULT_OP_ENERGY, **(op_energy or {}))

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_node(self, name: str, op: str, latency: Optional[int] = None) -> DFGNode:
        """Add an operation node."""
        if name in self.graph:
            raise DataflowError(f"duplicate node {name!r}")
        if op not in self.op_latency:
            raise DataflowError(f"unknown operation {op!r}")
        node = DFGNode(name=name, op=op, latency=latency)
        self.graph.add_node(name, data=node)
        return node

    def add_edge(self, producer: str, consumer: str) -> None:
        """Add a data dependency from ``producer`` to ``consumer``."""
        for name in (producer, consumer):
            if name not in self.graph:
                raise DataflowError(f"unknown node {name!r}")
        self.graph.add_edge(producer, consumer)

    def node(self, name: str) -> DFGNode:
        """Look up a node by name."""
        return self.graph.nodes[name]["data"]

    def node_latency(self, name: str) -> int:
        node = self.node(name)
        return node.latency if node.latency is not None else self.op_latency[node.op]

    @property
    def n_nodes(self) -> int:
        return self.graph.number_of_nodes()

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, resources: Optional[Dict[str, int]] = None) -> ScheduleResult:
        """List-schedule the graph under per-operation resource limits.

        ``resources`` maps operation type to the number of functional units
        of that type (missing types are unlimited).  Nodes issue as soon as
        their dependencies have completed and a unit is free; this mirrors
        the dynamic dataflow execution engine of gem5-SALAM.
        """
        if self.graph.number_of_nodes() == 0:
            return ScheduleResult(0, {}, 0.0, [], False)
        if not nx.is_directed_acyclic_graph(self.graph):
            raise DataflowError("dataflow graph has a cycle")
        resources = resources or {}

        order = list(nx.topological_sort(self.graph))
        ready_time: Dict[str, int] = {}
        start_times: Dict[str, int] = {}
        # Per-op-type list of unit busy-until times.
        units: Dict[str, List[int]] = {
            op: [0] * count for op, count in resources.items() if count > 0
        }
        resource_limited = False

        for name in order:
            node = self.node(name)
            dependency_ready = max(
                (start_times[p] + self.node_latency(p) for p in self.graph.predecessors(name)),
                default=0,
            )
            issue = dependency_ready
            if node.op in units:
                pool = units[node.op]
                best_unit = min(range(len(pool)), key=lambda i: pool[i])
                if pool[best_unit] > issue:
                    resource_limited = True
                issue = max(issue, pool[best_unit])
                pool[best_unit] = issue + self.node_latency(name)
            start_times[name] = issue
            ready_time[name] = issue + self.node_latency(name)

        total = max(ready_time.values())
        energy = sum(self.op_energy[self.node(name).op] for name in order)
        critical = self._critical_path(ready_time)
        return ScheduleResult(
            total_cycles=int(total),
            start_times=start_times,
            energy_j=float(energy),
            critical_path=critical,
            resource_limited=resource_limited,
        )

    def _critical_path(self, ready_time: Dict[str, int]) -> List[str]:
        """Trace back the dependency chain ending at the latest-finishing node."""
        current = max(ready_time, key=ready_time.get)
        path = [current]
        while True:
            predecessors = list(self.graph.predecessors(current))
            if not predecessors:
                break
            current = max(predecessors, key=lambda p: ready_time[p])
            path.append(current)
        return list(reversed(path))


def build_gemm_dfg(
    n_rows: int,
    n_inner: int,
    n_cols: int,
    mac_latency: int = 4,
) -> DataflowGraph:
    """Dataflow graph of a blocked digital GeMM (the MAC-array baseline).

    One ``mac`` node per multiply-accumulate, chained along the inner
    dimension (the accumulation is a true dependency), with loads feeding
    the first element of every chain and a store after every output.  The
    resulting graph scheduled with ``{"mac": n_units}`` reproduces the
    throughput of a digital MAC-array accelerator.
    """
    if min(n_rows, n_inner, n_cols) < 1:
        raise ValueError("all GeMM dimensions must be >= 1")
    dfg = DataflowGraph()
    for i in range(n_rows):
        for j in range(n_cols):
            load_name = f"load_{i}_{j}"
            dfg.add_node(load_name, "load")
            previous = load_name
            for k in range(n_inner):
                mac_name = f"mac_{i}_{j}_{k}"
                dfg.add_node(mac_name, "mac", latency=mac_latency)
                dfg.add_edge(previous, mac_name)
                previous = mac_name
            store_name = f"store_{i}_{j}"
            dfg.add_node(store_name, "store")
            dfg.add_edge(previous, store_name)
    return dfg
