"""Microarchitecture-level fault injection (the gem5-MARVEL feature).

gem5-MARVEL "supports transient and permanent fault injections to all
hardware structures of the CPU" and is used in NEUROPULS for reliability
analysis.  This module reproduces that capability on the Python SoC model:

* fault targets: CPU register file, main memory, accelerator scratchpads,
  MMR data registers;
* fault types: transient (single bit flip at a given cycle) and permanent
  (stuck-at bit re-asserted for the rest of the run);
* campaign runner: repeat a workload under randomly drawn faults, compare
  against the golden output, and classify every run as *masked*, *SDC*
  (silent data corruption), *crash* or *hang* — the standard reliability
  taxonomy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.system.memory import WORD_BYTES, to_unsigned
from repro.system.soc import PhotonicSoC, WorkloadReport
from repro.utils.rng import RngLike, ensure_rng

#: Valid fault targets.
FAULT_TARGETS = ("cpu_register", "main_memory", "scratchpad", "mmr_data")

#: Valid fault types.
FAULT_TYPES = ("transient", "permanent")

#: Outcome classes of one injection run.
OUTCOMES = ("masked", "sdc", "crash", "hang")


class EmptyCampaignError(ValueError):
    """Raised when a rate is requested from a campaign with zero runs.

    Outcome rates of an empty campaign are undefined; silently answering
    0.0 would read as "this outcome never happened" in reliability
    summaries, so the contract is a typed error instead.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject.

    Attributes:
        target: hardware structure (one of ``FAULT_TARGETS``).
        fault_type: ``"transient"`` or ``"permanent"``.
        location: structure-specific index (register index, word address,
            or data-register index).
        bit: bit position to flip / stick (0..31).
        cycle: injection cycle.
        stuck_value: for permanent faults, the value the bit is stuck at
            (0 or 1); ignored for transient faults.
    """

    target: str
    fault_type: str
    location: int
    bit: int
    cycle: int
    stuck_value: int = 1

    def __post_init__(self):
        if self.target not in FAULT_TARGETS:
            raise ValueError(f"unknown fault target {self.target!r}")
        if self.fault_type not in FAULT_TYPES:
            raise ValueError(f"unknown fault type {self.fault_type!r}")
        if not 0 <= self.bit < 32:
            raise ValueError("bit must be in [0, 32)")
        if self.cycle < 0:
            raise ValueError("cycle must be non-negative")
        if self.stuck_value not in (0, 1):
            raise ValueError("stuck_value must be 0 or 1")


class FaultInjector:
    """Injects one fault specification into a running SoC."""

    def __init__(self, soc: PhotonicSoC, spec: FaultSpec, enforce_interval: int = 3):
        self.soc = soc
        self.spec = spec
        self.enforce_interval = max(1, int(enforce_interval))
        self.injected = False

    # ------------------------------------------------------------------ #
    # bit manipulation per target
    # ------------------------------------------------------------------ #
    def _read(self) -> int:
        spec = self.spec
        if spec.target == "cpu_register":
            return self.soc.cpu.registers[spec.location % 32]
        if spec.target == "main_memory":
            address = (spec.location * WORD_BYTES) % self.soc.main_memory.size_bytes
            return self.soc.main_memory.read_word(address)
        if spec.target == "scratchpad":
            accelerator = self.soc.accelerators[0]
            address = (spec.location * WORD_BYTES) % accelerator.input_spm.size_bytes
            return accelerator.input_spm.read_word(address)
        accelerator = self.soc.accelerators[0]
        return accelerator.mmr.data_register(spec.location % accelerator.mmr.n_data_registers)

    def _write(self, value: int) -> None:
        spec = self.spec
        value = to_unsigned(value)
        if spec.target == "cpu_register":
            index = spec.location % 32
            if index != 0:
                self.soc.cpu.registers[index] = value
            return
        if spec.target == "main_memory":
            address = (spec.location * WORD_BYTES) % self.soc.main_memory.size_bytes
            self.soc.main_memory.write_word(address, value)
            return
        if spec.target == "scratchpad":
            accelerator = self.soc.accelerators[0]
            address = (spec.location * WORD_BYTES) % accelerator.input_spm.size_bytes
            accelerator.input_spm.write_word(address, value)
            return
        accelerator = self.soc.accelerators[0]
        accelerator.mmr.set_data_register(
            spec.location % accelerator.mmr.n_data_registers, value
        )

    def _flip(self) -> None:
        self._write(self._read() ^ (1 << self.spec.bit))

    def _stick(self) -> None:
        current = self._read()
        if self.spec.stuck_value:
            self._write(current | (1 << self.spec.bit))
        else:
            self._write(current & ~(1 << self.spec.bit))

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def arm(self) -> None:
        """Schedule the injection (and, for permanent faults, enforcement)."""
        if self.spec.target in ("scratchpad", "mmr_data") and not self.soc.accelerators:
            raise ValueError("scratchpad/MMR faults need an attached accelerator")
        self.soc.scheduler.schedule_at(self.spec.cycle, self._inject, label="fault-inject")

    def _inject(self) -> None:
        self.injected = True
        if self.spec.fault_type == "transient":
            self._flip()
            return
        self._stick()
        self._schedule_enforcement()

    def _schedule_enforcement(self) -> None:
        def enforce():
            self._stick()
            # Keep enforcing while the simulation still has work queued.
            if self.soc.scheduler.pending > 0:
                self.soc.scheduler.schedule(
                    self.enforce_interval, enforce, label="fault-enforce"
                )

        self.soc.scheduler.schedule(self.enforce_interval, enforce, label="fault-enforce")


@dataclass
class CampaignResult:
    """Aggregate outcome of a fault-injection campaign.

    Attributes:
        outcomes: per-run outcome labels.
        specs: the injected fault specifications, aligned with ``outcomes``.
    """

    outcomes: List[str] = field(default_factory=list)
    specs: List[FaultSpec] = field(default_factory=list)

    def rate(self, outcome: str) -> float:
        """Fraction of runs with the given outcome.

        Raises :class:`EmptyCampaignError` on a zero-run campaign — an
        outcome rate over no runs is undefined, not 0.0.
        """
        if outcome not in OUTCOMES:
            raise ValueError(f"unknown outcome {outcome!r}")
        if not self.outcomes:
            raise EmptyCampaignError(
                f"cannot compute {outcome!r} rate of a campaign with zero runs"
            )
        return float(np.mean([o == outcome for o in self.outcomes]))

    def counts(self) -> Dict[str, int]:
        """Outcome histogram."""
        return {outcome: self.outcomes.count(outcome) for outcome in OUTCOMES}

    @property
    def n_runs(self) -> int:
        return len(self.outcomes)


def random_fault_spec(
    target: str,
    fault_type: str,
    max_cycle: int,
    rng: RngLike = None,
    location_range: int = 1024,
) -> FaultSpec:
    """Draw a uniformly random fault of the given target/type."""
    generator = ensure_rng(rng)
    return FaultSpec(
        target=target,
        fault_type=fault_type,
        location=int(generator.integers(0, location_range)),
        bit=int(generator.integers(0, 32)),
        cycle=int(generator.integers(1, max(2, max_cycle))),
        stuck_value=int(generator.integers(0, 2)),
    )


def run_fault_campaign(
    workload: Callable[[PhotonicSoC], WorkloadReport],
    soc_factory: Callable[[], PhotonicSoC],
    golden: np.ndarray,
    n_injections: int = 20,
    target: str = "cpu_register",
    fault_type: str = "transient",
    injection_window: Optional[int] = None,
    hang_multiplier: float = 10.0,
    rng: RngLike = 0,
) -> CampaignResult:
    """Run a fault-injection campaign and classify every outcome.

    ``workload`` runs a full workload on a freshly built SoC and returns its
    :class:`WorkloadReport`; ``golden`` is the fault-free result to compare
    against.  A run is *masked* when the output matches the golden result,
    *SDC* when it differs, *crash* when the CPU halts on an architectural
    fault, and *hang* when the run exceeds ``hang_multiplier`` times the
    golden cycle count.
    """
    generator = ensure_rng(rng)
    golden = np.asarray(golden)

    # Reference run to size the injection window and the hang watchdog.
    reference_soc = soc_factory()
    reference_report = workload(reference_soc)
    golden_cycles = max(1, reference_report.cycles)
    window = injection_window if injection_window is not None else golden_cycles

    result = CampaignResult()
    for _ in range(max(1, n_injections)):
        spec = random_fault_spec(
            target, fault_type, max_cycle=window, rng=generator
        )
        soc = soc_factory()
        soc.max_cycles = int(golden_cycles * hang_multiplier)
        injector = FaultInjector(soc, spec)
        injector.arm()
        try:
            report = workload(soc)
        except Exception:
            result.outcomes.append("crash")
            result.specs.append(spec)
            continue
        if getattr(soc.cpu, "fault_cause", None):
            outcome = "crash"
        elif not soc.cpu.halted or report.cycles >= soc.max_cycles:
            outcome = "hang"
        elif report.result is not None and np.array_equal(np.asarray(report.result), golden):
            outcome = "masked"
        else:
            outcome = "sdc"
        result.outcomes.append(outcome)
        result.specs.append(spec)
    return result
