"""Memory devices: main memory, scratchpad memories and register banks.

The gem5-MARVEL communications interface distinguishes several memory
types: large off-accelerator main memory (DRAM, slow), on-accelerator
scratchpad memories (SPMs, single-cycle) and register banks.  All of them
implement the same word-addressed interface so the bus can route accesses
uniformly; each carries its own latency and per-access energy figures for
the system-level speed/energy accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

WORD_BYTES = 4
WORD_MASK = 0xFFFFFFFF


def to_unsigned(value: int) -> int:
    """Wrap a Python integer to an unsigned 32-bit word."""
    return value & WORD_MASK


def to_signed(value: int) -> int:
    """Interpret a 32-bit word as a signed integer."""
    value &= WORD_MASK
    return value - (1 << 32) if value & 0x80000000 else value


def words_to_signed(words) -> np.ndarray:
    """Vectorised :func:`to_signed`: uint32 word array -> int64 values."""
    words = np.asarray(words, dtype=np.uint32)
    return words.view(np.int32).astype(np.int64)


def signed_to_words(values) -> np.ndarray:
    """Vectorised :func:`to_unsigned`: integer array -> uint32 word array."""
    return (np.asarray(values, dtype=np.int64) & WORD_MASK).astype(np.uint32)


class MemoryAccessError(Exception):
    """Raised on out-of-range or misaligned memory accesses."""


@dataclass
class MemoryStats:
    """Access counters of one memory device."""

    reads: int = 0
    writes: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes


class MainMemory:
    """Word-addressed main memory (DRAM model).

    Attributes:
        size_bytes: capacity.
        read_latency / write_latency: access latency in cycles.
        energy_per_access: energy per word access [J] (DRAM-ish, tens of pJ).
    """

    def __init__(
        self,
        size_bytes: int,
        read_latency: int = 30,
        write_latency: int = 30,
        energy_per_access: float = 20e-12,
    ):
        if size_bytes <= 0 or size_bytes % WORD_BYTES != 0:
            raise ValueError("size_bytes must be a positive multiple of 4")
        self.size_bytes = size_bytes
        self.read_latency = int(read_latency)
        self.write_latency = int(write_latency)
        self.energy_per_access = float(energy_per_access)
        self._words = np.zeros(size_bytes // WORD_BYTES, dtype=np.uint32)
        self.stats = MemoryStats()

    def _index(self, address: int) -> int:
        if address < 0 or address + WORD_BYTES > self.size_bytes:
            raise MemoryAccessError(f"address {address:#x} out of range")
        if address % WORD_BYTES != 0:
            raise MemoryAccessError(f"misaligned word access at {address:#x}")
        return address // WORD_BYTES

    def read_word(self, address: int) -> int:
        """Read one 32-bit word; returns its unsigned value."""
        index = self._index(address)
        self.stats.reads += 1
        return int(self._words[index])

    def write_word(self, address: int, value: int) -> None:
        """Write one 32-bit word."""
        index = self._index(address)
        self.stats.writes += 1
        self._words[index] = to_unsigned(int(value))

    def _block_index(self, address: int, n_words: int) -> int:
        """Validate a contiguous word range; returns its start index."""
        if n_words < 0:
            raise MemoryAccessError("negative block length")
        if address % WORD_BYTES != 0:
            raise MemoryAccessError(f"misaligned word access at {address:#x}")
        if address < 0 or address + n_words * WORD_BYTES > self.size_bytes:
            raise MemoryAccessError(
                f"block [{address:#x}, +{n_words} words] out of range"
            )
        return address // WORD_BYTES

    def read_block(self, address: int, n_words: int) -> np.ndarray:
        """Bulk read of ``n_words`` consecutive words (counted as reads).

        One call is the accounting equivalent of ``n_words`` calls to
        :meth:`read_word`; the DMA engines use it to stream whole tiles
        without a per-word Python loop.
        """
        index = self._block_index(address, n_words)
        self.stats.reads += n_words
        return self._words[index : index + n_words].copy()

    def write_block(self, address: int, values) -> None:
        """Bulk write of consecutive words (counted as writes)."""
        words = signed_to_words(values)
        index = self._block_index(address, words.size)
        self.stats.writes += words.size
        self._words[index : index + words.size] = words

    def read_strided(
        self, address: int, block_words: int, n_blocks: int, stride_words: int
    ) -> np.ndarray:
        """Bulk read of ``n_blocks`` blocks of ``block_words`` words each,
        consecutive blocks ``stride_words`` words apart (counted as reads).

        This is the memory-side of a strided DMA descriptor: it lets a DMA
        engine stream a row-major matrix column slice ``A[:, k0:k1]``
        straight from its original location, without a host staging copy.
        """
        if n_blocks < 0 or block_words < 0:
            raise MemoryAccessError("negative strided block shape")
        if stride_words < 0:
            raise MemoryAccessError("negative block stride")
        if n_blocks == 0 or block_words == 0:
            return np.zeros(0, dtype=np.uint32)
        base = self._block_index(address, block_words)
        # with a non-negative stride the first block starts lowest and the
        # last block ends highest, so validating both bounds covers the rest
        self._block_index(address + (n_blocks - 1) * stride_words * WORD_BYTES, block_words)
        offsets = (
            base
            + np.arange(n_blocks, dtype=np.int64)[:, None] * stride_words
            + np.arange(block_words, dtype=np.int64)[None, :]
        )
        self.stats.reads += n_blocks * block_words
        return self._words[offsets].reshape(-1)

    def read_gather(self, addresses, block_words: int) -> np.ndarray:
        """Bulk read of one ``block_words``-sized block per address
        (counted as reads) — the irregular-access sibling of
        :meth:`read_strided`."""
        if block_words < 0:
            raise MemoryAccessError("negative block length")
        starts = [self._block_index(int(address), block_words) for address in addresses]
        if not starts or block_words == 0:
            return np.zeros(0, dtype=np.uint32)
        offsets = (
            np.asarray(starts, dtype=np.int64)[:, None]
            + np.arange(block_words, dtype=np.int64)[None, :]
        )
        self.stats.reads += len(starts) * block_words
        return self._words[offsets].reshape(-1)

    def load_words(self, address: int, values) -> None:
        """Bulk-initialise memory starting at ``address`` (no stats impact)."""
        words = signed_to_words(list(values))
        index = self._block_index(address, words.size)
        self._words[index : index + words.size] = words

    def dump_words(self, address: int, count: int) -> list:
        """Bulk-read ``count`` words starting at ``address`` (no stats impact)."""
        index = self._block_index(address, count)
        return [int(word) for word in self._words[index : index + count]]

    def energy_j(self) -> float:
        """Total access energy consumed so far."""
        return self.stats.accesses * self.energy_per_access


class Scratchpad(MainMemory):
    """On-accelerator scratchpad memory: single-cycle, SRAM energy."""

    def __init__(self, size_bytes: int, energy_per_access: float = 0.5e-12):
        super().__init__(
            size_bytes,
            read_latency=1,
            write_latency=1,
            energy_per_access=energy_per_access,
        )


class RegisterBank:
    """A small bank of named 32-bit registers (accelerator-internal state)."""

    def __init__(self, names):
        self._values: Dict[str, int] = {str(name): 0 for name in names}
        self.stats = MemoryStats()

    def read(self, name: str) -> int:
        if name not in self._values:
            raise MemoryAccessError(f"unknown register {name!r}")
        self.stats.reads += 1
        return self._values[name]

    def write(self, name: str, value: int) -> None:
        if name not in self._values:
            raise MemoryAccessError(f"unknown register {name!r}")
        self.stats.writes += 1
        self._values[name] = to_unsigned(int(value))

    def names(self) -> list:
        return list(self._values)
