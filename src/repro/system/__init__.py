"""gem5-style full-system simulation platform (paper Section 5).

A discrete-event simulator of a RISC-V host CPU, memory hierarchy, system
bus, DMA engines, interrupt controller and domain-specific accelerators
(photonic and digital), plus the fault-injection framework used for
reliability analysis — the Python counterpart of gem5-MARVEL.
"""

from repro.system.event import EventScheduler
from repro.system.memory import (
    MainMemory,
    Scratchpad,
    RegisterBank,
    MemoryAccessError,
    to_signed,
    to_unsigned,
    words_to_signed,
    signed_to_words,
)
from repro.system.mmr import (
    MemoryMappedRegisters,
    CTRL_START,
    CTRL_RESET,
    CTRL_IRQ_ENABLE,
    CTRL_ENQUEUE,
    CTRL_IRQ_PER_TILE,
    STATUS_IDLE,
    STATUS_BUSY,
    STATUS_DONE,
    STATUS_ERROR,
)
from repro.system.bus import SystemBus, BusMapping
from repro.system.isa import Instruction, IllegalInstructionError, parse_register
from repro.system.assembler import assemble, AssemblyError, Program
from repro.system.cpu import RiscvCPU, CPUStats, CPUError
from repro.system.interrupt import InterruptController, InterruptLine
from repro.system.dma import DMADescriptor, DMAEngine, DMAStats, GatherDescriptor
from repro.system.dfg import DataflowGraph, DFGNode, ScheduleResult, build_gemm_dfg, DataflowError
from repro.system.accelerator import (
    BaseMatrixAccelerator,
    MACArrayAccelerator,
    PhotonicMVMAccelerator,
    AcceleratorStats,
    TileDescriptor,
)
from repro.system.programs import (
    vector_add_program,
    gemm_program,
    dot_product_program,
    accelerator_offload_program,
)
from repro.system.soc import (
    KShardSlice,
    PhotonicSoC,
    WorkloadReport,
    plan_k_shards,
    plan_shards,
)
from repro.system.faults import (
    FaultSpec,
    FaultInjector,
    CampaignResult,
    EmptyCampaignError,
    random_fault_spec,
    run_fault_campaign,
    FAULT_TARGETS,
    FAULT_TYPES,
    OUTCOMES,
)

__all__ = [
    "EventScheduler",
    "MainMemory",
    "Scratchpad",
    "RegisterBank",
    "MemoryAccessError",
    "to_signed",
    "to_unsigned",
    "words_to_signed",
    "signed_to_words",
    "MemoryMappedRegisters",
    "CTRL_START",
    "CTRL_RESET",
    "CTRL_IRQ_ENABLE",
    "CTRL_ENQUEUE",
    "CTRL_IRQ_PER_TILE",
    "STATUS_IDLE",
    "STATUS_BUSY",
    "STATUS_DONE",
    "STATUS_ERROR",
    "SystemBus",
    "BusMapping",
    "Instruction",
    "IllegalInstructionError",
    "parse_register",
    "assemble",
    "AssemblyError",
    "Program",
    "RiscvCPU",
    "CPUStats",
    "CPUError",
    "InterruptController",
    "InterruptLine",
    "DMADescriptor",
    "DMAEngine",
    "DMAStats",
    "GatherDescriptor",
    "DataflowGraph",
    "DFGNode",
    "ScheduleResult",
    "build_gemm_dfg",
    "DataflowError",
    "BaseMatrixAccelerator",
    "MACArrayAccelerator",
    "PhotonicMVMAccelerator",
    "AcceleratorStats",
    "TileDescriptor",
    "vector_add_program",
    "gemm_program",
    "dot_product_program",
    "accelerator_offload_program",
    "KShardSlice",
    "PhotonicSoC",
    "WorkloadReport",
    "plan_k_shards",
    "plan_shards",
    "FaultSpec",
    "FaultInjector",
    "CampaignResult",
    "EmptyCampaignError",
    "random_fault_spec",
    "run_fault_campaign",
    "FAULT_TARGETS",
    "FAULT_TYPES",
    "OUTCOMES",
]
