"""Host (RISC-V) programs used by the system-level experiments.

These generators emit RV32IM assembly for the workloads the full-system
benchmarks run: a software GeMM (the CPU-only baseline), a vector-add
smoke-test, and the accelerator-offload driver that programs the DSA's
MMRs, starts it and waits for completion (polling or interrupt-enabled).
Keeping them as importable generators means every experiment assembles its
exact workload from parameters instead of shipping opaque binaries.
"""

from __future__ import annotations

from repro.system.mmr import (
    CTRL_IRQ_ENABLE,
    CTRL_OFFSET,
    CTRL_START,
    DATA_OFFSET,
    STATUS_DONE,
    STATUS_OFFSET,
)


def vector_add_program(a_addr: int, b_addr: int, c_addr: int, length: int) -> str:
    """Element-wise 32-bit integer vector add: ``c[i] = a[i] + b[i]``."""
    if length < 1:
        raise ValueError("length must be >= 1")
    return f"""
        li   a0, {a_addr}        # base of a
        li   a1, {b_addr}        # base of b
        li   a2, {c_addr}        # base of c
        li   t0, 0               # i = 0
        li   t1, {length}        # loop bound
    loop:
        bge  t0, t1, done
        slli t2, t0, 2
        add  t3, a0, t2
        lw   t4, 0(t3)
        add  t3, a1, t2
        lw   t5, 0(t3)
        add  t4, t4, t5
        add  t3, a2, t2
        sw   t4, 0(t3)
        addi t0, t0, 1
        j    loop
    done:
        halt
    """


def gemm_program(
    a_addr: int,
    b_addr: int,
    c_addr: int,
    n_rows: int,
    n_inner: int,
    n_cols: int,
) -> str:
    """Software integer GeMM ``C[MxN] = A[MxK] @ B[KxN]`` (row-major).

    This is the CPU-only baseline of experiment E8: a straightforward
    triple loop with ``mul``/``add`` in the inner body, the code a compiler
    would emit for the naive C kernel.
    """
    if min(n_rows, n_inner, n_cols) < 1:
        raise ValueError("all GeMM dimensions must be >= 1")
    return f"""
        li   s0, {a_addr}        # A base
        li   s1, {b_addr}        # B base
        li   s2, {c_addr}        # C base
        li   s3, {n_rows}        # M
        li   s4, {n_inner}       # K
        li   s5, {n_cols}        # N
        li   t0, 0               # i = 0
    loop_i:
        bge  t0, s3, done
        li   t1, 0               # j = 0
    loop_j:
        bge  t1, s5, end_i
        li   t2, 0               # k = 0
        li   t3, 0               # acc = 0
    loop_k:
        bge  t2, s4, store_c
        # load A[i][k]
        mul  t4, t0, s4
        add  t4, t4, t2
        slli t4, t4, 2
        add  t4, t4, s0
        lw   t5, 0(t4)
        # load B[k][j]
        mul  t4, t2, s5
        add  t4, t4, t1
        slli t4, t4, 2
        add  t4, t4, s1
        lw   t6, 0(t4)
        # acc += A[i][k] * B[k][j]
        mul  t5, t5, t6
        add  t3, t3, t5
        addi t2, t2, 1
        j    loop_k
    store_c:
        mul  t4, t0, s5
        add  t4, t4, t1
        slli t4, t4, 2
        add  t4, t4, s2
        sw   t3, 0(t4)
        addi t1, t1, 1
        j    loop_j
    end_i:
        addi t0, t0, 1
        j    loop_i
    done:
        halt
    """


def accelerator_offload_program(
    mmr_base: int,
    a_addr: int,
    b_addr: int,
    c_addr: int,
    n_rows: int,
    n_inner: int,
    n_cols: int,
    use_interrupt: bool = False,
) -> str:
    """Host driver: configure the DSA MMRs, start it, and wait for DONE.

    With ``use_interrupt=False`` the host polls the STATUS register (the
    "constant polling" the paper's interrupt support removes); with
    ``use_interrupt=True`` it enables the IRQ and spins on a much slower
    check loop, modelling a host that has gone off to do other work.
    """
    ctrl_value = CTRL_START | (CTRL_IRQ_ENABLE if use_interrupt else 0)
    wait_body = """
    wait:
        lw   t1, {status_offset}(s0)
        li   t2, {done_value}
        bne  t1, t2, wait
    """ if not use_interrupt else """
    wait:
        # interrupt-enabled host: check rarely, sleep (idle loop) in between
        li   t3, 64
    idle:
        addi t3, t3, -1
        bnez t3, idle
        lw   t1, {status_offset}(s0)
        li   t2, {done_value}
        bne  t1, t2, wait
    """
    wait_code = wait_body.format(status_offset=STATUS_OFFSET, done_value=STATUS_DONE)
    return f"""
        li   s0, {mmr_base}            # MMR base address
        li   t0, {a_addr}
        sw   t0, {DATA_OFFSET + 0}(s0)  # weights address
        li   t0, {b_addr}
        sw   t0, {DATA_OFFSET + 4}(s0)  # input address
        li   t0, {c_addr}
        sw   t0, {DATA_OFFSET + 8}(s0)  # output address
        li   t0, {n_rows}
        sw   t0, {DATA_OFFSET + 12}(s0) # rows (M)
        li   t0, {n_inner}
        sw   t0, {DATA_OFFSET + 16}(s0) # inner (K)
        li   t0, {n_cols}
        sw   t0, {DATA_OFFSET + 20}(s0) # cols (N)
        li   t0, 0
        sw   t0, {DATA_OFFSET + 24}(s0) # scale shift
        li   t0, {ctrl_value}
        sw   t0, {CTRL_OFFSET}(s0)      # GO
    {wait_code}
        halt
    """


def dot_product_program(a_addr: int, b_addr: int, result_addr: int, length: int) -> str:
    """Integer dot product of two vectors; result stored at ``result_addr``."""
    if length < 1:
        raise ValueError("length must be >= 1")
    return f"""
        li   a0, {a_addr}
        li   a1, {b_addr}
        li   a2, {result_addr}
        li   t0, 0
        li   t1, {length}
        li   t3, 0
    loop:
        bge  t0, t1, done
        slli t2, t0, 2
        add  t4, a0, t2
        lw   t5, 0(t4)
        add  t4, a1, t2
        lw   t6, 0(t4)
        mul  t5, t5, t6
        add  t3, t3, t5
        addi t0, t0, 1
        j    loop
    done:
        sw   t3, 0(a2)
        halt
    """
