"""Interrupt controller: completion signalling without polling.

gem5-MARVEL treats each accelerator as a memory-mapped device whose
interrupt lines let the host synchronise "without the need for constant
polling".  The controller here collects the interrupt lines of all devices,
records which ones fired, and notifies the CPU(s) registered for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List


@dataclass
class InterruptLine:
    """One interrupt line owned by a device."""

    index: int
    name: str
    pending: bool = False
    fire_count: int = 0


class InterruptController:
    """A simple level-style interrupt controller.

    Devices ``allocate_line`` once and ``raise_interrupt`` when they finish;
    CPUs (or any callable) subscribe per line and are invoked on every
    assertion.  Lines stay pending until ``acknowledge`` so a host that was
    busy can still observe the event — this mirrors the MMR + IRQ protocol
    of the paper's communications interface.
    """

    def __init__(self):
        self._lines: List[InterruptLine] = []
        self._handlers: Dict[int, List[Callable[[int], None]]] = {}

    def allocate_line(self, name: str) -> InterruptLine:
        """Allocate a new interrupt line for a device."""
        line = InterruptLine(index=len(self._lines), name=name)
        self._lines.append(line)
        self._handlers[line.index] = []
        return line

    def subscribe(self, line_index: int, handler: Callable[[int], None]) -> None:
        """Register a handler invoked whenever the line is asserted."""
        if line_index not in self._handlers:
            raise KeyError(f"no interrupt line {line_index}")
        self._handlers[line_index].append(handler)

    def raise_interrupt(self, line_index: int) -> None:
        """Assert a line: mark pending and notify all subscribed handlers."""
        if not 0 <= line_index < len(self._lines):
            raise KeyError(f"no interrupt line {line_index}")
        line = self._lines[line_index]
        line.pending = True
        line.fire_count += 1
        for handler in self._handlers[line_index]:
            handler(line_index)

    def acknowledge(self, line_index: int) -> None:
        """Clear a pending line (host-side acknowledgement)."""
        if not 0 <= line_index < len(self._lines):
            raise KeyError(f"no interrupt line {line_index}")
        self._lines[line_index].pending = False

    def pending_lines(self) -> List[int]:
        """Indices of all currently pending lines."""
        return [line.index for line in self._lines if line.pending]

    def line(self, line_index: int) -> InterruptLine:
        """Look up a line by index."""
        return self._lines[line_index]
