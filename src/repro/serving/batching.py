"""Dynamic micro-batching: coalesce queued requests into one engine call.

The batcher is the serving layer's throughput lever: the photonic datapath
(and the vectorized NumPy hot paths underneath it) amortise per-call cost
over the batch dimension, so executing 32 queued requests as one
``apply_batch`` / ``backend.matmul`` costs barely more than executing one.
The policy is the classic dynamic one: take the first waiting request, then
keep coalescing until either ``max_batch`` requests are in hand or
``max_wait_s`` has elapsed since the batch opened.  Whatever is already
queued is always drained greedily — even with ``max_wait_s = 0`` a saturated
queue serves in full batches.

Requests are grouped by model key inside a batch (one engine call per
model), preserving arrival order.  Cancelled futures are skipped; requests
whose deadline has passed are completed with
:class:`~repro.serving.errors.DeadlineExceededError` at dispatch time
instead of wasting engine time.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.serving.engine import InferenceEngine
from repro.serving.errors import DeadlineExceededError, ServerClosedError

#: queue sentinel that tells a batcher to exit its serve loop.
SHUTDOWN = None


@dataclass
class InferenceRequest:
    """One in-flight request: a single input column against one model.

    Attributes:
        inputs: the ``(n_in,)`` input vector.
        weights: explicit model weights, or ``None`` for the replica
            engine's bound default model.
        model_key: weight-hash grouping key (requests sharing it may be
            fused into one engine call).
        future: resolved with the ``(n_out,)`` output column.
        submitted_at: clock timestamp at admission.
        deadline_at: absolute clock deadline, or ``None``.
        request_id: monotonically increasing id assigned by the server.
        trace: the request span (:class:`~repro.obs.trace.Span`) or wire
            context, ``None`` when tracing is off.
    """

    inputs: np.ndarray
    model_key: str
    future: asyncio.Future
    submitted_at: float
    weights: Optional[np.ndarray] = None
    deadline_at: Optional[float] = None
    request_id: int = 0
    trace: Optional[object] = None


@dataclass
class BatcherStats:
    """Counters of one micro-batcher."""

    batches: int = 0
    requests: int = 0
    expired: int = 0
    cancelled: int = 0
    failed: int = 0

    @property
    def mean_batch(self) -> float:
        """Mean requests coalesced per engine call."""
        return self.requests / self.batches if self.batches else 0.0


class MicroBatcher:
    """Coalesces an :class:`asyncio.Queue` of requests into engine calls.

    Attributes:
        engine: the :class:`~repro.serving.engine.InferenceEngine` executing
            fused batches.
        max_batch: upper bound on requests fused into one call (1 disables
            batching — the serial baseline).
        max_wait_s: how long an open batch waits for stragglers; 0 serves
            whatever is queued immediately.
        on_result: optional callback ``(request, latency_s, batch_size,
            outcome)`` with outcome ``"ok" | "expired" | "cancelled" |
            "error"`` — the telemetry hook.
        on_pull: optional callback ``(1)`` fired the moment a request is
            taken off the queue — in-flight load accounting must include
            requests held in an open batching window.
        on_batch: optional callback ``(n_dispatched)`` fired when a fused
            batch is dispatched (batch-size telemetry).
        tracer: optional :class:`~repro.obs.trace.Tracer`; when set, each
            fuse event records a ``batch`` span linking every traced
            request it coalesced, plus an ``engine`` span per model-key
            engine call.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry` for
            batch-size / latency instruments.

    The straggler window (``max_wait_s``) is timed on the event loop's
    clock (``loop.time()``), matching ``asyncio.wait_for``; the injectable
    ``clock`` is only used for request latency/deadline bookkeeping.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        max_batch: int = 32,
        max_wait_s: float = 0.0,
        clock: Callable[[], float] = time.perf_counter,
        on_result: Optional[Callable[[InferenceRequest, float, int, str], None]] = None,
        on_pull: Optional[Callable[[int], None]] = None,
        on_batch: Optional[Callable[[int], None]] = None,
        tracer=None,
        metrics=None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        self.engine = engine
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self.clock = clock
        self.on_result = on_result
        self.on_pull = on_pull
        self.on_batch = on_batch
        self.tracer = tracer
        self.metrics = metrics
        self.stats = BatcherStats()

    def _take(self, batch: list, item: InferenceRequest) -> None:
        batch.append(item)
        if self.on_pull is not None:
            self.on_pull(1)

    def expected_columns(self) -> int:
        """Batch width a compiled plan should be optimised for.

        The observed mean fused-batch size once traffic has been served,
        else the configured ``max_batch`` bound — this is what the model
        compiler's batch-aware sharding decisions consume (see
        :func:`repro.compiler.partition.expected_batch_width`).
        """
        if self.stats.batches > 0:
            return max(1, int(round(self.stats.mean_batch)))
        return self.max_batch

    async def serve(self, queue: asyncio.Queue) -> None:
        """Serve until the :data:`SHUTDOWN` sentinel is dequeued.

        Cancellation (``Replica.abort``) fails the requests already pulled
        into the open batch with :class:`ServerClosedError` — a pulled
        request must never be left as a forever-pending future.
        """
        while True:
            item = await queue.get()
            if item is SHUTDOWN:
                return
            batch: List[InferenceRequest] = []
            self._take(batch, item)
            try:
                stop = self._coalesce_nowait(queue, batch)
                if not stop and len(batch) < self.max_batch and self.max_wait_s > 0:
                    stop = await self._coalesce_wait(queue, batch)
            except asyncio.CancelledError:
                self._fail_batch(batch)
                raise
            if self.on_batch is not None:
                self.on_batch(len(batch))
            self._execute(batch)
            if stop:
                return

    def _fail_batch(self, batch: List[InferenceRequest]) -> None:
        """Resolve a pulled-but-unserved batch on abort (typed error)."""
        now = self.clock()
        for request in batch:
            if not request.future.done():
                request.future.set_exception(
                    ServerClosedError("server aborted before serving this request")
                )
            self.stats.cancelled += 1
            self._notify(request, now, len(batch), "cancelled")

    def _coalesce_nowait(self, queue: asyncio.Queue, batch: list) -> bool:
        """Drain already-queued requests; True when SHUTDOWN was seen."""
        while len(batch) < self.max_batch:
            try:
                item = queue.get_nowait()
            except asyncio.QueueEmpty:
                return False
            if item is SHUTDOWN:
                return True
            self._take(batch, item)
        return False

    async def _coalesce_wait(self, queue: asyncio.Queue, batch: list) -> bool:
        """Wait up to ``max_wait_s`` for stragglers; True on SHUTDOWN.

        The window is measured on the event loop's clock so it stays
        correct when a caller injects a frozen/simulated ``clock`` for
        latency bookkeeping.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.max_wait_s
        while len(batch) < self.max_batch:
            remaining = deadline - loop.time()
            if remaining <= 0:
                return False
            try:
                item = await asyncio.wait_for(queue.get(), timeout=remaining)
            except asyncio.TimeoutError:
                return False
            if item is SHUTDOWN:
                return True
            self._take(batch, item)
        return False

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _execute(self, batch: List[InferenceRequest]) -> None:
        """Fuse a batch into per-model engine calls and resolve futures."""
        now = self.clock()
        if self.metrics:
            self.metrics.histogram(
                "batcher.batch_size", bounds=(1, 2, 4, 8, 16, 32, 64, 128)
            ).observe(len(batch))
        groups: "Dict[str, List[InferenceRequest]]" = {}
        for request in batch:
            if request.future.cancelled():
                self.stats.cancelled += 1
                self._notify(request, now, len(batch), "cancelled")
                continue
            if request.deadline_at is not None and now > request.deadline_at:
                waited = now - request.submitted_at
                request.future.set_exception(
                    DeadlineExceededError(
                        waited_s=waited,
                        deadline_s=request.deadline_at - request.submitted_at,
                    )
                )
                self.stats.expired += 1
                self._notify(request, now, len(batch), "expired")
                continue
            groups.setdefault(request.model_key, []).append(request)

        batch_span = None
        if self.tracer:
            traced = [request.trace for request in batch if request.trace is not None]
            if traced:
                batch_span = self.tracer.start_span(
                    "batch",
                    trace_id=traced[0].trace_id,
                    links=tuple(ctx.span_id for ctx in traced),
                    track="batcher",
                    attrs={"batch_size": len(batch), "groups": len(groups)},
                )
        for model_key, requests in groups.items():
            engine_span = None
            if batch_span is not None:
                engine_span = self.tracer.start_span(
                    "engine",
                    parent=batch_span,
                    track="engine",
                    attrs={"model_key": model_key, "n_requests": len(requests)},
                )
                self.tracer.push(engine_span)
            try:
                # stacking stays inside the guard: a single mismatched-length
                # request must fail its batch, not kill the batcher task
                columns = np.stack([request.inputs for request in requests], axis=1)
                outputs = self.engine.run_batch(
                    requests[0].weights, columns, key=model_key
                )
            except Exception as exc:  # noqa: BLE001 - forwarded to the callers
                done = self.clock()
                for request in requests:
                    if not request.future.done():
                        request.future.set_exception(exc)
                    self.stats.failed += 1
                    self._notify(request, done, len(requests), "error")
                continue
            finally:
                if engine_span is not None:
                    self.tracer.pop()
                    self.tracer.end_span(engine_span)
            done = self.clock()
            self.stats.batches += 1
            self.stats.requests += len(requests)
            outputs = np.asarray(outputs)
            for index, request in enumerate(requests):
                if not request.future.done():
                    request.future.set_result(outputs[:, index])
                self._notify(request, done, len(requests), "ok")
        if batch_span is not None:
            self.tracer.end_span(batch_span)

    def _notify(
        self, request: InferenceRequest, now: float, batch_size: int, outcome: str
    ) -> None:
        if self.metrics:
            self.metrics.counter(f"batcher.requests.{outcome}").inc()
            if outcome == "ok":
                self.metrics.histogram("batcher.latency_s").observe(
                    now - request.submitted_at
                )
        if self.on_result is not None:
            self.on_result(request, now - request.submitted_at, batch_size, outcome)
