"""Asyncio inference front-end: submit -> awaitable future, drain, shutdown.

:class:`InferenceServer` is the client-facing surface of the serving
runtime.  ``submit()`` admits one request (one input column against an
optional explicit model), routes it through the
:class:`~repro.serving.scheduler.ReplicaScheduler`, and returns when the
fused micro-batch containing it has executed.  Per-request deadlines are
enforced at dispatch time; callers may also cancel the returned future and
the batcher will skip the request.  ``shutdown(drain=True)`` stops
admission, serves everything already queued, then stops the batcher tasks.

The server is single-event-loop by design: engines are synchronous NumPy
code that executes inline in the batcher task, which keeps results
deterministic for seeded workloads and matches how the underlying hot paths
were benchmarked.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.serving.batching import InferenceRequest
from repro.serving.engine import DEFAULT_MODEL_KEY, weight_hash
from repro.serving.errors import BackpressureError, ServerClosedError
from repro.serving.scheduler import Replica, ReplicaScheduler
from repro.serving.telemetry import ServingTelemetry


class InferenceServer:
    """Front-end over a pool of serving replicas.

    Attributes:
        scheduler: the routing/admission layer.
        telemetry: the server-lifetime metrics sink.
        tracer: optional :class:`~repro.obs.trace.Tracer`; when set, each
            admitted request gets a ``request`` root span that the
            batchers/engines parent their spans on.  ``None`` (the
            default) keeps the entire tracing path to one falsy check.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`
            shared with the batchers.
        replanner: optional
            :class:`~repro.compiler.adaptive.AdaptiveReplanner`; when
            set, every replica's fused-batch widths stream into the
            replanner's width window so it can detect sharding flip
            points in the offered traffic.  Same opt-in discipline as
            tracing: ``None`` (the default) adds nothing to the serving
            path.
    """

    def __init__(
        self,
        replicas: Sequence[Replica],
        policy: str = "least-loaded",
        telemetry: Optional[ServingTelemetry] = None,
        clock: Callable[[], float] = time.perf_counter,
        cost_fn: Optional[Callable[[Replica], float]] = None,
        tracer=None,
        metrics=None,
        replanner=None,
    ):
        self.clock = clock
        self.scheduler = ReplicaScheduler(replicas, policy=policy, cost_fn=cost_fn)
        self.telemetry = telemetry if telemetry is not None else ServingTelemetry(clock=clock)
        self.tracer = tracer
        self.metrics = metrics
        self.replanner = replanner
        self._started = False
        self._closed = False
        self._next_request_id = 0
        for replica in self.scheduler.replicas:
            # one clock for the whole server: request timestamps/deadlines
            # are stamped here and compared in the batchers.  Replicas still
            # on the default clock adopt the server's; an explicitly
            # injected replica clock is left alone.  The tracer/metrics
            # plane is adopted the same way: replicas built without their
            # own instruments join the server's.
            if replica.clock is time.perf_counter:
                replica.clock = clock
            if replica.batcher.clock is time.perf_counter:
                replica.batcher.clock = clock
            if replica.batcher.tracer is None:
                replica.batcher.tracer = tracer
            if replica.batcher.metrics is None:
                replica.batcher.metrics = metrics
            # engines that support SoC-phase tracing expose a tracer slot
            if tracer and getattr(replica.engine, "tracer", "absent") is None:
                replica.engine.tracer = tracer
            replica.add_observer(self._observe_result)
            replica.add_batch_observer(self.telemetry.on_batch)
            if replanner:
                replica.add_batch_observer(self._observe_batch_width)

    def _observe_batch_width(self, replica_name: str, batch_size: int) -> None:
        """Feed one fused-batch width into the attached replanner."""
        self.replanner.observe_batch(batch_size)

    def _observe_result(
        self,
        replica_name: str,
        request: InferenceRequest,
        latency_s: float,
        batch_size: int,
        outcome: str,
    ) -> None:
        self.telemetry.on_result(replica_name, latency_s, batch_size, outcome)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "InferenceServer":
        """Start every replica's batcher task; idempotent."""
        for replica in self.scheduler.replicas:
            replica.start()
        if not self._started:
            self.telemetry.start()
        self._started = True
        self._closed = False
        return self

    async def drain(self, poll_s: float = 0.0005) -> None:
        """Wait until every admitted request has completed.

        Covers queued requests, open batching windows and dispatched
        batches (in-flight load counts requests from the moment they are
        pulled off the queue).
        """
        while self.scheduler.total_load() > 0:
            await asyncio.sleep(poll_s)

    async def shutdown(self, drain: bool = True) -> None:
        """Stop admission, then stop the batcher tasks.

        ``drain=True`` serves everything already admitted (the shutdown
        sentinel trails the backlog and cuts straggler windows short);
        ``drain=False`` aborts immediately, failing still-queued requests
        with :class:`~repro.serving.errors.ServerClosedError`.
        """
        self._closed = True
        for replica in self.scheduler.replicas:
            if drain:
                await replica.stop()
            else:
                await replica.abort()
        self._started = False
        self.telemetry.stop()

    async def __aenter__(self) -> "InferenceServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.shutdown(drain=exc_type is None)

    @property
    def running(self) -> bool:
        """Whether the server is started and accepting submissions."""
        return self._started and not self._closed

    # ------------------------------------------------------------------ #
    # request admission
    # ------------------------------------------------------------------ #
    def submit_nowait(
        self,
        inputs: np.ndarray,
        weights: Optional[np.ndarray] = None,
        deadline_s: Optional[float] = None,
        replica: Optional[str] = None,
    ) -> asyncio.Future:
        """Admit one request; returns the future resolving to the output column.

        ``replica`` pins the request to one named replica (compiled
        placement plans route this way); the default routes through the
        scheduler policy.  Raises
        :class:`~repro.serving.errors.ServerClosedError` when the
        server is not accepting requests and
        :class:`~repro.serving.errors.BackpressureError` when every replica
        queue is full (the rejection is also counted in telemetry).
        """
        if not self.running:
            raise ServerClosedError(
                "server is not accepting requests (call start(), and submit "
                "before shutdown())"
            )
        inputs = np.asarray(inputs)
        if inputs.ndim != 1:
            raise ValueError(
                f"a request carries one (n_in,) input column, got shape {inputs.shape}"
            )
        now = self.clock()
        # the key only needs to group identical weights within a batcher;
        # every engine resolves the default key against its bound model
        model_key = DEFAULT_MODEL_KEY if weights is None else weight_hash(weights)
        request = InferenceRequest(
            inputs=inputs,
            weights=weights,
            model_key=model_key,
            future=asyncio.get_running_loop().create_future(),
            submitted_at=now,
            deadline_at=now + deadline_s if deadline_s is not None else None,
            request_id=self._next_request_id,
        )
        self._next_request_id += 1
        span = None
        if self.tracer:
            span = self.tracer.start_span(
                "request",
                track="request",
                attrs={"request_id": request.request_id, "model_key": model_key},
            )
            request.trace = span
        try:
            routed = self.scheduler.submit(request, replica_name=replica)
        except BackpressureError:
            self.telemetry.on_reject()
            if span is not None:
                self.tracer.end_span(span, attrs={"outcome": "rejected"})
            raise
        self.telemetry.on_admit(routed.name, self.scheduler.total_load())
        if span is not None:
            span.attrs["replica"] = routed.name
            tracer = self.tracer
            request.future.add_done_callback(lambda _future: tracer.end_span(span))
        return request.future

    async def submit(
        self,
        inputs: np.ndarray,
        weights: Optional[np.ndarray] = None,
        deadline_s: Optional[float] = None,
        replica: Optional[str] = None,
    ) -> np.ndarray:
        """Admit one request and await its output column."""
        return await self.submit_nowait(
            inputs, weights=weights, deadline_s=deadline_s, replica=replica
        )

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def replica_busy_s(self) -> Dict[str, float]:
        """Engine-busy seconds per replica (utilization numerator)."""
        return {
            replica.name: replica.engine.stats.busy_s
            for replica in self.scheduler.replicas
        }

    def stats(self) -> Dict:
        """Telemetry summary extended with per-replica utilization."""
        summary = self.telemetry.summary()
        utilization = self.telemetry.utilization(self.replica_busy_s())
        for name, value in utilization.items():
            if name in summary["replicas"]:
                summary["replicas"][name]["utilization"] = value
        return summary

    def report(self) -> str:
        """Human-readable telemetry report (shared eval formatting)."""
        return self.telemetry.report(title=f"serving ({self.scheduler.policy})")
