"""Inference engines: the execution side of the serving runtime.

An :class:`InferenceEngine` turns "a model + a batch of input columns" into
output columns, behind a **compiled-weights cache** keyed by a content hash
of the weights.  Compiling is whatever is expensive for the datapath —
programming an MZI mesh for the analog backend, building the per-layer
:class:`~repro.core.nn.PhotonicMLP` engines — so repeated requests against
the same model skip mesh reprogramming entirely and only pay the streaming
cost.

Three engines cover the stack:

* :class:`GemmEngine` — one dense product on any registered
  :mod:`repro.core.backends` backend (``ideal-digital`` /
  ``quantized-digital`` / ``analog-photonic`` / user backends).
* :class:`MLPEngine` — full photonic (or float reference) MLP forward pass.
* :class:`SoCGemmEngine` — tiled GeMM offload through the cycle-accurate
  :class:`~repro.system.soc.PhotonicSoC` cluster.

Engines are synchronous and single-threaded; concurrency lives one level up
in the micro-batcher and replica scheduler.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.backends import AnalogPhotonicBackend, BackendSpec, resolve_backend
from repro.core.nn import MLP, PhotonicMLP
from repro.serving.errors import ServingError

#: model key used when a request does not carry explicit weights and the
#: engine serves its bound default model.
DEFAULT_MODEL_KEY = "default"


def weight_hash(weights: np.ndarray) -> str:
    """Content hash of a weight matrix (shape + dtype + raw bytes)."""
    weights = np.ascontiguousarray(weights)
    digest = hashlib.sha1()
    digest.update(str(weights.shape).encode())
    digest.update(str(weights.dtype).encode())
    digest.update(weights.tobytes())
    return digest.hexdigest()


@dataclass
class CompiledModel:
    """One cache entry: a model lowered onto its execution substrate.

    Attributes:
        key: weight-hash cache key.
        n_inputs / n_outputs: expected column length in and out.
        runner: callable mapping an ``(n_inputs, batch)`` column block to an
            ``(n_outputs, batch)`` result.
        compile_s: wall time spent compiling (mesh programming etc.).
    """

    key: str
    n_inputs: int
    n_outputs: int
    runner: Callable[[np.ndarray], np.ndarray]
    compile_s: float = 0.0


@dataclass
class EngineStats:
    """Counters of one engine instance."""

    compiles: int = 0
    cache_hits: int = 0
    batches: int = 0
    columns: int = 0
    busy_s: float = 0.0
    compile_s: float = 0.0

    @property
    def mean_batch(self) -> float:
        """Mean columns executed per engine batch."""
        return self.columns / self.batches if self.batches else 0.0


class InferenceEngine:
    """Base engine: compiled-weights LRU cache + batch execution.

    Subclasses implement :meth:`_compile`, which lowers a weight matrix (or
    the engine's bound default model when ``weights`` is ``None``) into a
    :class:`CompiledModel`.

    Attributes:
        name: label used by telemetry and scheduler reports.
        max_models: compiled-model cache bound (least recently used wins).
    """

    def __init__(
        self,
        name: str = "engine",
        max_models: int = 8,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if max_models < 1:
            raise ValueError("max_models must be >= 1")
        self.name = str(name)
        self.max_models = int(max_models)
        self.clock = clock
        self.stats = EngineStats()
        self._models: "OrderedDict[str, CompiledModel]" = OrderedDict()

    # ------------------------------------------------------------------ #
    # compiled-weights cache
    # ------------------------------------------------------------------ #
    def model_key(self, weights: Optional[np.ndarray]) -> str:
        """Cache key for a request's weights (``None`` = bound default model)."""
        if weights is None:
            return DEFAULT_MODEL_KEY
        return weight_hash(weights)

    def compile(
        self, weights: Optional[np.ndarray] = None, key: Optional[str] = None
    ) -> CompiledModel:
        """Return the compiled form of ``weights``, caching by content hash.

        A cache hit skips the expensive lowering (mesh reprogramming for the
        analog paths) and only refreshes the entry's LRU position.  Callers
        that already hold the content hash (the server computes it at
        admission) pass it as ``key`` so cache hits skip re-hashing the
        weights too.
        """
        if key is None:
            key = self.model_key(weights)
        cached = self._models.get(key)
        if cached is not None:
            self._models.move_to_end(key)
            self.stats.cache_hits += 1
            return cached
        started = self.clock()
        compiled = self._compile(key, weights)
        compiled.compile_s = self.clock() - started
        self.stats.compiles += 1
        self.stats.compile_s += compiled.compile_s
        self._models[key] = compiled
        while len(self._models) > self.max_models:
            self._models.popitem(last=False)
        return compiled

    def _compile(self, key: str, weights: Optional[np.ndarray]) -> CompiledModel:
        raise NotImplementedError

    @property
    def cached_models(self) -> int:
        """Number of compiled models currently resident."""
        return len(self._models)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run_batch(
        self,
        weights: Optional[np.ndarray],
        inputs: np.ndarray,
        key: Optional[str] = None,
    ) -> np.ndarray:
        """Execute one micro-batch: ``(n_in, B)`` columns in, ``(n_out, B)`` out."""
        compiled = self.compile(weights, key=key)
        inputs = np.asarray(inputs)
        if inputs.ndim != 2 or inputs.shape[0] != compiled.n_inputs:
            raise ValueError(
                f"inputs must be a ({compiled.n_inputs}, batch) column block, "
                f"got shape {inputs.shape}"
            )
        started = self.clock()
        outputs = compiled.runner(inputs)
        self.stats.busy_s += self.clock() - started
        self.stats.batches += 1
        self.stats.columns += inputs.shape[1]
        return outputs

    def latency_hint_s(self, n_columns: int) -> float:
        """Rough service-time hint for routing (0.0 = no physical model)."""
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r} models={self.cached_models}>"


class GemmEngine(InferenceEngine):
    """Dense-product engine on a registered execution backend.

    ``weights=`` binds a default model so requests without explicit weights
    are served too.  For an on-demand :class:`AnalogPhotonicBackend`, compile
    time is where the SVD + mesh programming happens: the compiled runner
    captures the programmed :class:`~repro.core.mvm.PhotonicMVM` directly, so
    serving never re-hashes or re-programs a cached model.
    """

    def __init__(
        self,
        backend: BackendSpec = None,
        weights: Optional[np.ndarray] = None,
        name: str = "gemm",
        max_models: int = 8,
        clock: Callable[[], float] = time.perf_counter,
        **backend_kwargs,
    ):
        super().__init__(name=name, max_models=max_models, clock=clock)
        self.backend = resolve_backend(backend, **backend_kwargs)
        self.default_weights = (
            np.asarray(weights, dtype=float) if weights is not None else None
        )

    def _compile(self, key: str, weights: Optional[np.ndarray]) -> CompiledModel:
        if weights is None:
            if self.default_weights is None:
                raise ServingError(
                    f"engine {self.name!r} has no bound default model; "
                    f"submit requests with explicit weights"
                )
            weights = self.default_weights
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 2:
            raise ValueError("weights must be a matrix")
        n_out, n_in = weights.shape
        backend = self.backend
        if isinstance(backend, AnalogPhotonicBackend):
            # program the mesh once, at compile time; the runner keeps the
            # programmed engine so cache hits skip mesh reprogramming
            engine = backend.engine_for(weights)
            runner = lambda X: engine.matmul(X, add_noise=backend.add_noise)  # noqa: E731
        else:
            runner = lambda X: backend.matmul(weights, X)  # noqa: E731
        return CompiledModel(key=key, n_inputs=n_in, n_outputs=n_out, runner=runner)

    def latency_hint_s(self, n_columns: int) -> float:
        """The backend's modelled service time for ``n_columns`` columns."""
        return self.backend.schedule_latency_s(n_columns)


class MLPEngine(InferenceEngine):
    """Full MLP forward-pass engine (photonic or float reference).

    The engine serves exactly its bound model; compiling builds every
    layer's :class:`~repro.core.mvm.PhotonicMVM` engine (the expensive mesh
    programming), which the cache then reuses for the lifetime of the
    replica.  Requests must not carry explicit weights.
    """

    def __init__(
        self,
        model: MLP,
        photonic: bool = True,
        name: str = "mlp",
        clock: Callable[[], float] = time.perf_counter,
        **photonic_kwargs,
    ):
        super().__init__(name=name, max_models=1, clock=clock)
        self.model = model
        self.photonic = bool(photonic)
        self.photonic_kwargs = photonic_kwargs

    def model_key(self, weights: Optional[np.ndarray]) -> str:
        """The bound model's key; rejects requests carrying explicit weights."""
        if weights is not None:
            raise ServingError(
                f"MLP engine {self.name!r} serves its bound model; "
                f"requests must not carry explicit weights"
            )
        return DEFAULT_MODEL_KEY

    def _compile(self, key: str, weights: Optional[np.ndarray]) -> CompiledModel:
        if weights is not None:
            # guard the pre-hashed key path too: explicit weights must never
            # silently compile to the bound model
            raise ServingError(
                f"MLP engine {self.name!r} serves its bound model; "
                f"requests must not carry explicit weights"
            )
        model = self.model
        if self.photonic:
            photonic = PhotonicMLP(model=model, **self.photonic_kwargs)
            forward = photonic.forward
        else:
            forward = model.forward
        # engines speak column blocks; MLP.forward speaks row batches
        runner = lambda X: np.asarray(forward(np.asarray(X, dtype=float).T)).T  # noqa: E731
        return CompiledModel(
            key=key,
            n_inputs=model.n_inputs,
            n_outputs=model.n_outputs,
            runner=runner,
        )


class SoCGemmEngine(InferenceEngine):
    """Tiled-GeMM offload engine on the full-system SoC model.

    Every micro-batch becomes one
    :meth:`~repro.system.soc.PhotonicSoC.run_tiled_gemm` offload (host MMR
    programming, sharded tile streams, double-buffered DMA), so the serving
    layer exercises the same datapath the system benchmarks measure.  The
    SoC works on integers; inputs are rounded to ``int64`` columns.

    Attributes:
        soc: the configured SoC (accelerators already attached).
        last_report: the most recent :class:`~repro.system.soc.WorkloadReport`.
        offload_cycles: cumulative simulated cycles across served batches.
        tracer: optional :class:`~repro.obs.trace.Tracer`; when set, each
            offload's :class:`~repro.system.soc.WorkloadReport` pipeline
            phases and DMA deltas attach as cycle-domain child spans under
            the currently active (engine) span.
        cost_model: optional calibrated
            :class:`~repro.compiler.costmodel.SoCCostModel` used to predict
            cycles per offload.
        drift_monitor: optional :class:`~repro.obs.drift.DriftMonitor` fed
            one (predicted, measured) cycle pair per offload, keyed by
            ``(n_out, n_in, batch)`` shape and the engine name.
        replanner: optional
            :class:`~repro.compiler.adaptive.AdaptiveReplanner` fed each
            offload's measured ``WorkloadReport`` as a refit sample (same
            opt-in discipline as tracing: default off, one truthiness
            check, bitwise invisible).  When set, drift recording predicts
            with the replanner's *current* model, so post-refit flags
            reflect the refreshed coefficients rather than the boot model.
    """

    def __init__(
        self,
        soc,
        weights: Optional[np.ndarray] = None,
        tile_rows: Optional[int] = None,
        name: str = "soc",
        max_models: int = 8,
        clock: Callable[[], float] = time.perf_counter,
        tracer=None,
        cost_model=None,
        drift_monitor=None,
        replanner=None,
    ):
        super().__init__(name=name, max_models=max_models, clock=clock)
        if not getattr(soc, "accelerators", None):
            raise ValueError("SoC engine needs a PhotonicSoC with accelerators attached")
        self.soc = soc
        self.tile_rows = tile_rows
        self.default_weights = (
            np.asarray(weights, dtype=np.int64) if weights is not None else None
        )
        self.last_report = None
        self.offload_cycles = 0
        self.tracer = tracer
        self.cost_model = cost_model
        self.drift_monitor = drift_monitor
        self.replanner = replanner

    def _compile(self, key: str, weights: Optional[np.ndarray]) -> CompiledModel:
        if weights is None:
            if self.default_weights is None:
                raise ServingError(
                    f"engine {self.name!r} has no bound default model; "
                    f"submit requests with explicit weights"
                )
            weights = self.default_weights
        weights = np.asarray(np.round(np.asarray(weights, dtype=float)), dtype=np.int64)
        if weights.ndim != 2:
            raise ValueError("weights must be a matrix")
        n_out, n_in = weights.shape

        def runner(X: np.ndarray) -> np.ndarray:
            columns = np.asarray(np.round(np.asarray(X, dtype=float)), dtype=np.int64)
            report = self.soc.run_tiled_gemm(weights, columns, tile_rows=self.tile_rows)
            self.last_report = report
            self.offload_cycles += report.cycles
            if self.tracer:
                from repro.obs.trace import attach_soc_report

                attach_soc_report(
                    self.tracer,
                    report,
                    parent=self.tracer.current,
                    end_cycle=self.offload_cycles,
                )
            if self.replanner:
                self.replanner.observe_offload(
                    (n_out, n_in, columns.shape[1]), report, tile_rows=self.tile_rows
                )
            model = self.replanner.model if self.replanner else self.cost_model
            if self.drift_monitor is not None and model is not None:
                shape = (n_out, n_in, columns.shape[1])
                predicted = model.predict_gemm(
                    n_out, n_in, columns.shape[1], tile_rows=self.tile_rows
                ).pipelined_cycles
                self.drift_monitor.record(shape, self.name, predicted, report.cycles)
            return report.result

        return CompiledModel(key=key, n_inputs=n_in, n_outputs=n_out, runner=runner)
