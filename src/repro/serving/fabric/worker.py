"""Worker-process replica: an engine + micro-batcher event loop per process.

A :class:`WorkerReplica` is the process-level unit of the serving fabric:
:func:`worker_main` runs in a spawned process, builds its engine from the
picklable :class:`WorkerSpec`, and serves a standard in-process
:class:`~repro.serving.scheduler.Replica` (bounded queue + dynamic
micro-batcher) whose requests arrive over a pickle-framed duplex pipe from
the gateway.  Every request outcome — result, deadline expiry, engine
failure, admission rejection — is reported back over the pipe with its
typed error encoded by :mod:`repro.serving.fabric.wire`, so the process
boundary never downgrades an exception to a string.

Determinism: each worker's engine is seeded with
:func:`repro.utils.rng.derive_worker_seed` (root seed + worker index), so a
multi-process load test replays the exact RNG streams of its in-process
twin — the fabric's bitwise-equivalence oracle depends on this.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Union

import numpy as np

from repro.serving.batching import InferenceRequest
from repro.serving.engine import DEFAULT_MODEL_KEY
from repro.serving.errors import BackpressureError, ServerClosedError
from repro.serving.fabric.engines import resolve_factory
from repro.serving.fabric.wire import encode_exception
from repro.serving.scheduler import Replica
from repro.utils.rng import derive_worker_seed


@dataclass
class WorkerSpec:
    """Everything a spawned worker needs to build and run its replica.

    The spec must stay picklable end-to-end (it is the spawn argument):
    the engine is described by a factory reference plus kwargs, never by a
    live instance.

    Attributes:
        name: replica label (unique within a gateway).
        engine_factory: module-level callable building the engine, or its
            ``"package.module:callable"`` dotted name.
        engine_kwargs: picklable kwargs for the factory (a derived
            per-worker seed is injected here by :func:`make_worker_specs`).
        seed: the derived per-worker seed (informational; already present
            in ``engine_kwargs`` when seeding is enabled).
        max_batch / max_wait_s: micro-batcher fusing bounds.
        max_queue_depth: worker-side admission bound; 0 rejects every
            submit (useful for backpressure fault injection).
        warm_start: compile the engine's bound default model before
            serving, so mesh programming happens outside the traffic
            window (ignored for engines without a default model).
        tracing: build a process-local :class:`~repro.obs.trace.Tracer`
            inside the worker so submits carrying gateway trace context
            get a stitched worker-side span tree (shipped back with each
            result and the final ``bye``).
    """

    name: str
    engine_factory: Union[str, Callable]
    engine_kwargs: Dict = field(default_factory=dict)
    seed: Optional[int] = None
    max_batch: int = 32
    max_wait_s: float = 0.0
    max_queue_depth: int = 256
    warm_start: bool = True
    tracing: bool = False

    def build_engine(self):
        """Instantiate the engine inside the worker process."""
        return resolve_factory(self.engine_factory)(**self.engine_kwargs)


def make_worker_specs(
    n_workers: int,
    engine_factory: Union[str, Callable],
    engine_kwargs: Optional[Dict] = None,
    root_seed: Optional[int] = None,
    seed_kwarg: str = "rng",
    name_prefix: str = "w",
    **replica_options,
) -> list:
    """Build one :class:`WorkerSpec` per worker with derived per-worker seeds.

    When ``root_seed`` is given, worker ``i`` receives
    ``derive_worker_seed(root_seed, i)`` under ``seed_kwarg`` in its engine
    kwargs — the deterministic stream-per-worker contract.  Pass
    ``root_seed=None`` for unseeded (digital) engines whose factories take
    no RNG argument.  ``replica_options`` forward to every spec
    (``max_batch``, ``max_wait_s``, ``max_queue_depth``, ``warm_start``).
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    specs = []
    for index in range(n_workers):
        kwargs = dict(engine_kwargs or {})
        seed = None
        if root_seed is not None:
            seed = derive_worker_seed(root_seed, index)
            kwargs[seed_kwarg] = seed
        specs.append(
            WorkerSpec(
                name=f"{name_prefix}{index}",
                engine_factory=engine_factory,
                engine_kwargs=kwargs,
                seed=seed,
                **replica_options,
            )
        )
    return specs


class WorkerReplica:
    """The in-process half of one worker: replica, pipe I/O, lifecycle.

    Instantiated inside the spawned process by :func:`worker_main`; the
    gateway only ever sees the pipe.  Separated from the entry point so
    tests can drive a worker replica in-process against a fake pipe.
    """

    def __init__(self, conn, spec: WorkerSpec):
        self.conn = conn
        self.spec = spec
        self.engine = spec.build_engine()
        self.tracer = None
        if spec.tracing:
            from repro.obs.trace import Tracer

            self.tracer = Tracer(prefix=spec.name, process=f"worker:{spec.name}")
            if getattr(self.engine, "tracer", "absent") is None:
                self.engine.tracer = self.tracer
        if spec.warm_start:
            try:
                self.engine.compile(None)
            except Exception:  # noqa: BLE001 - engines without a default model
                pass
        self.replica = Replica(
            spec.name,
            self.engine,
            max_batch=spec.max_batch,
            max_wait_s=spec.max_wait_s,
            max_queue_depth=max(int(spec.max_queue_depth), 1),
            tracer=self.tracer,
        )
        self.replica.add_observer(self._on_outcome)
        self._request_spans: Dict[int, object] = {}
        self._inbox: "asyncio.Queue" = asyncio.Queue()
        self._loop = asyncio.get_running_loop()

    # ------------------------------------------------------------------ #
    # pipe -> loop
    # ------------------------------------------------------------------ #
    def start_reader(self) -> threading.Thread:
        """Start the daemon thread pumping pipe messages onto the loop."""

        def pump() -> None:
            try:
                while True:
                    message = self.conn.recv()
                    self._loop.call_soon_threadsafe(self._inbox.put_nowait, message)
                    if message[0] == "shutdown":
                        return
            except (EOFError, OSError):
                self._loop.call_soon_threadsafe(self._inbox.put_nowait, ("__eof__",))

        thread = threading.Thread(
            target=pump, name=f"worker-{self.spec.name}-reader", daemon=True
        )
        thread.start()
        return thread

    # ------------------------------------------------------------------ #
    # outcomes -> pipe
    # ------------------------------------------------------------------ #
    def _on_outcome(
        self,
        replica_name: str,
        request: InferenceRequest,
        latency_s: float,
        batch_size: int,
        outcome: str,
    ) -> None:
        future = request.future
        spans = None
        if self.tracer:
            span = self._request_spans.pop(request.request_id, None)
            if span is not None:
                self.tracer.end_span(span, attrs={"outcome": outcome})
            # ship everything finished so far (this request's span tree plus
            # any batch/engine/SoC spans closed since the last result)
            spans = self.tracer.drain()
        if outcome == "ok":
            self.conn.send(
                (
                    "result",
                    request.request_id,
                    np.asarray(future.result()),
                    batch_size,
                    latency_s,
                    spans,
                )
            )
            return
        if future.cancelled():
            error = ServerClosedError("request cancelled inside the worker")
        else:
            error = future.exception()
            if error is None:  # notified as expired/error but resolved: defensive
                error = ServerClosedError(f"request finished with outcome {outcome!r}")
        self.conn.send(
            (
                "error",
                request.request_id,
                encode_exception(error),
                batch_size,
                latency_s,
                spans,
            )
        )

    # ------------------------------------------------------------------ #
    # message handling
    # ------------------------------------------------------------------ #
    def _handle_submit(self, message) -> None:
        # 6-tuple from untraced gateways; a 7th element carries the wire
        # trace context when the gateway side is tracing
        _, request_id, inputs, weights, model_key, deadline_s = message[:6]
        trace_ctx = message[6] if len(message) > 6 else None
        if self.replica.depth >= self.spec.max_queue_depth:
            # worker-side admission: the typed rejection crosses the pipe
            self.conn.send(
                (
                    "error",
                    request_id,
                    encode_exception(
                        BackpressureError(
                            replica=self.spec.name,
                            depth=self.replica.depth,
                            limit=self.spec.max_queue_depth,
                        )
                    ),
                    0,
                    0.0,
                    None,
                )
            )
            return
        now = self.replica.clock()
        request = InferenceRequest(
            inputs=np.asarray(inputs),
            weights=weights,
            model_key=model_key if model_key is not None else DEFAULT_MODEL_KEY,
            future=self._loop.create_future(),
            submitted_at=now,
            # the gateway ships the *remaining* budget; re-anchor it on this
            # process's clock (absolute deadlines do not cross clocks)
            deadline_at=now + deadline_s if deadline_s is not None else None,
            request_id=request_id,
        )
        if self.tracer and trace_ctx is not None:
            from repro.obs.trace import TraceContext

            span = self.tracer.start_span(
                "worker:request",
                parent=TraceContext.from_dict(trace_ctx),
                track="request",
                attrs={"request_id": request_id, "worker": self.spec.name},
            )
            self._request_spans[request_id] = span
            request.trace = span
        self.replica.queue.put_nowait(request)

    def stats(self) -> Dict:
        """Worker-lifetime counters shipped back in the ``bye`` message."""
        engine_stats = self.engine.stats
        batcher_stats = self.replica.batcher.stats
        return {
            "engine": {
                "batches": engine_stats.batches,
                "columns": engine_stats.columns,
                "busy_s": engine_stats.busy_s,
                "compiles": engine_stats.compiles,
                "cache_hits": engine_stats.cache_hits,
            },
            "batcher": {
                "batches": batcher_stats.batches,
                "requests": batcher_stats.requests,
                "expired": batcher_stats.expired,
                "cancelled": batcher_stats.cancelled,
                "failed": batcher_stats.failed,
                "mean_batch": batcher_stats.mean_batch,
            },
        }

    async def serve(self) -> None:
        """Serve pipe messages until shutdown or gateway EOF."""
        self.replica.start()
        self.start_reader()
        # readiness handshake: engine built (and warm-started) — the
        # gateway holds traffic until every worker has reported in, so
        # spawn/import time never lands inside a measured traffic window
        self.conn.send(("ready", self.spec.name))
        while True:
            message = await self._inbox.get()
            kind = message[0]
            if kind == "submit":
                self._handle_submit(message)
            elif kind == "shutdown":
                drain = bool(message[1])
                if drain:
                    await self.replica.stop()
                else:
                    await self.replica.abort()
                stats = self.stats()
                if self.tracer:
                    # stragglers: spans finished after their request's
                    # result shipped (e.g. the fused batch span)
                    stats["spans"] = self.tracer.drain()
                self.conn.send(("bye", stats))
                return
            elif kind == "__eof__":
                # gateway died: nothing to report results to
                await self.replica.abort()
                return


async def _serve_worker(conn, spec: WorkerSpec) -> None:
    worker = WorkerReplica(conn, spec)
    await worker.serve()


def worker_main(conn, spec: WorkerSpec) -> None:
    """Spawned-process entry point: build the replica and serve the pipe."""
    try:
        asyncio.run(_serve_worker(conn, spec))
    finally:
        conn.close()
