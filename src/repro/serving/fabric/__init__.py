"""Multi-process serving fabric: gateway, worker processes, wire protocol.

The fabric scales the in-process serving stack past the one-interpreter
ceiling: an asyncio :class:`FabricGateway` multiplexes client futures onto
spawned worker processes (one engine + micro-batcher each, fed over
pickle-framed duplex pipes) using the same
:class:`~repro.serving.scheduler.ReplicaScheduler` policies, and speaks a
length-prefixed JSON/binary frame protocol over a local socket to remote
:class:`FabricClient` callers.  Typed serving errors cross every boundary
intact, per-worker RNG streams derive deterministically from one root seed,
and request priorities plus per-tenant admission quotas shape the queue at
the gateway.
"""

from repro.serving.fabric.client import FabricClient
from repro.serving.fabric.engines import (
    ComputeHeavyBackend,
    make_compute_heavy_engine,
    make_gemm_engine,
    make_soc_gemm_engine,
    resolve_factory,
)
from repro.serving.fabric.gateway import FabricGateway, FabricRequest, WorkerHandle
from repro.serving.fabric.wire import (
    decode_exception,
    encode_exception,
    pack_arrays,
    pack_frame,
    pack_trace,
    read_frame,
    unpack_arrays,
    unpack_trace,
)
from repro.serving.fabric.worker import WorkerReplica, WorkerSpec, make_worker_specs

__all__ = [
    "ComputeHeavyBackend",
    "FabricClient",
    "FabricGateway",
    "FabricRequest",
    "WorkerHandle",
    "WorkerReplica",
    "WorkerSpec",
    "decode_exception",
    "encode_exception",
    "make_compute_heavy_engine",
    "make_gemm_engine",
    "make_soc_gemm_engine",
    "make_worker_specs",
    "pack_arrays",
    "pack_frame",
    "pack_trace",
    "read_frame",
    "resolve_factory",
    "unpack_arrays",
    "unpack_trace",
]
