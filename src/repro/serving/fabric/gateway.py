"""Asyncio gateway multiplexing client futures onto worker processes.

The :class:`FabricGateway` is the front door of the multi-process serving
fabric.  It owns a pool of spawned :mod:`worker <repro.serving.fabric.worker>`
processes (one engine + micro-batcher event loop each, fed over
pickle-framed duplex pipes) and routes admitted requests onto them with the
**same** :class:`~repro.serving.scheduler.ReplicaScheduler` policies the
in-process server uses — round-robin, least-loaded, latency-aware and the
compiler-fed cost-based router — by presenting each
:class:`WorkerHandle` through the scheduler's replica surface (``queue``,
``depth``, ``load``, ``ewma_latency_s``, ``engine.latency_hint_s``).

What the process boundary adds over :class:`InferenceServer`:

* **Credit-based dispatch with priorities.**  At most ``max_inflight``
  requests are outstanding on a worker pipe; everything else waits in a
  per-worker priority heap at the gateway, where a later high-priority
  arrival *preempts* queued (never in-flight) lower-priority work.
* **Per-tenant admission quotas.**  A tenant at its outstanding-request
  quota is rejected with the same typed
  :class:`~repro.serving.errors.BackpressureError` the bounded queues
  raise, while other tenants keep flowing.
* **Worker-crash detection.**  A worker pipe's EOF fails that worker's
  queued and in-flight requests with the typed
  :class:`~repro.serving.errors.WorkerCrashedError` and removes the worker
  from routing; the rest of the pool keeps serving.
* **Graceful drain.**  ``shutdown(drain=True)`` stops admission, serves
  the backlog, then stops every worker and joins its process.

The gateway's local surface mirrors ``InferenceServer`` (``submit`` /
``submit_nowait`` / ``stats`` / ``drain`` / async context manager), so the
:mod:`repro.serving.loadgen` drivers run unchanged against either.  The
remote surface — length-prefixed JSON/binary frames over a local TCP
socket — is served by :meth:`start_server` and spoken by
:class:`~repro.serving.fabric.client.FabricClient`.
"""

from __future__ import annotations

import asyncio
import heapq
import multiprocessing
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.engine import DEFAULT_MODEL_KEY, weight_hash
from repro.serving.errors import (
    BackpressureError,
    DeadlineExceededError,
    ServerClosedError,
    WorkerCrashedError,
)
from repro.serving.fabric import wire
from repro.serving.fabric.worker import WorkerSpec, worker_main
from repro.serving.scheduler import LATENCY_EWMA_ALPHA, ReplicaScheduler
from repro.serving.telemetry import ServingTelemetry


@dataclass
class FabricRequest:
    """One gateway-side request: routing metadata around the client future.

    Attributes:
        request_id: gateway-assigned id (matches the worker's echo).
        inputs: the ``(n_in,)`` input column.
        weights: explicit model weights or ``None`` (worker default model).
        model_key: weight-hash grouping key for worker-side batching.
        future: resolved with the output column or a typed error.
        submitted_at: gateway-clock admission timestamp.
        deadline_at: absolute gateway-clock deadline, or ``None``.
        priority: larger is more urgent; reorders *queued* work only.
        tenant: quota-accounting key, or ``None`` for unmetered traffic.
        seq: admission sequence number (FIFO tie-break within a priority).
        trace: the gateway-side request span, or ``None`` (tracing off).
    """

    request_id: int
    inputs: np.ndarray
    model_key: str
    future: asyncio.Future
    submitted_at: float
    weights: Optional[np.ndarray] = None
    deadline_at: Optional[float] = None
    priority: int = 0
    tenant: Optional[str] = None
    seq: int = 0
    trace: Optional[object] = None


class _HandleQueue:
    """The ``Replica.queue`` surface of a handle: enqueue = heap + pump."""

    def __init__(self, handle: "WorkerHandle"):
        self._handle = handle

    def put_nowait(self, request: FabricRequest) -> None:
        self._handle.enqueue(request)

    def qsize(self) -> int:
        return len(self._handle._pending)


class _HandleEngine:
    """The ``Replica.engine`` surface of a handle (routing hints only)."""

    def __init__(self, handle: "WorkerHandle"):
        self._handle = handle
        self.name = handle.name

    def latency_hint_s(self, n_columns: int) -> float:
        """Per-request service-time hint (EWMA once observed, else 0)."""
        observed = self._handle.ewma_latency_s
        return observed if observed is not None else 0.0


class WorkerHandle:
    """Gateway-side proxy of one worker process.

    Presents the scheduler's replica surface over a priority heap of
    pending requests plus a credit-bounded in-flight window on the pipe.

    Attributes:
        name: worker/replica name (from the spec).
        spec: the :class:`~repro.serving.fabric.worker.WorkerSpec`.
        max_pending: gateway-side admission bound (the scheduler's
            ``max_queue_depth``).
        max_inflight: dispatch credit: requests outstanding on the pipe.
        alive: False once the worker's pipe reported EOF.
        ewma_latency_s: smoothed end-to-end latency of completed requests.
    """

    def __init__(self, spec: WorkerSpec, max_pending: int, max_inflight: int):
        if max_pending < 1 or max_inflight < 1:
            raise ValueError("max_pending and max_inflight must be >= 1")
        self.name = spec.name
        self.spec = spec
        self.max_pending = int(max_pending)
        self.max_inflight = int(max_inflight)
        self.alive = False
        self.draining = False
        self.ewma_latency_s: Optional[float] = None
        self.process = None
        self.conn = None
        self.worker_stats: Optional[Dict] = None
        self.queue = _HandleQueue(self)
        self.engine = _HandleEngine(self)
        self.inflight_requests: Dict[int, FabricRequest] = {}
        self._pending: List[Tuple[int, int, FabricRequest]] = []
        self._bye = asyncio.Event()
        self._ready = asyncio.Event()
        self._dispatch: Optional[Callable[["WorkerHandle"], None]] = None

    # -- the scheduler's replica surface ------------------------------- #
    @property
    def depth(self) -> int:
        """Requests waiting in the gateway-side priority heap."""
        return len(self._pending)

    @property
    def inflight(self) -> int:
        """Requests outstanding on the worker pipe."""
        return len(self.inflight_requests)

    @property
    def load(self) -> int:
        """Pending plus in-flight (the routing/drain load metric)."""
        return self.depth + self.inflight

    @property
    def max_queue_depth(self) -> int:
        """Admission bound; 0 once the worker is dead (never routed to)."""
        return self.max_pending if self.alive else 0

    def enqueue(self, request: FabricRequest) -> None:
        """Admit one routed request into the priority heap and dispatch."""
        heapq.heappush(self._pending, (-request.priority, request.seq, request))
        if self._dispatch is not None:
            self._dispatch(self)

    def pop_pending(self) -> Optional[FabricRequest]:
        """Highest-priority queued request (FIFO within a priority)."""
        if not self._pending:
            return None
        return heapq.heappop(self._pending)[2]

    def drain_pending(self) -> List[FabricRequest]:
        """Remove and return every queued (undispatched) request."""
        drained = [entry[2] for entry in self._pending]
        self._pending.clear()
        return drained

    def observe_latency(self, latency_s: float) -> None:
        """Fold one completed-request latency into the routing EWMA."""
        previous = self.ewma_latency_s
        self.ewma_latency_s = (
            latency_s
            if previous is None
            else LATENCY_EWMA_ALPHA * latency_s + (1 - LATENCY_EWMA_ALPHA) * previous
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WorkerHandle {self.name!r} alive={self.alive} "
            f"pending={self.depth} inflight={self.inflight}>"
        )


class FabricGateway:
    """Front door of the multi-process serving fabric.

    Attributes:
        scheduler: the reused routing/admission layer over worker handles.
        telemetry: end-to-end metrics sink (gateway clock).
        tenant_quotas: per-tenant outstanding-request bounds.
        default_tenant_quota: bound for tenants not listed explicitly
            (``None`` = unmetered); requests without a tenant are never
            metered.
        tracer: optional :class:`~repro.obs.trace.Tracer` (gateway
            process).  When set, every admitted request gets a gateway
            span whose context crosses the worker pipes; worker specs are
            switched to ``tracing=True`` so worker-side span trees ship
            back and stitch under it.
    """

    def __init__(
        self,
        specs: Sequence[WorkerSpec],
        policy: str = "least-loaded",
        cost_fn: Optional[Callable[[WorkerHandle], float]] = None,
        max_pending: int = 256,
        max_inflight: int = 64,
        tenant_quotas: Optional[Dict[str, int]] = None,
        default_tenant_quota: Optional[int] = None,
        mp_context: str = "spawn",
        clock: Callable[[], float] = time.perf_counter,
        telemetry: Optional[ServingTelemetry] = None,
        tracer=None,
    ):
        if not specs:
            raise ValueError("gateway needs at least one worker spec")
        self.clock = clock
        self.tracer = tracer
        if tracer:
            # tracing gateways need tracing workers, or the cross-process
            # half of every trace would silently be missing
            for spec in specs:
                spec.tracing = True
        self.handles = [WorkerHandle(spec, max_pending, max_inflight) for spec in specs]
        self.scheduler = ReplicaScheduler(self.handles, policy=policy, cost_fn=cost_fn)
        self.telemetry = telemetry if telemetry is not None else ServingTelemetry(clock=clock)
        self.tenant_quotas = dict(tenant_quotas or {})
        self.default_tenant_quota = default_tenant_quota
        self._tenant_outstanding: Dict[str, int] = {}
        self._mp_context = multiprocessing.get_context(mp_context)
        self._by_name = {handle.name: handle for handle in self.handles}
        self._started = False
        self._closed = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._next_request_id = 0
        self._next_seq = 0
        for handle in self.handles:
            handle._dispatch = self._pump

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self, ready_timeout_s: float = 60.0) -> "FabricGateway":
        """Spawn every worker process and wait for its readiness handshake.

        Returning only once every worker has built (and warm-started) its
        engine keeps spawn/import time out of measured traffic windows.  A
        worker that dies before reporting ready surfaces as
        :class:`~repro.serving.errors.WorkerCrashedError` here rather than
        on the first submitted request; idempotent for already-live
        workers.
        """
        self._loop = asyncio.get_running_loop()
        spawned = []
        for handle in self.handles:
            if handle.process is not None and handle.alive:
                continue
            parent_conn, child_conn = self._mp_context.Pipe(duplex=True)
            process = self._mp_context.Process(
                target=worker_main,
                args=(child_conn, handle.spec),
                name=f"fabric-{handle.name}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            handle.process = process
            handle.conn = parent_conn
            handle.alive = True
            handle.draining = False
            handle._bye = asyncio.Event()
            handle._ready = asyncio.Event()
            self._start_reader(handle)
            spawned.append(handle)
        if not self._started:
            self.telemetry.start()
        self._started = True
        self._closed = False
        for handle in spawned:
            try:
                await asyncio.wait_for(
                    handle._ready.wait(), timeout=ready_timeout_s
                )
            except asyncio.TimeoutError:
                raise WorkerCrashedError(
                    worker=handle.name,
                    detail=f"no readiness handshake within {ready_timeout_s}s",
                ) from None
            if not handle.alive:
                raise WorkerCrashedError(
                    worker=handle.name, detail="worker died during startup"
                )
        return self

    def _start_reader(self, handle: WorkerHandle) -> None:
        import threading

        loop = self._loop

        def pump() -> None:
            try:
                while True:
                    message = handle.conn.recv()
                    loop.call_soon_threadsafe(self._on_message, handle, message)
                    if message[0] == "bye":
                        return
            except (EOFError, OSError):
                loop.call_soon_threadsafe(self._on_worker_eof, handle)

        threading.Thread(
            target=pump, name=f"gateway-{handle.name}-reader", daemon=True
        ).start()

    async def drain(self, poll_s: float = 0.001) -> None:
        """Wait until every admitted request has completed."""
        while any(handle.load > 0 for handle in self.handles):
            await asyncio.sleep(poll_s)

    async def shutdown(self, drain: bool = True, join_timeout_s: float = 10.0) -> None:
        """Stop admission, optionally serve the backlog, stop the workers.

        ``drain=True`` serves everything already admitted before stopping;
        ``drain=False`` fails queued and in-flight requests with
        :class:`~repro.serving.errors.ServerClosedError` and aborts the
        workers.  Worker processes are joined (then terminated if they
        ignore the deadline), so no zombie processes outlive the gateway.
        """
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if drain:
            await self.drain()
        else:
            self._fail_outstanding(ServerClosedError("gateway aborted before serving"))
        for handle in self.handles:
            if not handle.alive or handle.conn is None:
                continue
            handle.draining = True
            try:
                handle.conn.send(("shutdown", drain))
            except (OSError, ValueError):
                handle._bye.set()
        await asyncio.gather(
            *(self._reap(handle, join_timeout_s) for handle in self.handles)
        )
        self._started = False
        self.telemetry.stop()

    async def _reap(self, handle: WorkerHandle, join_timeout_s: float) -> None:
        if handle.process is None:
            return
        try:
            await asyncio.wait_for(handle._bye.wait(), timeout=join_timeout_s)
        except asyncio.TimeoutError:
            pass
        process = handle.process
        await asyncio.get_running_loop().run_in_executor(
            None, process.join, join_timeout_s
        )
        if process.is_alive():
            process.terminate()
            await asyncio.get_running_loop().run_in_executor(None, process.join, 2.0)
        handle.alive = False
        if handle.conn is not None:
            handle.conn.close()
            handle.conn = None

    async def __aenter__(self) -> "FabricGateway":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.shutdown(drain=exc_type is None)

    @property
    def running(self) -> bool:
        """True while the gateway accepts new requests."""
        return self._started and not self._closed

    def kill_worker(self, name: str) -> None:
        """Fault injection: SIGKILL one worker process (crash-path testing)."""
        handle = self._handle_named(name)
        if handle.process is not None:
            handle.process.kill()

    def _handle_named(self, name: str) -> WorkerHandle:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"unknown worker {name!r} (pool: {sorted(self._by_name)})"
            ) from None

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def submit_nowait(
        self,
        inputs: np.ndarray,
        weights: Optional[np.ndarray] = None,
        deadline_s: Optional[float] = None,
        replica: Optional[str] = None,
        priority: int = 0,
        tenant: Optional[str] = None,
        trace=None,
    ) -> asyncio.Future:
        """Admit one request; returns the future resolving to the output column.

        Raises :class:`~repro.serving.errors.ServerClosedError` when the
        gateway is not accepting requests,
        :class:`~repro.serving.errors.BackpressureError` when the tenant is
        at quota or every eligible worker queue is full, and
        :class:`~repro.serving.errors.WorkerCrashedError` when the pinned
        worker (or the whole pool) is dead.  ``replica`` pins to one named
        worker (no failover), matching the in-process server's surface.

        ``trace`` optionally parents the gateway span on an upstream
        context (a :class:`~repro.obs.trace.TraceContext` or its wire
        dictionary, as shipped in a socket client's submit header);
        ignored when the gateway has no tracer.
        """
        if not self.running:
            raise ServerClosedError(
                "gateway is not accepting requests (call start(), and submit "
                "before shutdown())"
            )
        inputs = np.asarray(inputs)
        if inputs.ndim != 1:
            raise ValueError(
                f"a request carries one (n_in,) input column, got shape {inputs.shape}"
            )
        if tenant is not None:
            quota = self.tenant_quotas.get(tenant, self.default_tenant_quota)
            outstanding = self._tenant_outstanding.get(tenant, 0)
            if quota is not None and outstanding >= int(quota):
                self.telemetry.on_reject()
                raise BackpressureError(
                    replica=f"tenant:{tenant}", depth=outstanding, limit=int(quota)
                )
        if replica is not None and not self._handle_named(replica).alive:
            raise WorkerCrashedError(
                worker=replica, detail="pinned worker is no longer alive"
            )
        if not any(handle.alive for handle in self.handles):
            raise WorkerCrashedError(
                worker="*", detail="every worker process has exited"
            )
        now = self.clock()
        model_key = DEFAULT_MODEL_KEY if weights is None else weight_hash(weights)
        request = FabricRequest(
            request_id=self._next_request_id,
            inputs=inputs,
            weights=weights,
            model_key=model_key,
            future=asyncio.get_running_loop().create_future(),
            submitted_at=now,
            deadline_at=now + deadline_s if deadline_s is not None else None,
            priority=int(priority),
            tenant=tenant,
            seq=self._next_seq,
        )
        self._next_request_id += 1
        self._next_seq += 1
        span = None
        if self.tracer:
            # the span must exist before routing: enqueueing synchronously
            # pumps the pipe, and the submit tuple carries the span context
            parent = wire.unpack_trace(trace) if isinstance(trace, dict) else trace
            span = self.tracer.start_span(
                "request",
                parent=parent,
                track="request",
                attrs={"request_id": request.request_id, "model_key": model_key},
            )
            request.trace = span
        try:
            routed = self.scheduler.submit(request, replica_name=replica)
        except BackpressureError:
            self.telemetry.on_reject()
            if span is not None:
                self.tracer.end_span(span, attrs={"outcome": "rejected"})
            raise
        if span is not None:
            span.attrs["worker"] = routed.name
            tracer = self.tracer
            request.future.add_done_callback(lambda _future: tracer.end_span(span))
        if tenant is not None:
            self._tenant_outstanding[tenant] = (
                self._tenant_outstanding.get(tenant, 0) + 1
            )
        self.telemetry.on_admit(routed.name, self.scheduler.total_load())
        return request.future

    async def submit(
        self,
        inputs: np.ndarray,
        weights: Optional[np.ndarray] = None,
        deadline_s: Optional[float] = None,
        replica: Optional[str] = None,
        priority: int = 0,
        tenant: Optional[str] = None,
    ) -> np.ndarray:
        """Admit one request and await its output column."""
        return await self.submit_nowait(
            inputs,
            weights=weights,
            deadline_s=deadline_s,
            replica=replica,
            priority=priority,
            tenant=tenant,
        )

    # ------------------------------------------------------------------ #
    # dispatch and completion
    # ------------------------------------------------------------------ #
    def _pump(self, handle: WorkerHandle) -> None:
        """Dispatch queued requests while the handle has pipe credit."""
        while handle.alive and handle.inflight < handle.max_inflight:
            request = handle.pop_pending()
            if request is None:
                return
            now = self.clock()
            if request.deadline_at is not None and now > request.deadline_at:
                waited = now - request.submitted_at
                self._finish(
                    handle,
                    request,
                    "expired",
                    error=DeadlineExceededError(
                        waited_s=waited,
                        deadline_s=request.deadline_at - request.submitted_at,
                    ),
                )
                continue
            remaining = (
                request.deadline_at - now if request.deadline_at is not None else None
            )
            handle.inflight_requests[request.request_id] = request
            message = (
                "submit",
                request.request_id,
                request.inputs,
                request.weights,
                request.model_key,
                remaining,
            )
            if request.trace is not None:
                message += (wire.pack_trace(request.trace),)
            try:
                handle.conn.send(message)
            except (OSError, ValueError, BrokenPipeError):
                handle.inflight_requests.pop(request.request_id, None)
                self._on_worker_eof(handle)
                return

    def _finish(
        self,
        handle: WorkerHandle,
        request: FabricRequest,
        outcome: str,
        result: Optional[np.ndarray] = None,
        error: Optional[Exception] = None,
        batch_size: int = 1,
    ) -> None:
        """Resolve one request's future and account its final outcome."""
        latency_s = self.clock() - request.submitted_at
        if not request.future.done():
            if outcome == "ok":
                request.future.set_result(result)
            else:
                request.future.set_exception(error)
        if request.tenant is not None:
            left = self._tenant_outstanding.get(request.tenant, 0) - 1
            if left > 0:
                self._tenant_outstanding[request.tenant] = left
            else:
                self._tenant_outstanding.pop(request.tenant, None)
        if outcome == "ok":
            handle.observe_latency(latency_s)
        self.telemetry.on_result(handle.name, latency_s, batch_size, outcome)

    def _on_message(self, handle: WorkerHandle, message) -> None:
        kind = message[0]
        if kind == "result":
            # tracing workers append their drained span dicts as a 6th field
            _, request_id, output, batch_size, _worker_latency = message[:5]
            if self.tracer and len(message) > 5:
                self.tracer.ingest(message[5])
            request = handle.inflight_requests.pop(request_id, None)
            if request is not None:
                self._finish(
                    handle, request, "ok", result=np.asarray(output),
                    batch_size=int(batch_size),
                )
                self.telemetry.on_batch(handle.name, int(batch_size))
            self._pump(handle)
        elif kind == "error":
            _, request_id, payload, batch_size, _worker_latency = message[:5]
            if self.tracer and len(message) > 5:
                self.tracer.ingest(message[5])
            request = handle.inflight_requests.pop(request_id, None)
            if request is not None:
                error = wire.decode_exception(payload)
                outcome = (
                    "expired" if isinstance(error, DeadlineExceededError) else "error"
                )
                self._finish(
                    handle, request, outcome, error=error,
                    batch_size=max(int(batch_size), 1),
                )
            self._pump(handle)
        elif kind == "ready":
            handle._ready.set()
        elif kind == "bye":
            handle.worker_stats = message[1]
            if self.tracer and isinstance(handle.worker_stats, dict):
                self.tracer.ingest(handle.worker_stats.pop("spans", None))
            handle._bye.set()

    def _on_worker_eof(self, handle: WorkerHandle) -> None:
        """Worker pipe EOF: crash unless we are the ones shutting it down."""
        was_alive = handle.alive
        handle.alive = False
        handle._bye.set()
        handle._ready.set()  # unblock a start() still waiting on this worker
        if handle.draining or not was_alive:
            return
        error_detail = "worker process exited unexpectedly"
        exit_code = handle.process.exitcode if handle.process is not None else None
        if exit_code is not None:
            error_detail = f"worker process exited with code {exit_code}"
        for request in list(handle.inflight_requests.values()):
            self._finish(
                handle,
                request,
                "error",
                error=WorkerCrashedError(worker=handle.name, detail=error_detail),
            )
        handle.inflight_requests.clear()
        for request in handle.drain_pending():
            self._finish(
                handle,
                request,
                "error",
                error=WorkerCrashedError(worker=handle.name, detail=error_detail),
            )

    def _fail_outstanding(self, error: Exception) -> None:
        for handle in self.handles:
            for request in handle.drain_pending():
                self._finish(handle, request, "error", error=error)
            for request in list(handle.inflight_requests.values()):
                self._finish(handle, request, "error", error=error)
            handle.inflight_requests.clear()

    # ------------------------------------------------------------------ #
    # remote front door (length-prefixed frames over TCP)
    # ------------------------------------------------------------------ #
    async def start_server(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        """Serve the wire protocol on a local socket; returns (host, port)."""
        if self._server is not None:
            raise RuntimeError("wire server already running")
        self._server = await asyncio.start_server(self._handle_client, host, port)
        address = self._server.sockets[0].getsockname()
        return address[0], address[1]

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()

        async def send(header: Dict, payload: bytes = b"") -> None:
            async with write_lock:
                writer.write(wire.pack_frame(header, payload))
                await writer.drain()

        async def relay(client_id, future: asyncio.Future) -> None:
            try:
                output = await future
            except Exception as exc:  # noqa: BLE001 - typed errors cross the wire
                await send(
                    {"kind": "error", "id": client_id, "error": wire.encode_exception(exc)}
                )
            else:
                specs, payload = wire.pack_arrays([np.asarray(output)])
                await send(
                    {"kind": "result", "id": client_id, "arrays": specs}, payload
                )

        relays = set()
        try:
            while True:
                try:
                    header, payload = await wire.read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    return
                kind = header.get("kind")
                if kind == "submit":
                    arrays = wire.unpack_arrays(header.get("arrays", []), payload)
                    inputs = arrays[0]
                    weights = arrays[1] if len(arrays) > 1 else None
                    client_id = header.get("id")
                    try:
                        future = self.submit_nowait(
                            inputs,
                            weights=weights,
                            deadline_s=header.get("deadline_s"),
                            replica=header.get("worker"),
                            priority=int(header.get("priority", 0)),
                            tenant=header.get("tenant"),
                            trace=header.get("trace"),
                        )
                    except Exception as exc:  # noqa: BLE001 - typed across the wire
                        await send(
                            {
                                "kind": "error",
                                "id": client_id,
                                "error": wire.encode_exception(exc),
                            }
                        )
                    else:
                        task = asyncio.ensure_future(relay(client_id, future))
                        relays.add(task)
                        task.add_done_callback(relays.discard)
                elif kind == "stats":
                    await send(
                        {"kind": "stats", "id": header.get("id"), "stats": self.stats()}
                    )
                elif kind == "close":
                    return
        finally:
            for task in relays:
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict:
        """Telemetry summary extended with per-worker fabric state."""
        summary = self.telemetry.summary()
        summary["fabric"] = {
            "policy": self.scheduler.policy,
            "workers": {
                handle.name: {
                    "alive": handle.alive,
                    "pending": handle.depth,
                    "inflight": handle.inflight,
                    "seed": handle.spec.seed,
                    "worker_stats": handle.worker_stats,
                }
                for handle in self.handles
            },
            "tenant_outstanding": dict(self._tenant_outstanding),
        }
        return summary

    def report(self) -> str:
        """Human-readable telemetry report (shared eval formatting)."""
        return self.telemetry.report(
            title=f"serving fabric ({self.scheduler.policy}, "
            f"{len(self.handles)} workers)"
        )
