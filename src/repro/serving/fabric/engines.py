"""Picklable engine factories for worker processes.

A spawned worker cannot receive a live engine — meshes, SoCs and backend
caches do not pickle — so a :class:`~repro.serving.fabric.worker.WorkerSpec`
carries a *factory* (a module-level callable, or its ``"module:attr"``
dotted name) plus picklable kwargs, and the engine is built inside the
worker process.  This mirrors the :mod:`repro.eval.sweeps` contract for
process-pool experiments: module-level callables, picklable arguments,
backend *names* rather than instances.

The module also defines :class:`ComputeHeavyBackend`, the benchmark
backend for the fabric-vs-single-process comparison: its ``matmul`` holds
the interpreter for a configurable amount of host-side work
(``spin_iters`` GIL-held Python iterations per column) and blocks for a
configurable simulated accelerator service time (``service_s_per_column``,
the modulator-schedule analogue of
``AnalogPhotonicBackend.schedule_latency_s``).  Inside one asyncio server
every engine call executes inline on the event loop, so both components
serialize; across worker processes both overlap — which is exactly the
ceiling the fabric removes.
"""

from __future__ import annotations

import importlib
import math
import time
from typing import Callable, Optional, Union

import numpy as np

from repro.core.backends import IdealDigitalBackend
from repro.serving.engine import GemmEngine, InferenceEngine


class ComputeHeavyBackend(IdealDigitalBackend):
    """Exact digital product plus deterministic host work and service time.

    Results are bitwise-identical to :class:`IdealDigitalBackend` — the
    extra work only costs time, so equivalence oracles hold while the
    backend saturates a serving layer the way a real compute-dense
    workload would.

    Attributes:
        spin_iters: GIL-held Python-loop iterations per input column
            (host-side driver work; parallelises across worker processes
            on multi-core hosts).
        service_s_per_column: blocking wall-time per input column (the
            simulated accelerator occupancy; overlaps across worker
            processes on any host, exactly like waiting on real hardware).
    """

    name = "compute-heavy"

    def __init__(self, spin_iters: int = 0, service_s_per_column: float = 0.0):
        if spin_iters < 0 or service_s_per_column < 0:
            raise ValueError("spin_iters and service_s_per_column must be >= 0")
        self.spin_iters = int(spin_iters)
        self.service_s_per_column = float(service_s_per_column)

    def matmul(self, weights: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """``weights @ inputs`` after charging the configured work."""
        result = super().matmul(weights, inputs)
        n_columns = inputs.shape[1] if np.ndim(inputs) == 2 else 1
        checksum = 0.0
        for index in range(self.spin_iters * n_columns):
            checksum += math.sqrt(index + 1.0)
        self._checksum = checksum  # keep the loop un-optimisable
        if self.service_s_per_column > 0:
            time.sleep(self.service_s_per_column * n_columns)
        return result

    def schedule_latency_s(self, n_columns: int) -> float:
        """The blocking service-time component (the routable cost hint)."""
        return self.service_s_per_column * n_columns


def resolve_factory(factory: Union[str, Callable]) -> Callable:
    """Resolve an engine factory spec: callable pass-through or ``"module:attr"``."""
    if callable(factory):
        return factory
    if isinstance(factory, str):
        module_name, _, attr = factory.partition(":")
        if not module_name or not attr:
            raise ValueError(
                f"factory string must look like 'package.module:callable', "
                f"got {factory!r}"
            )
        resolved = getattr(importlib.import_module(module_name), attr)
        if not callable(resolved):
            raise TypeError(f"{factory!r} resolved to non-callable {resolved!r}")
        return resolved
    raise TypeError(f"cannot resolve engine factory from {type(factory).__name__}")


def make_gemm_engine(
    backend=None,
    weights: Optional[np.ndarray] = None,
    name: str = "gemm",
    **backend_kwargs,
) -> InferenceEngine:
    """Build a :class:`GemmEngine` on a named registry backend.

    The default worker engine factory: ``backend`` is a registry name (or
    an :class:`~repro.core.backends.ExecutionBackend` instance picklable by
    value), ``backend_kwargs`` go to the backend factory — this is where a
    derived per-worker seed arrives as ``rng=`` for the analog backend.
    """
    return GemmEngine(backend=backend, weights=weights, name=name, **backend_kwargs)


def make_compute_heavy_engine(
    weights: Optional[np.ndarray] = None,
    spin_iters: int = 0,
    service_s_per_column: float = 0.0,
    name: str = "compute-heavy",
) -> InferenceEngine:
    """Build a :class:`GemmEngine` on a :class:`ComputeHeavyBackend`."""
    backend = ComputeHeavyBackend(
        spin_iters=spin_iters, service_s_per_column=service_s_per_column
    )
    return GemmEngine(backend=backend, weights=weights, name=name)


def make_soc_gemm_engine(
    weights: Optional[np.ndarray] = None,
    n_pes: int = 1,
    tile_rows: Optional[int] = None,
    name: str = "soc",
) -> InferenceEngine:
    """Build an :class:`~repro.serving.engine.SoCGemmEngine` inside a worker.

    A live :class:`~repro.system.soc.PhotonicSoC` does not pickle, so the
    worker constructs the whole cluster (``n_pes`` photonic accelerators)
    from scratch — this factory is how the fabric serves cycle-accurate
    tiled offloads, and (with ``WorkerSpec.tracing``) how SoC pipeline
    phases show up in cross-process traces.
    """
    from repro.serving.engine import SoCGemmEngine
    from repro.system import PhotonicSoC

    soc = PhotonicSoC()
    for _ in range(max(int(n_pes), 1)):
        soc.add_photonic_accelerator()
    return SoCGemmEngine(soc, weights=weights, tile_rows=tile_rows, name=name)
