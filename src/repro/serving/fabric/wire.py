"""Wire protocol of the serving fabric: framing, arrays, typed errors.

Two different transports cross process boundaries in the fabric, and both
are defined here:

* **Client <-> gateway** — length-prefixed frames over a local TCP
  socket: a fixed ``!II`` prefix (JSON header length, binary payload
  length), a UTF-8 JSON header describing the message, and a raw binary
  payload holding any ndarrays back-to-back.  Arrays are described in the
  header (``dtype``/``shape``/``nbytes``) and sliced out of the payload
  without any base64/pickle round-trip.
* **Gateway <-> worker** — pickle-framed duplex pipes
  (``multiprocessing.Pipe``), the same plumbing the
  :mod:`repro.eval.sweeps` process pool already relies on.  Messages are
  plain tuples; only this module's :func:`encode_exception` /
  :func:`decode_exception` dictionaries and ndarrays cross the pipe, so
  every message stays picklable by construction.

Typed errors must survive both transports: an exception is flattened to a
JSON-safe dictionary and rebuilt as the *same* exception type on the far
side, so a caller's ``except BackpressureError`` works identically against
an in-process server, a worker pipe, and a remote gateway socket.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.errors import (
    BackpressureError,
    DeadlineExceededError,
    ServerClosedError,
    ServingError,
    WorkerCrashedError,
)
from repro.system.faults import EmptyCampaignError

#: frame prefix: (header_bytes, payload_bytes) lengths, network byte order.
FRAME_PREFIX = struct.Struct("!II")

#: refuse to read frames beyond this (corrupt-stream guard, not a quota).
MAX_FRAME_BYTES = 256 * 1024 * 1024


# --------------------------------------------------------------------- #
# ndarray <-> (spec, bytes)
# --------------------------------------------------------------------- #
def pack_arrays(arrays: Sequence[Optional[np.ndarray]]) -> Tuple[List, bytes]:
    """Flatten arrays into (specs, payload) for one frame.

    ``None`` entries are preserved (spec ``None``), so optional fields like
    a request's explicit weights keep their position.
    """
    specs: List = []
    chunks: List[bytes] = []
    for array in arrays:
        if array is None:
            specs.append(None)
            continue
        array = np.ascontiguousarray(array)
        data = array.tobytes()
        specs.append(
            {"dtype": array.dtype.str, "shape": list(array.shape), "nbytes": len(data)}
        )
        chunks.append(data)
    return specs, b"".join(chunks)


def unpack_arrays(specs: Sequence, payload: bytes) -> List[Optional[np.ndarray]]:
    """Rebuild the arrays a frame header describes from its binary payload."""
    arrays: List[Optional[np.ndarray]] = []
    offset = 0
    for spec in specs:
        if spec is None:
            arrays.append(None)
            continue
        nbytes = int(spec["nbytes"])
        chunk = payload[offset : offset + nbytes]
        if len(chunk) != nbytes:
            raise ValueError(
                f"frame payload truncated: expected {nbytes} bytes at offset "
                f"{offset}, got {len(chunk)}"
            )
        arrays.append(
            np.frombuffer(chunk, dtype=np.dtype(spec["dtype"]))
            .reshape(tuple(spec["shape"]))
            .copy()
        )
        offset += nbytes
    return arrays


# --------------------------------------------------------------------- #
# frames
# --------------------------------------------------------------------- #
def pack_frame(header: Dict, payload: bytes = b"") -> bytes:
    """Serialize one frame: ``!II`` prefix + JSON header + binary payload."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return FRAME_PREFIX.pack(len(header_bytes), len(payload)) + header_bytes + payload


async def read_frame(reader: asyncio.StreamReader) -> Tuple[Dict, bytes]:
    """Read one frame from an asyncio stream; raises ``IncompleteReadError`` at EOF."""
    prefix = await reader.readexactly(FRAME_PREFIX.size)
    header_len, payload_len = FRAME_PREFIX.unpack(prefix)
    if header_len + payload_len > MAX_FRAME_BYTES:
        raise ValueError(
            f"refusing oversized frame ({header_len + payload_len} bytes > "
            f"{MAX_FRAME_BYTES}); stream is corrupt or hostile"
        )
    header = json.loads((await reader.readexactly(header_len)).decode("utf-8"))
    payload = await reader.readexactly(payload_len) if payload_len else b""
    return header, payload


# --------------------------------------------------------------------- #
# trace context across process boundaries
# --------------------------------------------------------------------- #
def pack_trace(trace) -> Optional[Dict]:
    """Flatten a span/trace context into a JSON-safe wire dictionary.

    Accepts a :class:`~repro.obs.trace.Span`, a
    :class:`~repro.obs.trace.TraceContext`, an already-flattened
    dictionary, or ``None`` (tracing off) — whatever the near side holds.
    The wire form is the two-field context dictionary, which both the
    socket JSON header and the pickle pipes carry unchanged.
    """
    if trace is None:
        return None
    if isinstance(trace, dict):
        return {"trace_id": str(trace["trace_id"]), "span_id": str(trace["span_id"])}
    context = getattr(trace, "context", trace)
    return {"trace_id": context.trace_id, "span_id": context.span_id}


def unpack_trace(payload: Optional[Dict]):
    """Rebuild a :class:`~repro.obs.trace.TraceContext` from its wire form.

    ``None`` (or a header with no trace field) passes through as ``None``
    so untraced requests cost nothing on the far side.
    """
    if payload is None:
        return None
    from repro.obs.trace import TraceContext

    return TraceContext.from_dict(payload)


# --------------------------------------------------------------------- #
# typed errors across process boundaries
# --------------------------------------------------------------------- #
def encode_exception(exc: BaseException) -> Dict:
    """Flatten an exception into a JSON-safe dictionary (see :func:`decode_exception`)."""
    if isinstance(exc, BackpressureError):
        return {
            "kind": "backpressure",
            "replica": exc.replica,
            "depth": exc.depth,
            "limit": exc.limit,
        }
    if isinstance(exc, DeadlineExceededError):
        return {
            "kind": "deadline",
            "waited_s": exc.waited_s,
            "deadline_s": exc.deadline_s,
        }
    if isinstance(exc, WorkerCrashedError):
        return {"kind": "worker-crashed", "worker": exc.worker, "detail": exc.detail}
    if isinstance(exc, EmptyCampaignError):
        # fault-campaign rates queried remotely: keep the type so callers
        # can distinguish "no runs yet" from a genuine serving failure
        return {"kind": "empty-campaign", "message": str(exc)}
    if isinstance(exc, ServerClosedError):
        return {"kind": "server-closed", "message": str(exc)}
    if isinstance(exc, ServingError):
        return {"kind": "serving", "message": str(exc)}
    return {"kind": "generic", "type": type(exc).__name__, "message": str(exc)}


def decode_exception(payload: Dict) -> Exception:
    """Rebuild the typed exception :func:`encode_exception` flattened.

    Unknown kinds degrade to :class:`ServingError` with the original type
    name preserved in the message — never a silent ``KeyError`` while
    handling someone else's failure.
    """
    kind = payload.get("kind")
    if kind == "backpressure":
        return BackpressureError(
            replica=payload["replica"], depth=payload["depth"], limit=payload["limit"]
        )
    if kind == "deadline":
        return DeadlineExceededError(
            waited_s=payload["waited_s"], deadline_s=payload["deadline_s"]
        )
    if kind == "worker-crashed":
        return WorkerCrashedError(worker=payload["worker"], detail=payload["detail"])
    if kind == "empty-campaign":
        return EmptyCampaignError(payload.get("message", "empty campaign"))
    if kind == "server-closed":
        return ServerClosedError(payload.get("message", "server closed"))
    if kind == "serving":
        return ServingError(payload.get("message", "serving error"))
    type_name = payload.get("type", "Exception")
    message = payload.get("message", "")
    return ServingError(f"{type_name}: {message}")
