"""Asyncio client for the gateway's wire protocol.

A :class:`FabricClient` speaks the length-prefixed JSON/binary frame
protocol of :mod:`repro.serving.fabric.wire` against a gateway's TCP front
door.  It multiplexes any number of concurrent requests over one
connection: each submit carries a client-side id, a single reader task
resolves the matching future when the gateway answers, and typed serving
errors (:class:`~repro.serving.errors.BackpressureError`,
:class:`~repro.serving.errors.DeadlineExceededError`,
:class:`~repro.serving.errors.WorkerCrashedError`, ...) are rebuilt as the
same exception type on this side of the socket.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional

import numpy as np

from repro.serving.errors import ServerClosedError
from repro.serving.fabric import wire


class FabricClient:
    """One multiplexed wire-protocol connection to a gateway front door."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._write_lock = asyncio.Lock()
        self._next_id = 0
        self._outstanding: Dict[int, asyncio.Future] = {}
        self._stats: Dict[int, asyncio.Future] = {}
        self._reader_task = asyncio.ensure_future(self._read_loop())
        self._closed = False

    @classmethod
    async def connect(cls, host: str, port: int) -> "FabricClient":
        """Open a connection to a gateway served by ``start_server``."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                header, payload = await wire.read_frame(self._reader)
                kind = header.get("kind")
                client_id = header.get("id")
                if kind == "result":
                    future = self._outstanding.pop(client_id, None)
                    if future is not None and not future.done():
                        arrays = wire.unpack_arrays(header.get("arrays", []), payload)
                        future.set_result(arrays[0])
                elif kind == "error":
                    future = self._outstanding.pop(client_id, None)
                    if future is not None and not future.done():
                        future.set_exception(wire.decode_exception(header["error"]))
                elif kind == "stats":
                    future = self._stats.pop(client_id, None)
                    if future is not None and not future.done():
                        future.set_result(header.get("stats", {}))
        except (asyncio.IncompleteReadError, ConnectionResetError, OSError):
            self._fail_all(ServerClosedError("gateway connection closed"))
        except asyncio.CancelledError:
            self._fail_all(ServerClosedError("client closed"))
            raise

    def _fail_all(self, error: Exception) -> None:
        for future in list(self._outstanding.values()) + list(self._stats.values()):
            if not future.done():
                future.set_exception(error)
        self._outstanding.clear()
        self._stats.clear()

    async def _send(self, header: Dict, payload: bytes = b"") -> None:
        if self._closed:
            raise ServerClosedError("client is closed")
        async with self._write_lock:
            self._writer.write(wire.pack_frame(header, payload))
            await self._writer.drain()

    async def submit_nowait(
        self,
        inputs: np.ndarray,
        weights: Optional[np.ndarray] = None,
        deadline_s: Optional[float] = None,
        worker: Optional[str] = None,
        priority: int = 0,
        tenant: Optional[str] = None,
        trace=None,
    ) -> asyncio.Future:
        """Ship one request; returns the future resolving to the output column.

        The future raises the same typed exception the gateway would raise
        locally — admission rejections (quota/backpressure) arrive through
        the future rather than from this call, because they happen on the
        far side of the socket.

        ``trace`` ships a client-side trace context (a
        :class:`~repro.obs.trace.Span`/:class:`~repro.obs.trace.TraceContext`
        or its wire dictionary) in the submit header, so a tracing gateway
        parents its request span on the caller's.
        """
        client_id = self._next_id
        self._next_id += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._outstanding[client_id] = future
        arrays = [np.asarray(inputs)]
        if weights is not None:
            arrays.append(np.asarray(weights))
        specs, payload = wire.pack_arrays(arrays)
        header = {"kind": "submit", "id": client_id, "arrays": specs}
        if deadline_s is not None:
            header["deadline_s"] = float(deadline_s)
        if worker is not None:
            header["worker"] = worker
        if priority:
            header["priority"] = int(priority)
        if tenant is not None:
            header["tenant"] = tenant
        if trace is not None:
            header["trace"] = wire.pack_trace(trace)
        try:
            await self._send(header, payload)
        except Exception:
            self._outstanding.pop(client_id, None)
            raise
        return future

    async def submit(
        self,
        inputs: np.ndarray,
        weights: Optional[np.ndarray] = None,
        deadline_s: Optional[float] = None,
        worker: Optional[str] = None,
        priority: int = 0,
        tenant: Optional[str] = None,
        trace=None,
    ) -> np.ndarray:
        """Ship one request and await its output column."""
        future = await self.submit_nowait(
            inputs,
            weights=weights,
            deadline_s=deadline_s,
            worker=worker,
            priority=priority,
            tenant=tenant,
            trace=trace,
        )
        return await future

    async def stats(self) -> Dict:
        """Fetch the gateway's :meth:`FabricGateway.stats` snapshot."""
        client_id = self._next_id
        self._next_id += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._stats[client_id] = future
        await self._send({"kind": "stats", "id": client_id})
        return await future

    async def close(self) -> None:
        """Close the connection; outstanding futures fail as server-closed."""
        if self._closed:
            return
        self._closed = True
        try:
            async with self._write_lock:
                self._writer.write(wire.pack_frame({"kind": "close"}))
                await self._writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def __aenter__(self) -> "FabricClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()
