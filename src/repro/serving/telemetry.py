"""Serving telemetry: latency percentiles, throughput, queue depth, utilization.

One :class:`ServingTelemetry` instance observes a whole server: every
admission samples queue depth, every completion records end-to-end latency
(queue wait + batching wait + engine service), and rejections/expiries are
counted by outcome.  ``summary()`` returns the SLO dictionary the traffic
benchmarks persist; ``report()`` renders it through
:mod:`repro.eval.reporting` so serving numbers print in the same style as
the paper-experiment tables.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.eval.reporting import format_dict, format_table


def _jsonable(value):
    """Recursively coerce numpy scalars/arrays into plain JSON types."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return [_jsonable(item) for item in value.tolist()]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


class BoundedSeries:
    """A numeric series retaining only the most recent ``max_samples``.

    Long-lived servers record one value per request; a ring buffer keeps
    memory O(1) in traffic while percentiles/means stay exact over the
    retained window.  ``total`` counts every value ever recorded.
    """

    def __init__(self, max_samples: int = 100_000):
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.max_samples = int(max_samples)
        self.total = 0
        self._values: List[float] = []
        self._cursor = 0

    def add(self, value: float) -> None:
        """Record one value, evicting the oldest once the ring is full."""
        self.total += 1
        if len(self._values) < self.max_samples:
            self._values.append(float(value))
        else:
            self._values[self._cursor] = float(value)
            self._cursor = (self._cursor + 1) % self.max_samples

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> np.ndarray:
        """The retained window as a float array (oldest eviction order)."""
        return np.asarray(self._values, dtype=float)

    def max(self) -> float:
        """Maximum over the retained window; 0.0 when empty."""
        return float(np.max(self.values)) if self._values else 0.0

    def mean(self) -> float:
        """Mean over the retained window; 0.0 when empty."""
        return float(np.mean(self.values)) if self._values else 0.0


class LatencySeries(BoundedSeries):
    """Latency samples with percentile accessors (over the retained window)."""

    def percentile_s(self, percentile: float) -> float:
        """Latency at ``percentile`` (0-100); 0.0 when empty.

        Every percentile/mean accessor on this class is total; an empty
        sample window (a replica that has served zero requests, a server
        queried before traffic arrives) yields 0.0, never NaN or an
        exception from ``np.percentile`` on an empty array.
        """
        if not self._values:
            return 0.0
        return float(np.percentile(self.values, percentile))

    @property
    def mean_s(self) -> float:
        """Mean latency in seconds over the retained window."""
        return float(np.mean(self.values)) if self._values else 0.0

    @property
    def p50_s(self) -> float:
        """Median latency in seconds."""
        return self.percentile_s(50)

    @property
    def p95_s(self) -> float:
        """95th-percentile latency in seconds."""
        return self.percentile_s(95)

    @property
    def p99_s(self) -> float:
        """99th-percentile latency in seconds."""
        return self.percentile_s(99)

    def percentiles_s(self, percentiles) -> List[float]:
        """Several percentiles from one materialized sample array."""
        values = self.values
        if values.size == 0:
            return [0.0 for _ in percentiles]
        return [float(p) for p in np.percentile(values, list(percentiles))]

    def summary(self) -> Dict[str, float]:
        """Count/mean/p50/p95/p99 in milliseconds (SLO form).

        ``count`` is the all-time total; the statistics cover the retained
        ring window, computed from a single pass over the samples.
        """
        values = self.values
        if values.size:
            mean = float(np.mean(values))
            p50, p95, p99 = (float(p) for p in np.percentile(values, [50, 95, 99]))
        else:
            mean = p50 = p95 = p99 = 0.0
        return {
            "count": self.total,
            "mean_ms": mean * 1e3,
            "p50_ms": p50 * 1e3,
            "p95_ms": p95 * 1e3,
            "p99_ms": p99 * 1e3,
        }


@dataclass
class ReplicaTelemetry:
    """Per-replica slice of the server telemetry."""

    completed: int = 0
    expired: int = 0
    cancelled: int = 0
    failed: int = 0
    batches: int = 0
    fused_requests: int = 0
    latencies: LatencySeries = field(default_factory=LatencySeries)

    @property
    def mean_batch(self) -> float:
        """Mean requests fused per engine batch on this replica."""
        return self.fused_requests / self.batches if self.batches else 0.0


class ServingTelemetry:
    """Aggregated serving metrics for one server lifetime.

    All per-request series are bounded rings (:class:`BoundedSeries`), so a
    long-lived server's telemetry memory stays O(1) in traffic; counters
    (``submitted``, ``completed``, ``rejected``...) remain exact totals.

    Attributes:
        latencies: end-to-end request latencies (admission to completion).
        rejected: requests refused by admission control (backpressure).
        queue_depth_samples: pool depth sampled at every admission.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.clock = clock
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None
        self.latencies = LatencySeries()
        self.rejected = 0
        self.submitted = 0
        self.queue_depth_samples = BoundedSeries()
        self._max_queue_depth = 0
        self.replicas: Dict[str, ReplicaTelemetry] = {}
        #: recent fused batch sizes (for debugging/diagnostics)
        self.batch_sizes = BoundedSeries()

    # ------------------------------------------------------------------ #
    # event hooks (wired by the server)
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Open (or resume) the lifetime window rates are computed over."""
        if self.started_at is None:
            self.started_at = self.clock()
        # a restart after shutdown resumes the lifetime window; a frozen
        # stopped_at would silently corrupt throughput/utilization rates
        self.stopped_at = None

    def stop(self) -> None:
        """Freeze the lifetime window at the current clock reading."""
        self.stopped_at = self.clock()

    def on_admit(self, replica_name: str, pool_depth: int) -> None:
        """Count an admitted request and sample the pool queue depth."""
        self.submitted += 1
        self.queue_depth_samples.add(int(pool_depth))
        if pool_depth > self._max_queue_depth:
            self._max_queue_depth = int(pool_depth)
        self.replicas.setdefault(replica_name, ReplicaTelemetry())

    def on_reject(self) -> None:
        """Count a request refused by admission control."""
        self.rejected += 1

    def on_result(
        self, replica_name: str, latency_s: float, batch_size: int, outcome: str
    ) -> None:
        """Per-request outcome hook (matches the replica observer signature)."""
        slice_ = self.replicas.setdefault(replica_name, ReplicaTelemetry())
        if outcome == "ok":
            slice_.completed += 1
            # a non-finite latency (clock skew, injected test clocks) must
            # never poison the percentile windows with NaN/inf
            if np.isfinite(latency_s):
                slice_.latencies.add(latency_s)
                self.latencies.add(latency_s)
        elif outcome == "expired":
            slice_.expired += 1
        elif outcome == "cancelled":
            slice_.cancelled += 1
        else:
            slice_.failed += 1

    def on_batch(self, replica_name: str, batch_size: int) -> None:
        """Record one fused engine batch of ``batch_size`` requests."""
        slice_ = self.replicas.setdefault(replica_name, ReplicaTelemetry())
        slice_.batches += 1
        slice_.fused_requests += int(batch_size)
        self.batch_sizes.add(int(batch_size))

    # ------------------------------------------------------------------ #
    # derived metrics
    # ------------------------------------------------------------------ #
    @property
    def completed(self) -> int:
        """Total requests completed successfully, across all replicas."""
        return sum(slice_.completed for slice_ in self.replicas.values())

    @property
    def expired(self) -> int:
        """Total requests expired past their deadline, across all replicas."""
        return sum(slice_.expired for slice_ in self.replicas.values())

    def elapsed_s(self) -> float:
        """Seconds of server lifetime (live-reading until stopped)."""
        if self.started_at is None:
            return 0.0
        end = self.stopped_at if self.stopped_at is not None else self.clock()
        return max(end - self.started_at, 0.0)

    def throughput_hz(self) -> float:
        """Completed requests per second of server lifetime."""
        elapsed = self.elapsed_s()
        return self.completed / elapsed if elapsed > 0 else 0.0

    def max_queue_depth(self) -> int:
        """All-time maximum admitted pool depth (survives ring eviction)."""
        return self._max_queue_depth

    def mean_queue_depth(self) -> float:
        """Mean pool depth over the retained sample window."""
        return self.queue_depth_samples.mean()

    def utilization(self, replica_busy_s: Dict[str, float]) -> Dict[str, float]:
        """Per-replica engine-busy fraction of the server lifetime.

        A zero-lifetime window (server never started, or queried in the
        same clock tick it started) yields 0.0 utilization rather than a
        ZeroDivisionError; busy fractions are clamped to [0, 1].
        """
        elapsed = self.elapsed_s()
        if elapsed <= 0:
            return {name: 0.0 for name in replica_busy_s}
        return {
            name: min(max(busy, 0.0) / elapsed, 1.0)
            for name, busy in replica_busy_s.items()
        }

    def summary(self) -> Dict:
        """The SLO dictionary persisted by the traffic benchmarks."""
        return {
            "elapsed_s": self.elapsed_s(),
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "expired": self.expired,
            "throughput_hz": self.throughput_hz(),
            "latency": self.latencies.summary(),
            "queue_depth": {
                "max": self.max_queue_depth(),
                "mean": self.mean_queue_depth(),
            },
            "replicas": {
                name: self._replica_summary(slice_)
                for name, slice_ in sorted(self.replicas.items())
            },
        }

    @staticmethod
    def _replica_summary(slice_: ReplicaTelemetry) -> Dict:
        p50_s, p99_s = slice_.latencies.percentiles_s([50, 99])
        return {
            "completed": slice_.completed,
            "expired": slice_.expired,
            "cancelled": slice_.cancelled,
            "failed": slice_.failed,
            "batches": slice_.batches,
            "mean_batch": slice_.mean_batch,
            "p50_ms": p50_s * 1e3,
            "p99_ms": p99_s * 1e3,
        }

    def to_snapshot(self, label: Optional[str] = None) -> Dict:
        """One queryable point of a telemetry trajectory (plain JSON types).

        The snapshot is the full :meth:`summary` dictionary stamped with
        the capture time (``captured_at``, on the telemetry clock) and an
        optional ``label`` (e.g. the offered load of the sweep point that
        produced it).  Everything is coerced to plain JSON scalars, so
        snapshots round-trip through :class:`TelemetryLog` unchanged —
        load tests persist one snapshot per measurement and become
        queryable trajectories instead of one-shot reports.
        """
        snapshot = _jsonable(self.summary())
        snapshot["captured_at"] = float(self.clock())
        if label is not None:
            snapshot["label"] = str(label)
        return snapshot

    def report(self, title: str = "serving telemetry") -> str:
        """Render the summary through the shared eval reporting helpers."""
        summary = self.summary()
        headline = {
            key: value
            for key, value in summary.items()
            if key not in ("latency", "queue_depth", "replicas")
        }
        headline.update({f"latency_{k}": v for k, v in summary["latency"].items()})
        headline.update({f"queue_{k}": v for k, v in summary["queue_depth"].items()})
        blocks = [format_dict(title, headline)]
        replicas = summary["replicas"]
        if replicas:
            headers = [
                "replica", "completed", "expired", "batches", "mean_batch",
                "p50_ms", "p99_ms",
            ]
            rows = [
                [
                    name,
                    stats["completed"],
                    stats["expired"],
                    stats["batches"],
                    stats["mean_batch"],
                    stats["p50_ms"],
                    stats["p99_ms"],
                ]
                for name, stats in replicas.items()
            ]
            blocks.append(format_table(headers, rows))
        return "\n\n".join(blocks)


def merge_snapshots(snapshots: Iterable[Dict]) -> Dict:
    """Fold per-worker :meth:`ServingTelemetry.to_snapshot` dicts into one view.

    The fabric runs one :class:`ServingTelemetry` per worker process; this
    merges their snapshots into a pool-level summary: counters sum,
    ``elapsed_s`` takes the longest window (workers run concurrently),
    throughput is recomputed from the merged totals, latency statistics
    are completion-weighted means of the per-worker statistics (exact for
    the mean; an aggregation, not a re-percentile, for p50/p95/p99), and
    per-replica slices — disjoint across workers by construction — are
    carried over, erroring on a duplicate replica name.
    """
    merged: Dict = {
        "elapsed_s": 0.0,
        "submitted": 0,
        "completed": 0,
        "rejected": 0,
        "expired": 0,
        "throughput_hz": 0.0,
        "latency": {"count": 0, "mean_ms": 0.0, "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0},
        "queue_depth": {"max": 0, "mean": 0.0},
        "replicas": {},
        "workers": 0,
    }
    weighted = {"mean_ms": 0.0, "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
    depth_weight = 0
    for snapshot in snapshots:
        merged["workers"] += 1
        merged["elapsed_s"] = max(merged["elapsed_s"], float(snapshot.get("elapsed_s", 0.0)))
        for counter in ("submitted", "completed", "rejected", "expired"):
            merged[counter] += int(snapshot.get(counter, 0))
        latency = snapshot.get("latency", {})
        count = int(latency.get("count", 0))
        merged["latency"]["count"] += count
        for key in weighted:
            weighted[key] += float(latency.get(key, 0.0)) * count
        depth = snapshot.get("queue_depth", {})
        submitted = int(snapshot.get("submitted", 0))
        merged["queue_depth"]["max"] = max(
            merged["queue_depth"]["max"], int(depth.get("max", 0))
        )
        merged["queue_depth"]["mean"] += float(depth.get("mean", 0.0)) * submitted
        depth_weight += submitted
        for name, slice_ in snapshot.get("replicas", {}).items():
            if name in merged["replicas"]:
                raise ValueError(
                    f"replica {name!r} appears in more than one worker snapshot"
                )
            merged["replicas"][name] = dict(slice_)
    total = merged["latency"]["count"]
    if total > 0:
        for key in weighted:
            merged["latency"][key] = weighted[key] / total
    if depth_weight > 0:
        merged["queue_depth"]["mean"] /= depth_weight
    if merged["elapsed_s"] > 0:
        merged["throughput_hz"] = merged["completed"] / merged["elapsed_s"]
    return merged


class TelemetryLog:
    """Append-only JSONL persistence for telemetry snapshots.

    One snapshot per line, so long load tests stream their trajectory to
    disk without rewriting the file, and analysis tooling reads it back
    with one ``json.loads`` per line.  The log is deliberately dumb —
    no rotation, no schema — matching how the benchmark trajectories in
    ``BENCH_throughput.json`` are consumed.

    Attributes:
        path: the JSONL file (parent directories are created on first
            append).
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def append(self, snapshot: Dict) -> None:
        """Append one snapshot (anything JSON-serializable) as a line.

        The encoded line goes to disk in a single ``os.write`` on an
        ``O_APPEND`` descriptor, so concurrent appenders (fabric worker
        processes sharing one log) never interleave partial lines — the
        worst possible corruption is a torn *trailing* line from a killed
        process, which :meth:`read_all` tolerates.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = (json.dumps(_jsonable(snapshot), sort_keys=True) + "\n").encode("utf-8")
        fd = os.open(str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line)
        finally:
            os.close(fd)

    def read(self) -> List[Dict]:
        """All snapshots in append order ([] for a missing/empty file).

        Strict: raises ``json.JSONDecodeError`` on any corrupt line.  Use
        :meth:`read_all` when analysing logs that may have a torn tail.
        """
        if not self.path.exists():
            return []
        snapshots = []
        with self.path.open("r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if line:
                    snapshots.append(json.loads(line))
        return snapshots

    def read_all(
        self, return_errors: bool = False
    ) -> Union[List[Dict], Tuple[List[Dict], List[Tuple[int, str]]]]:
        """All parseable snapshots, skipping corrupt lines instead of raising.

        A process killed mid-append can leave a torn trailing line; this
        reader keeps every line that parses and skips the rest.  With
        ``return_errors=True`` it also returns ``(line_number, message)``
        pairs (1-based) describing each skipped line, so analysis can
        report corruption without dying on it.
        """
        snapshots: List[Dict] = []
        errors: List[Tuple[int, str]] = []
        if self.path.exists():
            with self.path.open("r", encoding="utf-8") as stream:
                for number, line in enumerate(stream, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        snapshots.append(json.loads(line))
                    except json.JSONDecodeError as exc:
                        errors.append((number, str(exc)))
        if return_errors:
            return snapshots, errors
        return snapshots

    def __len__(self) -> int:
        return len(self.read())
