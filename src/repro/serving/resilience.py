"""Fault campaigns under live serving load: joint latency/accuracy curves.

The system-level fault machinery (:mod:`repro.system.faults`) classifies
*offline* workload runs.  NEUROPULS-style reliability analysis of a serving
deployment needs the same taxonomy measured *under traffic*: while a seeded
load generator replays requests against a replica, armed faults corrupt the
substrate (SoC structures, or the PCM crossbar itself), and every response
is classified against the fault-free golden output.  The result is a joint
degradation curve — p99 latency and spike-count accuracy versus fault
count — with one :class:`~repro.serving.telemetry.ServingTelemetry`
snapshot per sweep point, persisted through
:class:`~repro.serving.telemetry.TelemetryLog` so campaigns are queryable
trajectories like every other serving benchmark.

Reproducibility: the workload is a fixed seeded request factory (the same
columns at every sweep point, so accuracy is comparable across points), and
each point's fault draws use :func:`repro.utils.rng.derive_worker_seed` on
the campaign root seed — re-running a campaign replays identical faults.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.serving.batching import MicroBatcher
from repro.serving.engine import InferenceEngine
from repro.serving.errors import DeadlineExceededError
from repro.serving.scheduler import Replica
from repro.serving.server import InferenceServer
from repro.serving.snn import SNNEngine
from repro.serving.telemetry import TelemetryLog, _jsonable
from repro.system.faults import OUTCOMES, FaultInjector, random_fault_spec
from repro.utils.rng import derive_worker_seed, ensure_rng

#: Signature of a fault armer: corrupt ``engine`` with ``n_faults`` faults
#: drawn from ``rng`` (arming may schedule injections or mutate state now).
FaultArmer = Callable[[InferenceEngine, int, np.random.Generator], None]


def synapse_fault_armer(
    engine: SNNEngine, n_faults: int, rng: np.random.Generator
) -> None:
    """Stuck-at faults on the PCM crossbar of a served spiking network.

    Each fault pins one randomly drawn synapse's crystalline fraction to a
    fully amorphous (0.0) or fully crystalline (1.0) state — the photonic
    analogue of a stuck-at bit.  The engine's :attr:`~repro.serving.snn.SNNEngine.learning_hash`
    is refreshed afterwards so the mutated crossbar versions the compiled
    cache key instead of cache-hitting stale state.
    """
    array = engine.network.synapse_array
    n_pre, n_post = array.shape
    for _ in range(max(0, int(n_faults))):
        pre = int(rng.integers(0, n_pre))
        post = int(rng.integers(0, n_post))
        array.fractions[pre, post] = float(rng.integers(0, 2))
    engine.refresh_learning_hash()


def soc_fault_armer(
    target: str = "scratchpad",
    fault_type: str = "transient",
    max_cycle: int = 2048,
    location_range: int = 256,
) -> FaultArmer:
    """Build an armer injecting microarchitectural faults into a served SoC.

    For engines exposing a ``soc`` attribute
    (:class:`~repro.serving.engine.SoCGemmEngine`): each fault is a
    :func:`~repro.system.faults.random_fault_spec` scheduled on the SoC's
    cycle scheduler, so injections land while serving traffic drives the
    offload datapath.
    """

    def armer(engine: InferenceEngine, n_faults: int, rng: np.random.Generator) -> None:
        soc = getattr(engine, "soc", None)
        if soc is None:
            raise ValueError("soc_fault_armer needs an engine with a bound SoC")
        for _ in range(max(0, int(n_faults))):
            spec = random_fault_spec(
                target, fault_type, max_cycle, rng=rng, location_range=location_range
            )
            FaultInjector(soc, spec).arm()

    return armer


@dataclass
class CampaignPoint:
    """One sweep point of a fault campaign under load.

    Attributes:
        n_faults: faults armed before serving this point's traffic.
        seed: the derived seed the fault draws used.
        accuracy: fraction of responses bitwise-equal to the golden output.
        p99_ms: end-to-end p99 latency of this point's traffic.
        outcomes: request histogram over the standard reliability taxonomy
            (masked / sdc / crash / hang).
        snapshot: the full labelled telemetry snapshot of the point.
    """

    n_faults: int
    seed: int
    accuracy: float
    p99_ms: float
    outcomes: Dict[str, int]
    snapshot: Dict = field(default_factory=dict)


@dataclass
class FaultCampaignCurve:
    """A fault-degradation curve: one :class:`CampaignPoint` per fault count."""

    points: List[CampaignPoint] = field(default_factory=list)

    @property
    def fault_counts(self) -> List[int]:
        """Fault counts of the sweep, in run order."""
        return [point.n_faults for point in self.points]

    @property
    def accuracies(self) -> List[float]:
        """Spike-count (or output) accuracy at each sweep point."""
        return [point.accuracy for point in self.points]

    @property
    def p99_ms(self) -> List[float]:
        """p99 latency in milliseconds at each sweep point."""
        return [point.p99_ms for point in self.points]

    def to_dict(self) -> Dict:
        """Plain-JSON form (the ``BENCH_throughput.json`` curve payload)."""
        return _jsonable(
            {
                "fault_counts": self.fault_counts,
                "accuracy": self.accuracies,
                "p99_ms": self.p99_ms,
                "outcomes": [point.outcomes for point in self.points],
            }
        )


class FaultCampaignDriver:
    """Sweeps fault counts against a serving replica under seeded load.

    Every sweep point builds a fresh engine (``engine_factory``), arms
    ``n_faults`` faults through the ``fault_armer`` with a seed derived
    from ``root_seed`` and the point index, then replays the same seeded
    request columns through a single-replica server and classifies each
    response against the fault-free golden outputs.

    Attributes:
        engine_factory: builds an identically-configured engine per point
            (fresh state, so faults never leak between points).
        fault_armer: the fault model (see :data:`FaultArmer`).
        make_request: seeded request factory; ``make_request(i)`` is the
            i-th input column (fixed across sweep points).
        n_requests: traffic volume per sweep point.
        fault_counts: the sweep (0 should come first: the golden point).
        root_seed: campaign seed; point ``k`` draws faults with
            ``derive_worker_seed(root_seed, k)``.
        max_batch: micro-batcher fuse bound of the serving replica.
        telemetry_log: optional JSONL sink; one labelled snapshot is
            appended per sweep point.
    """

    def __init__(
        self,
        engine_factory: Callable[[], InferenceEngine],
        fault_armer: FaultArmer,
        make_request: Callable[[int], np.ndarray],
        n_requests: int = 32,
        fault_counts: Sequence[int] = (0, 1, 2, 4, 8),
        root_seed: int = 0,
        max_batch: int = 16,
        telemetry_log: Optional[TelemetryLog] = None,
    ):
        if n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if not fault_counts:
            raise ValueError("fault_counts must be non-empty")
        self.engine_factory = engine_factory
        self.fault_armer = fault_armer
        self.make_request = make_request
        self.n_requests = int(n_requests)
        self.fault_counts = [int(count) for count in fault_counts]
        self.root_seed = int(root_seed)
        self.max_batch = int(max_batch)
        self.telemetry_log = telemetry_log

    def _golden_outputs(self) -> np.ndarray:
        """Fault-free reference outputs for the fixed request columns."""
        engine = self.engine_factory()
        columns = np.stack(
            [self.make_request(index) for index in range(self.n_requests)], axis=1
        )
        return np.asarray(engine.run_batch(None, columns))

    async def _run_point(
        self, index: int, n_faults: int, golden: np.ndarray
    ) -> CampaignPoint:
        """Serve one sweep point's traffic under ``n_faults`` armed faults."""
        seed = derive_worker_seed(self.root_seed, index)
        engine = self.engine_factory()
        self.fault_armer(engine, n_faults, ensure_rng(seed))
        replica = Replica(
            name=f"faults-{n_faults}",
            engine=engine,
            max_batch=self.max_batch,
            max_wait_s=0.0,
            max_queue_depth=self.n_requests,
        )
        outcomes = {outcome: 0 for outcome in OUTCOMES}
        async with InferenceServer([replica]) as server:
            # pre-queued submission: batch composition (and therefore any
            # learning-mode update order) depends only on request order
            futures = [
                server.submit_nowait(self.make_request(request))
                for request in range(self.n_requests)
            ]
            results = await asyncio.gather(*futures, return_exceptions=True)
            for request, result in enumerate(results):
                if isinstance(result, DeadlineExceededError):
                    outcomes["hang"] += 1
                elif isinstance(result, (Exception, asyncio.CancelledError)):
                    outcomes["crash"] += 1
                elif np.array_equal(np.asarray(result), golden[:, request]):
                    outcomes["masked"] += 1
                else:
                    outcomes["sdc"] += 1
            accuracy = outcomes["masked"] / self.n_requests
            snapshot = server.telemetry.to_snapshot(label=f"faults={n_faults}")
        snapshot["fault_campaign"] = {
            "n_faults": n_faults,
            "seed": seed,
            "accuracy": accuracy,
            "outcomes": dict(outcomes),
        }
        if isinstance(engine, SNNEngine):
            snapshot["snn"] = engine.snapshot()
        if self.telemetry_log is not None:
            self.telemetry_log.append(snapshot)
        return CampaignPoint(
            n_faults=n_faults,
            seed=seed,
            accuracy=accuracy,
            p99_ms=float(snapshot["latency"]["p99_ms"]),
            outcomes=outcomes,
            snapshot=snapshot,
        )

    async def run_async(self) -> FaultCampaignCurve:
        """Run the full sweep inside a running event loop."""
        golden = self._golden_outputs()
        curve = FaultCampaignCurve()
        for index, n_faults in enumerate(self.fault_counts):
            curve.points.append(await self._run_point(index, n_faults, golden))
        return curve

    def run(self) -> FaultCampaignCurve:
        """Run the full sweep (blocking convenience wrapper)."""
        return asyncio.run(self.run_async())
