"""Open- and closed-loop load generation for the serving runtime.

Arrival traces are generated up front from a seeded
:mod:`repro.utils.rng` generator, so every traffic experiment is
reproducible: the same seed yields the same arrival times and the same
input vectors, independent of wall-clock jitter during replay.

* :func:`poisson_arrival_times` — memoryless open-loop traffic at a fixed
  offered rate (the M/*/k textbook case).
* :func:`bursty_arrival_times` — a two-state (ON/OFF) modulated Poisson
  process: bursts at ``burst_factor`` times the base rate separated by
  quiet gaps, holding the long-run offered rate at ``rate_hz``.
* :func:`run_open_loop` — replay a trace against a server regardless of
  completions (offered load is fixed; overload shows up as queueing,
  latency, and backpressure rejections).
* :func:`run_closed_loop` — ``n_clients`` synchronous clients, each
  submitting its next request only after the previous one completes
  (throughput is admission-limited; classic saturation measurement).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.serving.errors import BackpressureError, DeadlineExceededError
from repro.serving.server import InferenceServer
from repro.utils.rng import RngLike, ensure_rng


def poisson_arrival_times(rate_hz: float, n_requests: int, rng: RngLike = 0) -> np.ndarray:
    """Cumulative arrival times of a Poisson process at ``rate_hz``."""
    if rate_hz <= 0:
        raise ValueError("rate_hz must be positive")
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    generator = ensure_rng(rng)
    gaps = generator.exponential(1.0 / rate_hz, size=n_requests)
    return np.cumsum(gaps)


def bursty_arrival_times(
    rate_hz: float,
    n_requests: int,
    burst_factor: float = 8.0,
    burst_fraction: float = 0.25,
    rng: RngLike = 0,
) -> np.ndarray:
    """ON/OFF-modulated Poisson arrivals with long-run rate ``rate_hz``.

    A fraction ``burst_fraction`` of requests arrive in the ON state at
    ``burst_factor * rate_hz``; the rest arrive in the OFF state at the
    complementary rate chosen so the overall mean inter-arrival time stays
    ``1 / rate_hz``.  State runs have geometric length (mean 8 requests), so
    traces show sustained bursts rather than isolated fast arrivals.
    """
    if rate_hz <= 0 or burst_factor <= 1 or not 0 < burst_fraction < 1:
        raise ValueError(
            "need rate_hz > 0, burst_factor > 1 and 0 < burst_fraction < 1"
        )
    generator = ensure_rng(rng)
    burst_rate = burst_factor * rate_hz
    # solve E[gap] = f/burst_rate + (1-f)/off_rate = 1/rate_hz for off_rate
    off_gap = (1.0 / rate_hz - burst_fraction / burst_rate) / (1.0 - burst_fraction)
    off_rate = 1.0 / off_gap
    mean_run = 8.0
    gaps = np.empty(n_requests)
    in_burst = bool(generator.random() < burst_fraction)
    for index in range(n_requests):
        gaps[index] = generator.exponential(
            1.0 / burst_rate if in_burst else 1.0 / off_rate
        )
        if generator.random() < 1.0 / mean_run:
            # leave the current state; bias re-entry so the long-run
            # fraction of burst-state requests stays burst_fraction
            in_burst = bool(generator.random() < burst_fraction)
    return np.cumsum(gaps)


def make_column_workload(
    n_inputs: int, n_requests: int, rng: RngLike = 0
) -> Callable[[int], np.ndarray]:
    """Seeded request factory: ``factory(i)`` is the i-th input column."""
    generator = ensure_rng(rng)
    columns = generator.normal(size=(int(n_requests), int(n_inputs)))

    def factory(index: int) -> np.ndarray:
        return columns[index % len(columns)]

    return factory


def spike_pattern_workload(
    n_inputs: int,
    n_requests: int,
    active_fraction: float = 0.4,
    rng: RngLike = 0,
) -> Callable[[int], np.ndarray]:
    """Seeded spike-pattern request factory for the SNN serving path.

    ``factory(i)`` is the i-th normalised ``(n_inputs,)`` value vector in
    [0, 1]: roughly ``active_fraction`` of the channels are active with a
    strong (0.6-1.0) drive, the rest carry weak (0-0.15) background — the
    sparse binary-ish patterns STDP experiments train on, as request
    traffic.  The same seed pins the same patterns, mirroring
    :func:`make_column_workload` for the dense engines.
    """
    if not 0.0 < active_fraction <= 1.0:
        raise ValueError("active_fraction must be in (0, 1]")
    generator = ensure_rng(rng)
    n_requests = int(n_requests)
    n_inputs = int(n_inputs)
    active = generator.random(size=(n_requests, n_inputs)) < active_fraction
    strong = generator.uniform(0.6, 1.0, size=(n_requests, n_inputs))
    weak = generator.uniform(0.0, 0.15, size=(n_requests, n_inputs))
    patterns = np.where(active, strong, weak)

    def factory(index: int) -> np.ndarray:
        return patterns[index % len(patterns)]

    return factory


@dataclass
class LoadReport:
    """Outcome of one load-generation run.

    Attributes:
        offered_rate_hz: the trace's nominal arrival rate (0 for closed loop).
        n_requests: requests the generator attempted to submit.
        completed / rejected / expired / failed: final request outcomes
            (``rejected`` = never admitted; each request counts once).
        retries: closed-loop admission retry attempts (backpressure spins
            for requests that were eventually admitted) — not an outcome.
        duration_s: wall time from first submission to last completion.
        achieved_hz: completed requests per second of run duration.
        telemetry: the server's telemetry summary captured at run end.
    """

    offered_rate_hz: float
    n_requests: int
    completed: int = 0
    rejected: int = 0
    expired: int = 0
    failed: int = 0
    retries: int = 0
    duration_s: float = 0.0
    telemetry: Dict = field(default_factory=dict)

    @property
    def achieved_hz(self) -> float:
        """Completed requests per second of wall-clock run duration."""
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def goodput_fraction(self) -> float:
        """Completed fraction of offered requests."""
        return self.completed / self.n_requests if self.n_requests else 0.0


def _classify(report: LoadReport, results) -> None:
    for result in results:
        if isinstance(result, DeadlineExceededError):
            report.expired += 1
        elif isinstance(result, (Exception, asyncio.CancelledError)):
            report.failed += 1
        else:
            report.completed += 1


async def run_open_loop(
    server: InferenceServer,
    arrival_times: np.ndarray,
    make_request: Callable[[int], np.ndarray],
    weights: Optional[np.ndarray] = None,
    deadline_s: Optional[float] = None,
    offered_rate_hz: Optional[float] = None,
    clock: Callable[[], float] = time.perf_counter,
) -> LoadReport:
    """Replay an arrival trace open-loop against a running server.

    Submissions happen at trace time regardless of completions; requests
    rejected by admission control are counted, not retried.
    """
    arrival_times = np.asarray(arrival_times, dtype=float)
    n_requests = arrival_times.size
    if offered_rate_hz is None:
        span = float(arrival_times[-1]) if n_requests else 0.0
        offered_rate_hz = n_requests / span if span > 0 else 0.0
    report = LoadReport(offered_rate_hz=float(offered_rate_hz), n_requests=n_requests)
    start = clock()
    futures = []
    for index, arrival in enumerate(arrival_times):
        delay = (start + float(arrival)) - clock()
        if delay > 0:
            await asyncio.sleep(delay)
        try:
            futures.append(
                server.submit_nowait(
                    make_request(index), weights=weights, deadline_s=deadline_s
                )
            )
        except BackpressureError:
            report.rejected += 1
    results = await asyncio.gather(*futures, return_exceptions=True)
    report.duration_s = clock() - start
    _classify(report, results)
    report.telemetry = server.stats()
    return report


async def run_closed_loop(
    server: InferenceServer,
    n_clients: int,
    requests_per_client: int,
    make_request: Callable[[int], np.ndarray],
    weights: Optional[np.ndarray] = None,
    deadline_s: Optional[float] = None,
    clock: Callable[[], float] = time.perf_counter,
) -> LoadReport:
    """Drive the server with ``n_clients`` back-to-back synchronous clients.

    Each client submits its next request only after the previous answer
    arrives, so the concurrency level is exactly ``n_clients`` and measured
    throughput is the saturation throughput at that level.  A client that is
    rejected by admission control yields once and retries the same request;
    retry attempts are counted in ``LoadReport.retries``, not ``rejected``
    (every closed-loop request is eventually admitted).
    """
    if n_clients < 1 or requests_per_client < 1:
        raise ValueError("need at least one client and one request per client")
    n_requests = n_clients * requests_per_client
    report = LoadReport(offered_rate_hz=0.0, n_requests=n_requests)
    start = clock()

    async def client(client_index: int) -> list:
        outcomes = []
        for sequence in range(requests_per_client):
            index = client_index * requests_per_client + sequence
            while True:
                try:
                    future = server.submit_nowait(
                        make_request(index), weights=weights, deadline_s=deadline_s
                    )
                except BackpressureError:
                    report.retries += 1
                    await asyncio.sleep(0)
                    continue
                break
            try:
                outcomes.append(await future)
            except Exception as exc:  # noqa: BLE001 - classified below
                outcomes.append(exc)
        return outcomes

    per_client = await asyncio.gather(
        *(client(index) for index in range(n_clients))
    )
    report.duration_s = clock() - start
    for outcomes in per_client:
        _classify(report, outcomes)
    report.telemetry = server.stats()
    return report
