"""Multi-replica scheduling: routing, admission control, backpressure.

A :class:`Replica` is one independently-queued serving unit — an engine
(possibly a different backend per replica), its bounded request queue and
its micro-batcher.  The :class:`ReplicaScheduler` routes each admitted
request to a replica under one of three policies:

* ``round-robin`` — strict rotation, oblivious to load.
* ``least-loaded`` — fewest queued + in-flight requests wins.
* ``latency-aware`` — minimise ``(load + 1) * ewma_latency`` so a slow
  analog replica sheds traffic to faster digital ones.
* ``cost-based`` — minimise ``(load + 1) * cost_fn(replica)`` where
  ``cost_fn`` is a calibrated per-request service-time model (e.g. the
  compiler's :func:`repro.compiler.costmodel.replica_cost_fn`, fitted
  from measured engine latencies and ``SoCGemmEngine.offload_cycles``).
  Unlike ``latency-aware`` it needs no warm-up traffic: heterogeneous
  pools route correctly from the very first request.

Admission control is a bounded queue per replica: when the preferred
replica is full, the scheduler fails over to the least-loaded alternative
with space; when every queue is full it raises the typed
:class:`~repro.serving.errors.BackpressureError` instead of growing an
unbounded backlog.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, List, Optional, Sequence

from repro.serving.batching import SHUTDOWN, InferenceRequest, MicroBatcher
from repro.serving.engine import InferenceEngine
from repro.serving.errors import BackpressureError, ServerClosedError

POLICIES = ("round-robin", "least-loaded", "latency-aware", "cost-based")

#: EWMA smoothing factor for per-replica latency estimates.
LATENCY_EWMA_ALPHA = 0.2


class Replica:
    """One serving replica: engine + bounded queue + micro-batcher.

    Attributes:
        name: replica label (unique within a scheduler).
        engine: the execution engine.
        max_queue_depth: admission bound of the request queue.
        inflight: requests dispatched to the engine but not yet resolved.
        ewma_latency_s: smoothed observed request latency (queue + service),
            ``None`` until the first completion.
    """

    def __init__(
        self,
        name: str,
        engine: InferenceEngine,
        max_batch: int = 32,
        max_wait_s: float = 0.0,
        max_queue_depth: int = 64,
        clock: Callable[[], float] = time.perf_counter,
        tracer=None,
        metrics=None,
    ):
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self.name = str(name)
        self.engine = engine
        self.max_queue_depth = int(max_queue_depth)
        self.clock = clock
        self.queue: asyncio.Queue = asyncio.Queue()
        self.inflight = 0
        self.ewma_latency_s: Optional[float] = None
        self.batcher = MicroBatcher(
            engine,
            max_batch=max_batch,
            max_wait_s=max_wait_s,
            clock=clock,
            on_result=self._on_result,
            on_pull=self._on_pull,
            on_batch=self._on_batch,
            tracer=tracer,
            metrics=metrics,
        )
        self._task: Optional[asyncio.Task] = None
        self._observers: List[Callable[[str, InferenceRequest, float, int, str], None]] = []
        self._batch_observers: List[Callable[[str, int], None]] = []

    # ------------------------------------------------------------------ #
    # load accounting
    # ------------------------------------------------------------------ #
    @property
    def depth(self) -> int:
        """Requests waiting in the queue."""
        return self.queue.qsize()

    @property
    def load(self) -> int:
        """Queued plus in-flight requests (including open batching windows)."""
        return self.depth + self.inflight

    def _on_pull(self, n_taken: int) -> None:
        # counted at dequeue time so a request held in an open max_wait_s
        # window is never invisible to drain()/routing load
        self.inflight += n_taken

    def _on_batch(self, n_dispatched: int) -> None:
        for observer in self._batch_observers:
            observer(self.name, n_dispatched)

    def _on_result(
        self, request: InferenceRequest, latency_s: float, batch_size: int, outcome: str
    ) -> None:
        self.inflight = max(0, self.inflight - 1)
        if outcome == "ok":
            previous = self.ewma_latency_s
            self.ewma_latency_s = (
                latency_s
                if previous is None
                else LATENCY_EWMA_ALPHA * latency_s + (1 - LATENCY_EWMA_ALPHA) * previous
            )
        for observer in self._observers:
            observer(self.name, request, latency_s, batch_size, outcome)

    def expected_columns(self) -> int:
        """Batch width compiled plans targeting this replica should assume.

        Delegates to the micro-batcher's observed/configured fusing width
        — the compiler resolves replicas through
        :func:`repro.compiler.partition.expected_batch_width`.
        """
        return self.batcher.expected_columns()

    def add_observer(
        self, observer: Callable[[str, InferenceRequest, float, int, str], None]
    ) -> None:
        """Subscribe to per-request outcomes (telemetry hook)."""
        self._observers.append(observer)

    def add_batch_observer(self, observer: Callable[[str, int], None]) -> None:
        """Subscribe to dispatched batch sizes ``(replica_name, n)``."""
        self._batch_observers.append(observer)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Launch the batcher task on the running event loop."""
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(
                self.batcher.serve(self.queue), name=f"batcher-{self.name}"
            )

    async def stop(self) -> None:
        """Send the shutdown sentinel and wait for the batcher to exit.

        Everything already queued ahead of the sentinel is served; an open
        straggler window is cut short by the sentinel's arrival.
        """
        if self._task is None:
            return
        self.queue.put_nowait(SHUTDOWN)
        await self._task
        self._task = None

    async def abort(self) -> None:
        """Cancel the batcher immediately and fail everything still queued."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        while True:
            try:
                item = self.queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not SHUTDOWN and not item.future.done():
                item.future.set_exception(
                    ServerClosedError("server aborted before serving this request")
                )

    @property
    def running(self) -> bool:
        """Whether the replica's batcher task is live."""
        return self._task is not None and not self._task.done()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Replica {self.name!r} engine={self.engine.name!r} "
            f"load={self.load}/{self.max_queue_depth}>"
        )


class ReplicaScheduler:
    """Routes admitted requests across a pool of replicas.

    Attributes:
        replicas: the managed pool (mixed engine backends allowed).
        policy: one of :data:`POLICIES`.
        cost_fn: per-request service-time model used by the ``cost-based``
            policy — maps a replica to predicted seconds per request.
            Defaults to each engine's own ``latency_hint_s(1)`` when not
            supplied; inject a calibrated model (see
            :func:`repro.compiler.costmodel.replica_cost_fn`) for
            heterogeneous pools of digital engines whose hints are all 0.
    """

    def __init__(
        self,
        replicas: Sequence[Replica],
        policy: str = "least-loaded",
        cost_fn: Optional[Callable[[Replica], float]] = None,
    ):
        if not replicas:
            raise ValueError("scheduler needs at least one replica")
        names = [replica.name for replica in replicas]
        if len(set(names)) != len(names):
            raise ValueError(f"replica names must be unique, got {names}")
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r} (choose from {POLICIES})")
        self.replicas = list(replicas)
        self.policy = policy
        self.cost_fn = cost_fn
        self._by_name = {replica.name: replica for replica in self.replicas}
        self._rr_index = 0

    def update_cost_fn(self, cost_fn: Optional[Callable[[Replica], float]]) -> None:
        """Swap the ``cost-based`` scorer without rebuilding the scheduler.

        ``cost_fn`` is read at every :meth:`select`, so the swap takes
        effect on the next routed request.  Prefer a read-through scorer
        (:func:`repro.compiler.costmodel.replica_cost_fn` over a profile
        *provider*, e.g. ``AdaptiveReplanner.cost_fn()``) — then profile
        refreshes need no swap at all; this hook covers callers who built
        the scheduler around a snapshot closure.
        """
        self.cost_fn = cost_fn

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def select(self) -> Replica:
        """Pick the preferred replica under the configured policy."""
        if self.policy == "round-robin":
            replica = self.replicas[self._rr_index % len(self.replicas)]
            self._rr_index += 1
            return replica
        if self.policy == "least-loaded":
            return min(self.replicas, key=lambda replica: replica.load)
        if self.policy == "cost-based":
            # expected time-to-serve from the *calibrated* cost model:
            # (load + 1) requests ahead of (and including) this one, each
            # costing the predicted per-request service time.  Ties fall
            # back to least-loaded so an unprofiled all-digital pool (all
            # costs 0) never degenerates to always-pick-first.
            def cost_score(replica: Replica) -> tuple:
                cost = self._replica_cost(replica)
                return ((replica.load + 1) * cost, replica.load)

            return min(self.replicas, key=cost_score)
        # latency-aware: expected time-to-serve = (load + 1) * smoothed
        # latency; replicas with no observation yet look maximally cheap so
        # cold replicas get probed.  Ties (e.g. all-digital pools whose
        # latency estimates are 0) fall back to least-loaded so the policy
        # never degenerates to always-pick-first.
        def score(replica: Replica) -> tuple:
            latency = replica.ewma_latency_s
            if latency is None:
                latency = replica.engine.latency_hint_s(1)
            return ((replica.load + 1) * latency, replica.load)

        return min(self.replicas, key=score)

    def _replica_cost(self, replica: Replica) -> float:
        """Predicted per-request service seconds under the cost model."""
        if self.cost_fn is not None:
            return max(float(self.cost_fn(replica)), 0.0)
        return max(replica.engine.latency_hint_s(1), 0.0)

    def replica_named(self, name: str) -> Replica:
        """Look up a replica by name (raises ``KeyError`` for unknown names)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"unknown replica {name!r} (pool: {sorted(self._by_name)})"
            ) from None

    def submit(
        self, request: InferenceRequest, replica_name: Optional[str] = None
    ) -> Replica:
        """Admit a request: enqueue on the routed replica or raise.

        Failover order when the preferred replica's queue is full: remaining
        replicas by ascending load.  Raises
        :class:`~repro.serving.errors.BackpressureError` when every bounded
        queue is at its limit.

        ``replica_name`` pins admission to one replica (no routing, no
        failover) — compiled placement plans use this to execute each op on
        the replica the cost model chose.
        """
        if replica_name is not None:
            pinned = self.replica_named(replica_name)
            if pinned.depth >= pinned.max_queue_depth:
                raise BackpressureError(
                    replica=pinned.name, depth=pinned.depth,
                    limit=pinned.max_queue_depth,
                )
            pinned.queue.put_nowait(request)
            return pinned
        preferred = self.select()
        if len(self.replicas) == 1:
            candidates = self.replicas
        else:
            candidates = [preferred] + sorted(
                (replica for replica in self.replicas if replica is not preferred),
                key=lambda replica: replica.load,
            )
        for replica in candidates:
            if replica.depth < replica.max_queue_depth:
                replica.queue.put_nowait(request)
                return replica
        last = candidates[-1]
        raise BackpressureError(
            replica=last.name, depth=last.depth, limit=last.max_queue_depth
        )

    def total_load(self) -> int:
        """Queued + in-flight requests across the pool."""
        return sum(replica.load for replica in self.replicas)
