"""Spiking inference engine: serving the photonic SNN behind the batcher.

:class:`SNNEngine` puts the event-driven :class:`~repro.snn.network.PhotonicSNN`
behind the same :class:`~repro.serving.engine.InferenceEngine` contract the
dense GeMM/MLP/SoC engines speak.  A request carries one normalised analog
vector; the engine encodes it into per-channel :class:`~repro.snn.encoding.SpikeTrain`
patterns (rate or latency coding), the micro-batcher fuses queued patterns
into **one** vectorised multi-pattern :meth:`~repro.snn.network.PhotonicSNN.run_patterns`
over the shared :class:`~repro.snn.synapse.SynapseArray` state — one fused
network step per micro-batch, mirroring the "single ``apply_batch`` per
group" invariant of the dense path — and the response column is the
spike-count decode of that pattern's output neurons.

**Online STDP under traffic** (``learning=True``): after each fused batch is
answered, :meth:`~repro.snn.network.PhotonicSNN.apply_stdp_batch` applies
the pulse-quantised PCM weight updates pattern-by-pattern in batch order.
Because the update order is exactly the (deterministic) request order of
the micro-batch and nothing draws randomness, a fixed seed and arrival
trace reproduce the weight trajectory bitwise.

The compiled-weights cache invariant — *a cache hit never re-programs a
mesh* — generalises to mutable weights through the :attr:`learning_hash`:
the engine's cache key is a content hash of the crossbar's crystalline
fractions, recomputed whenever plasticity (or an external fault) mutates
them.  A cache hit therefore proves the crossbar is still in the state the
entry was compiled for; any weight mutation versions the key and forces a
recompile instead of silently serving stale state.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

import numpy as np

from repro.serving.engine import (
    DEFAULT_MODEL_KEY,
    CompiledModel,
    InferenceEngine,
    weight_hash,
)
from repro.serving.errors import ServingError
from repro.snn.encoding import SpikeTrain, latency_encode, rate_encode
from repro.snn.network import PhotonicSNN

#: Supported spike encodings for request vectors.
SNN_ENCODINGS = ("rate", "latency")


class SNNEngine(InferenceEngine):
    """Serves a bound :class:`~repro.snn.network.PhotonicSNN` network.

    Requests must not carry explicit weights (like
    :class:`~repro.serving.engine.MLPEngine`, the engine serves exactly its
    bound network); the model state lives in the network's PCM crossbar and
    is versioned by :attr:`learning_hash`.

    Attributes:
        network: the served spiking network (shared, mutable crossbar).
        encoding: ``"rate"`` or ``"latency"`` request encoding.
        window: encoding window [s].
        max_spikes: rate-coding spike budget per channel.
        latency_threshold: latency-coding no-spike threshold.
        input_amplitude: optical amplitude of input spikes.
        learning: whether STDP runs between micro-batches.
        spikes_in / spikes_out: input events consumed / output spikes
            emitted across all served batches.
        stdp_updates: plasticity (pulse-programming) events applied.
        spike_energy_j / learning_energy_j: optical / programming energy.
    """

    def __init__(
        self,
        network: PhotonicSNN,
        encoding: str = "rate",
        window: float = 10e-9,
        max_spikes: int = 10,
        latency_threshold: float = 0.05,
        input_amplitude: float = 0.6,
        learning: bool = False,
        name: str = "snn",
        max_models: int = 4,
        clock: Callable[[], float] = time.perf_counter,
    ):
        super().__init__(name=name, max_models=max_models, clock=clock)
        if encoding not in SNN_ENCODINGS:
            raise ValueError(f"encoding must be one of {SNN_ENCODINGS}, got {encoding!r}")
        if learning and network.stdp is None:
            raise ServingError(
                f"SNN engine {name!r}: learning=True requires the network "
                f"to carry an STDP rule"
            )
        self.network = network
        self.encoding = encoding
        self.window = float(window)
        self.max_spikes = int(max_spikes)
        self.latency_threshold = float(latency_threshold)
        self.input_amplitude = float(input_amplitude)
        self.learning = bool(learning)
        self.spikes_in = 0
        self.spikes_out = 0
        self.stdp_updates = 0
        self.spike_energy_j = 0.0
        self.learning_energy_j = 0.0
        self._learning_hash = weight_hash(network.synapse_array.fractions)

    # ------------------------------------------------------------------ #
    # weight-state versioning
    # ------------------------------------------------------------------ #
    @property
    def learning_hash(self) -> str:
        """Content hash of the crossbar state the cache key is built from."""
        return self._learning_hash

    def refresh_learning_hash(self) -> str:
        """Re-hash the crossbar after an *external* mutation (e.g. a fault).

        The engine refreshes the hash itself after every learning batch;
        anything else that writes the crossbar (fault injection, manual
        re-programming) must call this so the next batch compiles against
        the mutated state instead of cache-hitting the stale entry.
        """
        self._learning_hash = weight_hash(self.network.synapse_array.fractions)
        return self._learning_hash

    def model_key(self, weights: Optional[np.ndarray]) -> str:
        """The versioned key of the bound network; rejects explicit weights."""
        if weights is not None:
            raise ServingError(
                f"SNN engine {self.name!r} serves its bound network; "
                f"requests must not carry explicit weights"
            )
        return f"snn:{self._learning_hash}"

    def compile(
        self, weights: Optional[np.ndarray] = None, key: Optional[str] = None
    ) -> CompiledModel:
        """Compile against the *current* crossbar state.

        The server stamps weightless requests with the generic
        :data:`~repro.serving.engine.DEFAULT_MODEL_KEY`; remapping it to the
        ``learning_hash``-versioned key here is what generalises the "a
        cache hit never re-programs" invariant to mutable weights — after
        any STDP batch the key changes, so a hit can only occur while the
        crossbar is bitwise-unchanged.
        """
        if key is None or key == DEFAULT_MODEL_KEY:
            key = self.model_key(weights)
        return super().compile(weights, key=key)

    # ------------------------------------------------------------------ #
    # encode -> fused run -> (STDP) -> decode
    # ------------------------------------------------------------------ #
    def encode(self, values: np.ndarray) -> List[SpikeTrain]:
        """Encode one normalised ``(n_inputs,)`` vector into spike trains."""
        if self.encoding == "rate":
            return rate_encode(values, window=self.window, max_spikes=self.max_spikes)
        return latency_encode(
            values, window=self.window, threshold=self.latency_threshold
        )

    def _compile(self, key: str, weights: Optional[np.ndarray]) -> CompiledModel:
        if weights is not None:
            # guard the pre-hashed key path too (mirrors MLPEngine)
            raise ServingError(
                f"SNN engine {self.name!r} serves its bound network; "
                f"requests must not carry explicit weights"
            )
        network = self.network

        def runner(columns: np.ndarray) -> np.ndarray:
            columns = np.asarray(columns, dtype=float)
            patterns = [
                self.encode(columns[:, index]) for index in range(columns.shape[1])
            ]
            batch = network.run_patterns(
                patterns, input_amplitude=self.input_amplitude
            )
            self.spikes_in += batch.total_input_spikes
            self.spikes_out += batch.total_output_spikes
            self.spike_energy_j += batch.energy_j
            if self.learning:
                events, energy = network.apply_stdp_batch(batch)
                self.stdp_updates += events
                self.learning_energy_j += energy
                # plasticity mutated the crossbar: version the cache key so
                # the *next* batch compiles against the new weight state
                self._learning_hash = weight_hash(network.synapse_array.fractions)
            return batch.spike_counts.T.astype(float)

        return CompiledModel(
            key=key,
            n_inputs=network.n_inputs,
            n_outputs=network.n_outputs,
            runner=runner,
        )

    def snapshot(self) -> dict:
        """Spiking counters in plain-JSON form (for telemetry snapshots)."""
        return {
            "spikes_in": self.spikes_in,
            "spikes_out": self.spikes_out,
            "stdp_updates": self.stdp_updates,
            "spike_energy_j": self.spike_energy_j,
            "learning_energy_j": self.learning_energy_j,
            "learning_hash": self._learning_hash,
        }


def run_patterns_serial(
    engine: SNNEngine, columns: np.ndarray
) -> np.ndarray:
    """Per-request serial baseline for the fused datapath.

    Runs every column of an ``(n_inputs, B)`` block through its own
    single-pattern :meth:`~repro.snn.network.PhotonicSNN.run` call (one
    weight-row evaluation per input event, Python event loop per pattern) —
    the reference the batched-vs-serial speedup in ``BENCH_throughput.json``
    is measured against.  Results are bitwise-identical to the fused path.
    """
    columns = np.asarray(columns, dtype=float)
    outputs = np.empty((engine.network.n_outputs, columns.shape[1]))
    for index in range(columns.shape[1]):
        result = engine.network.run(engine.encode(columns[:, index]), learning=False)
        outputs[:, index] = result.spike_counts().astype(float)
    return outputs
