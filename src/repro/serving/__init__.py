"""Inference serving runtime: queues, micro-batching, replicas, traffic.

The serving layer turns the reproduction's simulation stack into a runnable
service model: an asyncio front-end admits requests into bounded queues, a
dynamic micro-batcher fuses them into single ``apply_batch`` /
``backend.matmul`` calls (the vectorized hot paths), and a multi-replica
scheduler spreads traffic across engines — pure-backend GeMM, photonic MLP
forward passes, full cycle-accurate SoC offloads, or the event-driven
spiking network (:class:`~repro.serving.snn.SNNEngine`, with optional
online STDP between micro-batches).  Telemetry reports the SLO metrics
(p50/p95/p99 latency, throughput, queue depth, utilization), the load
generators replay seeded Poisson or bursty arrival traces, and
:class:`~repro.serving.resilience.FaultCampaignDriver` measures joint
latency/accuracy degradation under armed faults while traffic runs.
"""

from repro.serving.batching import InferenceRequest, MicroBatcher
from repro.serving.engine import (
    CompiledModel,
    GemmEngine,
    InferenceEngine,
    MLPEngine,
    SoCGemmEngine,
    weight_hash,
)
from repro.serving.errors import (
    BackpressureError,
    DeadlineExceededError,
    ServerClosedError,
    ServingError,
    WorkerCrashedError,
)
from repro.serving.fabric import (
    ComputeHeavyBackend,
    FabricClient,
    FabricGateway,
    WorkerSpec,
    make_compute_heavy_engine,
    make_gemm_engine,
    make_soc_gemm_engine,
    make_worker_specs,
)
from repro.serving.loadgen import (
    LoadReport,
    bursty_arrival_times,
    make_column_workload,
    poisson_arrival_times,
    run_closed_loop,
    run_open_loop,
    spike_pattern_workload,
)
from repro.serving.resilience import (
    CampaignPoint,
    FaultCampaignCurve,
    FaultCampaignDriver,
    soc_fault_armer,
    synapse_fault_armer,
)
from repro.serving.scheduler import POLICIES, Replica, ReplicaScheduler
from repro.serving.server import InferenceServer
from repro.serving.snn import SNNEngine, run_patterns_serial
from repro.serving.telemetry import (
    LatencySeries,
    ServingTelemetry,
    TelemetryLog,
    merge_snapshots,
)

__all__ = [
    "BackpressureError",
    "CampaignPoint",
    "CompiledModel",
    "ComputeHeavyBackend",
    "DeadlineExceededError",
    "FabricClient",
    "FabricGateway",
    "FaultCampaignCurve",
    "FaultCampaignDriver",
    "GemmEngine",
    "InferenceEngine",
    "InferenceRequest",
    "InferenceServer",
    "LatencySeries",
    "LoadReport",
    "MLPEngine",
    "MicroBatcher",
    "POLICIES",
    "Replica",
    "ReplicaScheduler",
    "SNNEngine",
    "ServerClosedError",
    "ServingError",
    "ServingTelemetry",
    "SoCGemmEngine",
    "TelemetryLog",
    "WorkerCrashedError",
    "WorkerSpec",
    "bursty_arrival_times",
    "make_column_workload",
    "make_compute_heavy_engine",
    "make_gemm_engine",
    "make_soc_gemm_engine",
    "make_worker_specs",
    "merge_snapshots",
    "poisson_arrival_times",
    "run_closed_loop",
    "run_open_loop",
    "run_patterns_serial",
    "soc_fault_armer",
    "spike_pattern_workload",
    "synapse_fault_armer",
    "weight_hash",
]
