"""Typed exceptions of the serving runtime.

Every failure mode a client can observe has its own exception type so load
generators and callers can classify outcomes (rejected vs. expired vs.
failed) without string matching.
"""

from __future__ import annotations


class ServingError(RuntimeError):
    """Base class of all serving-runtime errors."""


class BackpressureError(ServingError):
    """Admission control rejected a request: every eligible queue is full.

    Attributes:
        replica: name of the replica whose bounded queue rejected the
            request (the last one tried).
        depth: queue depth observed at rejection time.
        limit: the queue bound.
    """

    def __init__(self, replica: str, depth: int, limit: int):
        self.replica = replica
        self.depth = int(depth)
        self.limit = int(limit)
        super().__init__(
            f"request rejected: queue of replica {replica!r} is full "
            f"({depth}/{limit}); retry later or raise max_queue_depth"
        )


class DeadlineExceededError(ServingError, TimeoutError):
    """The request's deadline passed before it was dispatched to an engine.

    Deadlines are enforced at dispatch time: an expired request is dropped
    from its micro-batch instead of wasting an engine slot.
    """

    def __init__(self, waited_s: float, deadline_s: float):
        self.waited_s = float(waited_s)
        self.deadline_s = float(deadline_s)
        super().__init__(
            f"request expired after waiting {waited_s * 1e3:.2f} ms "
            f"(deadline {deadline_s * 1e3:.2f} ms)"
        )


class ServerClosedError(ServingError):
    """The server is not accepting requests (not started, draining, or shut down)."""


class WorkerCrashedError(ServingError):
    """A fabric worker process exited while requests were outstanding.

    Raised for every request that was queued for — or in flight on — the
    crashed worker, and for new submissions when no live worker remains.
    The gateway detects the crash from the worker pipe's EOF, so a killed
    process surfaces as this typed error rather than a hung future.

    Attributes:
        worker: name of the crashed worker replica.
        detail: human-readable context (exit code, phase).
    """

    def __init__(self, worker: str, detail: str = "worker process exited"):
        self.worker = str(worker)
        self.detail = str(detail)
        super().__init__(f"worker {worker!r} crashed: {detail}")
