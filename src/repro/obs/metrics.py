"""Metrics registry: deterministic counters, gauges and histograms.

Instruments are process-local and cheap (a dict lookup plus an integer
add); process safety comes from the snapshot/merge protocol rather than
shared memory — each fabric worker snapshots its own
:class:`MetricsRegistry`, ships the plain-JSON snapshot over the pipe
with its ``bye`` stats, and the gateway folds them together with
:meth:`MetricsRegistry.merge`.  Histogram buckets are fixed at
construction (never adapted to data), so merged snapshots and replayed
runs are bitwise comparable.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default latency-style bucket upper bounds, in seconds.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class Counter:
    """A monotonically increasing count."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def snapshot(self) -> Dict:
        """Plain-JSON state."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (queue depth, inflight count)."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        self.value += amount

    def snapshot(self) -> Dict:
        """Plain-JSON state."""
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram with deterministic upper bounds.

    ``bounds`` are inclusive upper edges; one implicit overflow bucket
    catches everything above the last bound.  Bounds are frozen at
    construction so snapshots from different processes merge exactly.
    """

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS):
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name!r} bounds must be sorted")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(bound) for bound in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def snapshot(self) -> Dict:
        """Plain-JSON state (bounds + bucket counts + sum/count)."""
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Named instrument registry with get-or-create semantics.

    One registry per process; cross-process aggregation goes through
    :meth:`snapshot` on the worker side and :meth:`merge` on the gateway
    side.
    """

    def __init__(self):
        self._instruments: Dict[str, object] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """Get or create the histogram ``name`` (bounds fixed on first call)."""
        return self._get(name, Histogram, lambda: Histogram(name, bounds))

    def _get(self, name, kind, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(instrument).__name__}"
            )
        return instrument

    def names(self) -> List[str]:
        """Registered instrument names, sorted."""
        return sorted(self._instruments)

    def get(self, name: str) -> Optional[object]:
        """The instrument registered under ``name``, or ``None``."""
        return self._instruments.get(name)

    def snapshot(self) -> Dict[str, Dict]:
        """Plain-JSON snapshot of every instrument, keyed by name."""
        return {
            name: self._instruments[name].snapshot() for name in sorted(self._instruments)
        }

    def merge(self, snapshot: Dict[str, Dict]) -> None:
        """Fold another process's :meth:`snapshot` into this registry.

        Counters and histograms sum; gauges take the incoming value (last
        writer wins — fabric workers report disjoint gauges in practice).
        Histogram bounds must match exactly or ``ValueError`` is raised.
        """
        for name, state in snapshot.items():
            kind = state.get("type")
            if kind == "counter":
                self.counter(name).inc(float(state["value"]))
            elif kind == "gauge":
                self.gauge(name).set(float(state["value"]))
            elif kind == "histogram":
                histogram = self.histogram(name, state["bounds"])
                if list(histogram.bounds) != [float(b) for b in state["bounds"]]:
                    raise ValueError(
                        f"histogram {name!r} bucket bounds differ between processes"
                    )
                for i, count in enumerate(state["counts"]):
                    histogram.counts[i] += int(count)
                histogram.sum += float(state["sum"])
                histogram.count += int(state["count"])
            else:
                raise ValueError(f"unknown instrument type {kind!r} for metric {name!r}")

    def merge_all(self, snapshots: Iterable[Dict[str, Dict]]) -> None:
        """Merge a sequence of per-process snapshots."""
        for snapshot in snapshots:
            self.merge(snapshot)
