"""Chrome ``trace_event``-format exporter for spans, schedulers and metrics.

Produces the JSON object format (``{"traceEvents": [...]}``) loadable in
``chrome://tracing`` and Perfetto.  Three sources share one timeline:

* finished :class:`~repro.obs.trace.Span` objects → ``"X"`` complete
  events (wall-clock spans on per-process tracks, cycle-domain spans on a
  synthetic ``(cycles)`` process where 1 simulated cycle maps through the
  clock rate to microseconds);
* :class:`~repro.system.event.EventScheduler` ``enable_trace()`` logs —
  ``(cycle, label)`` dispatch tuples → ``"i"`` instant events;
* :class:`~repro.obs.metrics.MetricsRegistry` snapshots → ``"C"`` counter
  events.

``validate_chrome_trace`` is the structural gate used by
``tools/trace_view.py`` and the test suite.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Synthetic process label for cycle-domain events.
CYCLE_PROCESS = "(cycles)"


def _span_dict(span) -> Dict:
    if hasattr(span, "to_dict"):
        return span.to_dict()
    return dict(span)


def span_events(
    spans: Iterable,
    clock_hz: float = 1e9,
    wall_base: Optional[float] = None,
) -> List[Dict]:
    """Convert finished spans to Chrome ``"X"`` complete events.

    Wall-clock spans are placed at ``(start_wall - wall_base)`` seconds
    (``wall_base`` defaults to the earliest span start, so the trace
    starts at t=0).  Spans with only cycle timestamps land on the
    :data:`CYCLE_PROCESS` track, scaled by ``clock_hz`` into simulated
    microseconds.  Spans carrying both clocks keep their wall placement
    and expose the cycle window in ``args``.
    """
    dicts = [_span_dict(span) for span in spans]
    if wall_base is None:
        starts = [d["start_wall"] for d in dicts if d.get("start_wall") is not None]
        wall_base = min(starts) if starts else 0.0
    events: List[Dict] = []
    for payload in dicts:
        args = {
            "trace_id": payload["trace_id"],
            "span_id": payload["span_id"],
        }
        if payload.get("parent_id"):
            args["parent_id"] = payload["parent_id"]
        if payload.get("links"):
            args["links"] = list(payload["links"])
        if payload.get("start_cycle") is not None:
            args["start_cycle"] = payload["start_cycle"]
        if payload.get("end_cycle") is not None:
            args["end_cycle"] = payload["end_cycle"]
        args.update(payload.get("attrs", {}))
        start_wall = payload.get("start_wall")
        end_wall = payload.get("end_wall")
        start_cycle = payload.get("start_cycle")
        end_cycle = payload.get("end_cycle")
        if start_wall is not None and end_wall is not None:
            process = payload.get("process", "main")
            ts = (start_wall - wall_base) * 1e6
            dur = max(0.0, (end_wall - start_wall) * 1e6)
        elif start_cycle is not None and end_cycle is not None:
            process = CYCLE_PROCESS
            ts = start_cycle * 1e6 / clock_hz
            dur = max(0.0, (end_cycle - start_cycle) * 1e6 / clock_hz)
        else:
            continue
        events.append(
            {
                "name": payload["name"],
                "ph": "X",
                "ts": ts,
                "dur": dur,
                "pid": process,
                "tid": payload.get("track", "main"),
                "cat": "span",
                "args": args,
            }
        )
    return events


def scheduler_events(
    trace: Sequence[Tuple[int, str]],
    clock_hz: float = 1e9,
    process: str = CYCLE_PROCESS,
    track: str = "scheduler",
) -> List[Dict]:
    """Convert ``EventScheduler.enable_trace()`` logs to ``"i"`` instants.

    Each ``(cycle, label)`` dispatch becomes a thread-scoped instant event
    on the cycle timeline, so SoC event dispatches and serving spans share
    one trace file and one zoom level.
    """
    return [
        {
            "name": str(label),
            "ph": "i",
            "ts": int(cycle) * 1e6 / clock_hz,
            "pid": process,
            "tid": track,
            "cat": "scheduler",
            "s": "t",
            "args": {"cycle": int(cycle)},
        }
        for cycle, label in trace
    ]


def metrics_events(
    snapshot: Dict[str, Dict],
    ts: float = 0.0,
    process: str = "metrics",
) -> List[Dict]:
    """Convert a :meth:`MetricsRegistry.snapshot` to ``"C"`` counter events.

    Counters and gauges become single-sample counter tracks; histograms
    contribute their ``count`` and ``sum`` (full bucket vectors stay in
    the JSONL snapshots, which remain the analysis source of truth).
    """
    events: List[Dict] = []
    for name in sorted(snapshot):
        state = snapshot[name]
        kind = state.get("type")
        if kind in ("counter", "gauge"):
            series = {name: state["value"]}
        elif kind == "histogram":
            series = {f"{name}.count": state["count"], f"{name}.sum": state["sum"]}
        else:
            continue
        events.append(
            {
                "name": name,
                "ph": "C",
                "ts": ts,
                "pid": process,
                "tid": "metrics",
                "cat": "metrics",
                "args": series,
            }
        )
    return events


def _metadata_events(events: Sequence[Dict]) -> Tuple[List[Dict], Dict[str, int]]:
    processes: Dict[str, int] = {}
    for event in events:
        pid = event["pid"]
        if isinstance(pid, str) and pid not in processes:
            processes[pid] = len(processes)
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": index,
            "tid": 0,
            "args": {"name": label},
        }
        for label, index in processes.items()
    ]
    return metadata, processes


def chrome_trace(
    spans: Iterable = (),
    scheduler_trace: Sequence[Tuple[int, str]] = (),
    metrics_snapshot: Optional[Dict[str, Dict]] = None,
    clock_hz: float = 1e9,
    wall_base: Optional[float] = None,
) -> Dict:
    """Assemble one Chrome trace object from spans/scheduler/metrics.

    String process and track labels are mapped to integer ``pid``/``tid``
    with ``"M"`` ``process_name``/``thread_name`` metadata records, which
    is what Perfetto uses for track naming.
    """
    events = span_events(spans, clock_hz=clock_hz, wall_base=wall_base)
    events += scheduler_events(scheduler_trace, clock_hz=clock_hz)
    if metrics_snapshot:
        events += metrics_events(metrics_snapshot)
    metadata, processes = _metadata_events(events)
    threads: Dict[Tuple[int, str], int] = {}
    for event in events:
        pid = processes[event["pid"]]
        event["pid"] = pid
        tid_label = event["tid"]
        key = (pid, str(tid_label))
        if key not in threads:
            threads[key] = len([k for k in threads if k[0] == pid])
            metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": threads[key],
                    "args": {"name": str(tid_label)},
                }
            )
        event["tid"] = threads[key]
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"clock_hz": clock_hz},
    }


def validate_chrome_trace(obj: Dict) -> int:
    """Structurally validate a Chrome trace object; return the event count.

    Checks the invariants ``chrome://tracing`` / Perfetto rely on: a
    ``traceEvents`` list, every event a dict with ``name``/``ph``/``pid``/
    ``tid``, a numeric ``ts`` on all non-metadata events, and a
    non-negative numeric ``dur`` on ``"X"`` complete events.  Raises
    ``ValueError`` on the first violation.
    """
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        raise ValueError("trace must be an object with a 'traceEvents' list")
    events = obj["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {i} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ValueError(f"event {i} ({event.get('name')!r}) missing {key!r}")
        if event["ph"] != "M":
            if not isinstance(event.get("ts"), (int, float)):
                raise ValueError(f"event {i} ({event['name']!r}) missing numeric 'ts'")
        if event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"event {i} ({event['name']!r}) 'X' event needs non-negative 'dur'"
                )
    return len(events)


def write_chrome_trace(path, spans: Iterable = (), **kwargs) -> Dict:
    """Build, validate and write a Chrome trace JSON file; return the object."""
    obj = chrome_trace(spans, **kwargs)
    validate_chrome_trace(obj)
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(obj, stream, indent=None, separators=(",", ":"))
    return obj
