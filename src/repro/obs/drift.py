"""Prediction-drift monitor: cost-model cycles vs measured spans.

:class:`DriftMonitor` accumulates (predicted, measured) cycle pairs per
``(shape, backend)`` key — typically ``SoCCostModel.predict_gemm(...)``
against the ``WorkloadReport.cycles`` a traced offload actually took —
and flags keys whose mean relative error exceeds a threshold.  This is
the ground-truth stream the online cost-model recalibration roadmap item
consumes: a flagged key is exactly a shape/backend pair whose calibration
constants no longer describe the hardware being served.

The monitor is pure bookkeeping (no RNG, no clocks), so recording is safe
inside the bitwise-parity tracing envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple


@dataclass(frozen=True)
class DriftFlag:
    """One flagged (shape, backend) key whose predictions drifted.

    Attributes:
        key: the ``(shape, backend)`` pair being tracked.
        samples: number of (predicted, measured) pairs seen.
        predicted_mean: mean predicted cycles.
        measured_mean: mean measured cycles.
        rel_error: ``(measured - predicted) / predicted`` of the means —
            positive when the model under-predicts.
    """

    key: Tuple
    samples: int
    predicted_mean: float
    measured_mean: float
    rel_error: float

    def to_dict(self) -> Dict:
        """Plain-JSON form for ``TelemetryLog`` snapshots."""
        return {
            "key": list(self.key),
            "samples": self.samples,
            "predicted_mean": self.predicted_mean,
            "measured_mean": self.measured_mean,
            "rel_error": self.rel_error,
        }


class _KeyStats:
    __slots__ = ("samples", "predicted_sum", "measured_sum")

    def __init__(self):
        self.samples = 0
        self.predicted_sum = 0.0
        self.measured_sum = 0.0


class DriftMonitor:
    """Accumulates predicted-vs-measured samples and flags drifted keys.

    Args:
        threshold: relative error above which a key is flagged
            (default 10%).
        min_samples: keys with fewer samples are never flagged — guards
            against one-shot noise.
    """

    def __init__(self, threshold: float = 0.10, min_samples: int = 1):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.threshold = float(threshold)
        self.min_samples = int(min_samples)
        self._stats: Dict[Tuple, _KeyStats] = {}

    def record(
        self,
        shape: Tuple[int, ...],
        backend: Hashable,
        predicted: float,
        measured: float,
    ) -> None:
        """Add one (predicted, measured) cycle pair for ``(shape, backend)``."""
        key = (tuple(int(dim) for dim in shape), str(backend))
        stats = self._stats.get(key)
        if stats is None:
            stats = self._stats[key] = _KeyStats()
        stats.samples += 1
        stats.predicted_sum += float(predicted)
        stats.measured_sum += float(measured)

    def __len__(self) -> int:
        """Number of distinct (shape, backend) keys tracked."""
        return len(self._stats)

    def reset(self) -> None:
        """Forget every accumulated sample.

        The adaptive replanner calls this after a cost-model refit: the
        retired model's prediction errors say nothing about the refreshed
        one, so drift accounting restarts from zero against the new
        coefficients.
        """
        self._stats.clear()

    def _rel_error(self, stats: _KeyStats) -> float:
        predicted_mean = stats.predicted_sum / stats.samples
        measured_mean = stats.measured_sum / stats.samples
        if predicted_mean == 0:
            return float("inf") if measured_mean else 0.0
        return (measured_mean - predicted_mean) / predicted_mean

    def flags(self) -> List[DriftFlag]:
        """Keys whose |mean relative error| exceeds the threshold, sorted."""
        flagged = []
        for key in sorted(self._stats):
            stats = self._stats[key]
            if stats.samples < self.min_samples:
                continue
            rel_error = self._rel_error(stats)
            if abs(rel_error) > self.threshold:
                flagged.append(
                    DriftFlag(
                        key=key,
                        samples=stats.samples,
                        predicted_mean=stats.predicted_sum / stats.samples,
                        measured_mean=stats.measured_sum / stats.samples,
                        rel_error=rel_error,
                    )
                )
        return flagged

    def summary(self) -> Dict:
        """Aggregate view: per-key means/errors plus the flagged subset."""
        keys = {}
        for key in sorted(self._stats):
            stats = self._stats[key]
            keys["|".join(map(str, key))] = {
                "samples": stats.samples,
                "predicted_mean": stats.predicted_sum / stats.samples,
                "measured_mean": stats.measured_sum / stats.samples,
                "rel_error": self._rel_error(stats),
            }
        return {
            "threshold": self.threshold,
            "min_samples": self.min_samples,
            "n_keys": len(self._stats),
            "n_flagged": len(self.flags()),
            "keys": keys,
        }

    def snapshot(self) -> Dict:
        """Plain-JSON snapshot (``summary`` + flag list) for ``TelemetryLog``."""
        return {
            "summary": self.summary(),
            "flags": [flag.to_dict() for flag in self.flags()],
        }
