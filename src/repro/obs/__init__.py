"""Observability plane: request-scoped tracing, metrics, drift monitoring.

The :mod:`repro.obs` package is the deterministic tracing and metrics
plane threaded through the whole stack:

* :mod:`repro.obs.trace` — :class:`Span` / :class:`Tracer` with
  request-scoped trace IDs minted at the serving front doors
  (:class:`~repro.serving.server.InferenceServer`,
  :class:`~repro.serving.fabric.gateway.FabricGateway`), propagated
  through micro-batch fusing, replica routing, engine execution and down
  into the SoC's tiled offloads, where
  :func:`~repro.obs.trace.attach_soc_report` turns
  ``WorkloadReport.pipeline`` phases and DMA traffic deltas into child
  spans.  Trace context crosses the fabric's pickle pipes and socket wire
  protocol, so a worker-process span stitches to its gateway parent.
* :mod:`repro.obs.metrics` — process-safe counters / gauges / histograms
  with fixed deterministic buckets; snapshots merge across worker
  processes and persist through the serving layer's ``TelemetryLog``.
* :mod:`repro.obs.export` — Chrome ``trace_event``-format exporter for
  spans, scheduler dispatch logs and metric snapshots (loadable in
  ``chrome://tracing`` / Perfetto; validated by ``tools/trace_view.py``).
* :mod:`repro.obs.drift` — predicted-vs-measured drift monitoring per
  (shape, backend) key, producing the ground-truth stream the online
  cost-model recalibration roadmap item needs.

Tracing is opt-in: every integration point takes ``tracer=None`` and the
disabled path is a single falsy check, so served outputs, cycle
accounting and seeded RNG streams are bitwise identical with tracing on
or off (the plane only *reads* clocks and reports, never perturbs them).
"""

from repro.obs.drift import DriftFlag, DriftMonitor
from repro.obs.export import (
    chrome_trace,
    metrics_events,
    scheduler_events,
    span_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
    attach_soc_report,
)

__all__ = [
    "Counter",
    "DriftFlag",
    "DriftMonitor",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceContext",
    "Tracer",
    "attach_soc_report",
    "chrome_trace",
    "metrics_events",
    "scheduler_events",
    "span_events",
    "validate_chrome_trace",
    "write_chrome_trace",
]
