"""Spans and trace context: deterministic request-scoped tracing.

A :class:`Tracer` mints trace IDs from a process-local counter (never from
RNG — tracing must not perturb seeded streams) and records
:class:`Span` objects carrying *both* wall-clock and simulated-cycle
timestamps, so serving-layer spans and SoC offload phases share one
timeline even though the fabric re-anchors clocks per process.

Spans support a single ``parent_id`` plus multi-parent ``links`` — a fused
micro-batch span links every request span it coalesced.  Finished spans
serialize to plain JSON dictionaries (:meth:`Span.to_dict`), cross the
fabric's pickle pipes via :meth:`Tracer.drain` / :meth:`Tracer.ingest`,
and export to Chrome ``trace_event`` JSON through :mod:`repro.obs.export`.

The disabled path is :data:`NULL_TRACER` (or plain ``None``): components
guard every tracing site with ``if self.tracer:``, which both fail, so
the overhead of tracing-off is one truthiness check per call site.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one span: ``(trace_id, span_id)``.

    This is what crosses process and socket boundaries — a child span on
    the far side records ``span_id`` as its ``parent_id`` and joins the
    same ``trace_id``.
    """

    trace_id: str
    span_id: str

    def to_dict(self) -> Dict[str, str]:
        """Plain-JSON form for wire headers and pipe messages."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, payload: Optional[Dict]) -> Optional["TraceContext"]:
        """Rebuild a context from :meth:`to_dict` output (``None`` passes through)."""
        if payload is None:
            return None
        return cls(trace_id=str(payload["trace_id"]), span_id=str(payload["span_id"]))


@dataclass
class Span:
    """One timed operation in a trace.

    Attributes:
        name: operation label (``request``, ``batch``, ``engine``,
            ``soc:dma``...).
        trace_id: the request-scoped trace this span belongs to.
        span_id: unique id within the trace (deterministic counter-minted).
        parent_id: the enclosing span, or ``None`` for a root.
        links: additional parent span ids (a batch span links every fused
            request span).
        process: process-level grouping label (``server``, ``gateway``,
            ``worker:w0``) — the Chrome trace ``pid`` track.
        track: thread-level grouping label within the process — the ``tid``.
        start_wall / end_wall: wall-clock timestamps (tracer clock), or
            ``None`` for cycle-domain-only spans.
        start_cycle / end_cycle: simulated-cycle timestamps, or ``None``
            for wall-domain-only spans.
        attrs: flat JSON-safe attribute dictionary.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    links: Tuple[str, ...] = ()
    process: str = "main"
    track: str = "main"
    start_wall: Optional[float] = None
    end_wall: Optional[float] = None
    start_cycle: Optional[int] = None
    end_cycle: Optional[int] = None
    attrs: Dict = field(default_factory=dict)

    @property
    def context(self) -> TraceContext:
        """The propagatable ``(trace_id, span_id)`` identity of this span."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    @property
    def duration_s(self) -> Optional[float]:
        """Wall-clock duration, or ``None`` when either endpoint is missing."""
        if self.start_wall is None or self.end_wall is None:
            return None
        return self.end_wall - self.start_wall

    def to_dict(self) -> Dict:
        """Plain-JSON form (pipe/pickle-safe and :mod:`json`-serializable)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "links": list(self.links),
            "process": self.process,
            "track": self.track,
            "start_wall": self.start_wall,
            "end_wall": self.end_wall,
            "start_cycle": self.start_cycle,
            "end_cycle": self.end_cycle,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "Span":
        """Rebuild a span from :meth:`to_dict` output."""
        return cls(
            name=payload["name"],
            trace_id=payload["trace_id"],
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            links=tuple(payload.get("links", ())),
            process=payload.get("process", "main"),
            track=payload.get("track", "main"),
            start_wall=payload.get("start_wall"),
            end_wall=payload.get("end_wall"),
            start_cycle=payload.get("start_cycle"),
            end_cycle=payload.get("end_cycle"),
            attrs=dict(payload.get("attrs", {})),
        )


class NullTracer:
    """The no-op tracer: falsy, every method does nothing.

    Lets call sites hold ``tracer = tracer or NULL_TRACER`` and still
    guard hot paths with a single ``if self.tracer:`` truthiness check —
    both ``None`` and :class:`NullTracer` disable tracing.
    """

    def __bool__(self) -> bool:
        """Falsy: ``if tracer:`` skips every tracing site."""
        return False

    def new_trace(self) -> None:
        """No-op."""
        return None

    def start_span(self, *args, **kwargs) -> None:
        """No-op."""
        return None

    def end_span(self, *args, **kwargs) -> None:
        """No-op."""
        return None

    def drain(self) -> List[Dict]:
        """No spans to drain."""
        return []

    def ingest(self, span_dicts) -> None:
        """No-op."""
        return None

    @property
    def current(self) -> None:
        """No active span."""
        return None


#: Shared no-op tracer instance.
NULL_TRACER = NullTracer()

ParentLike = Union[TraceContext, Span, None]


def _parent_context(parent: ParentLike) -> Optional[TraceContext]:
    if parent is None:
        return None
    if isinstance(parent, Span):
        return parent.context
    return parent


class Tracer:
    """Deterministic span recorder for one process.

    IDs are minted from monotone counters under a per-tracer ``prefix``
    (the worker name in the fabric), so ids are unique across processes
    without any randomness and a replayed run produces an identical trace.

    Attributes:
        prefix: id namespace (``"t"`` for a lone server, worker name in a
            fabric).
        process: default ``Span.process`` label for spans started here.
        clock: injectable wall clock (tests pass fakes).
        finished: completed spans, in completion order (includes ingested
            spans from other processes).
    """

    def __init__(
        self,
        prefix: str = "t",
        process: str = "main",
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.prefix = str(prefix)
        self.process = str(process)
        self.clock = clock
        self.finished: List[Span] = []
        self._next_trace = 0
        self._next_span = 0
        self._stack: List[Span] = []

    # ------------------------------------------------------------------ #
    # id minting
    # ------------------------------------------------------------------ #
    def new_trace(self) -> str:
        """Mint a new request-scoped trace id."""
        trace_id = f"{self.prefix}-t{self._next_trace:06d}"
        self._next_trace += 1
        return trace_id

    def _new_span_id(self) -> str:
        span_id = f"{self.prefix}-s{self._next_span:06d}"
        self._next_span += 1
        return span_id

    # ------------------------------------------------------------------ #
    # span lifecycle
    # ------------------------------------------------------------------ #
    def start_span(
        self,
        name: str,
        parent: ParentLike = None,
        trace_id: Optional[str] = None,
        links: Sequence[str] = (),
        track: str = "main",
        process: Optional[str] = None,
        attrs: Optional[Dict] = None,
        wall: Optional[float] = None,
        cycle: Optional[int] = None,
    ) -> Span:
        """Open a span; the trace id comes from ``parent``/``trace_id`` or is minted.

        ``wall`` defaults to the tracer clock; pass ``wall=False``-like
        ``None`` plus an explicit ``cycle`` for cycle-domain-only spans
        via :meth:`add_span` instead.
        """
        context = _parent_context(parent)
        if trace_id is None:
            trace_id = context.trace_id if context is not None else self.new_trace()
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=self._new_span_id(),
            parent_id=context.span_id if context is not None else None,
            links=tuple(links),
            process=process if process is not None else self.process,
            track=track,
            start_wall=wall if wall is not None else self.clock(),
            start_cycle=cycle,
            attrs=dict(attrs or {}),
        )
        return span

    def end_span(
        self,
        span: Optional[Span],
        wall: Optional[float] = None,
        cycle: Optional[int] = None,
        attrs: Optional[Dict] = None,
    ) -> None:
        """Close a span and move it to :attr:`finished` (``None`` is a no-op)."""
        if span is None:
            return
        if attrs:
            span.attrs.update(attrs)
        span.end_wall = wall if wall is not None else self.clock()
        if cycle is not None:
            span.end_cycle = cycle
        self.finished.append(span)

    def add_span(
        self,
        name: str,
        parent: ParentLike = None,
        trace_id: Optional[str] = None,
        links: Sequence[str] = (),
        track: str = "main",
        process: Optional[str] = None,
        attrs: Optional[Dict] = None,
        start_wall: Optional[float] = None,
        end_wall: Optional[float] = None,
        start_cycle: Optional[int] = None,
        end_cycle: Optional[int] = None,
    ) -> Span:
        """Record an already-timed span (e.g. cycle-domain SoC phases)."""
        context = _parent_context(parent)
        if trace_id is None:
            trace_id = context.trace_id if context is not None else self.new_trace()
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=self._new_span_id(),
            parent_id=context.span_id if context is not None else None,
            links=tuple(links),
            process=process if process is not None else self.process,
            track=track,
            start_wall=start_wall,
            end_wall=end_wall,
            start_cycle=start_cycle,
            end_cycle=end_cycle,
            attrs=dict(attrs or {}),
        )
        self.finished.append(span)
        return span

    @contextmanager
    def span(self, name: str, **kwargs):
        """Context manager: start a span, activate it, end it on exit."""
        span = self.start_span(name, **kwargs)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            self.end_span(span)

    # ------------------------------------------------------------------ #
    # the current-span stack (single-threaded inline execution)
    # ------------------------------------------------------------------ #
    @property
    def current(self) -> Optional[Span]:
        """The innermost active span (engines attach SoC children here)."""
        return self._stack[-1] if self._stack else None

    def push(self, span: Span) -> None:
        """Activate a span (make it :attr:`current`)."""
        self._stack.append(span)

    def pop(self) -> Optional[Span]:
        """Deactivate the innermost active span."""
        return self._stack.pop() if self._stack else None

    # ------------------------------------------------------------------ #
    # cross-process shipping
    # ------------------------------------------------------------------ #
    def drain(self) -> List[Dict]:
        """Remove and return every finished span as plain dictionaries.

        The fabric's worker ships drained spans over the pipe with each
        result message (and any stragglers with its ``bye``); the gateway
        re-ingests them so one tracer holds the stitched trace.
        """
        spans = [span.to_dict() for span in self.finished]
        self.finished.clear()
        return spans

    def ingest(self, span_dicts: Optional[Iterable[Dict]]) -> None:
        """Adopt finished spans shipped from another process's tracer."""
        if not span_dicts:
            return
        for payload in span_dicts:
            self.finished.append(Span.from_dict(payload))

    def spans_named(self, name: str) -> List[Span]:
        """Finished spans with the given name (test/analysis helper)."""
        return [span for span in self.finished if span.name == name]


def attach_soc_report(
    tracer: Tracer,
    report,
    parent: ParentLike,
    end_cycle: Optional[int] = None,
    process: Optional[str] = None,
) -> List[Span]:
    """Attach a ``WorkloadReport``'s phases as cycle-domain child spans.

    Creates one ``soc:offload`` span covering the report's cycle window
    plus one child per measured pipeline phase (``soc:dma``,
    ``soc:compute`` and, for K-sharded runs, ``soc:accumulate`` /
    ``soc:staging``).  Phase spans carry aggregate phase durations laid
    out from the offload start — DMA/compute genuinely overlap inside the
    double-buffered pipeline, which is exactly what the flame chart shows
    when the two phase tracks overlap; per-event resolution comes from the
    :class:`~repro.system.event.EventScheduler` trace exporter instead.

    Args:
        tracer: the live tracer (callers guard with ``if tracer:``).
        report: the :class:`~repro.system.soc.WorkloadReport` to attach.
        parent: enclosing span/context (normally the engine span).
        end_cycle: absolute scheduler cycle at the end of the offload
            (defaults to ``report.cycles``, i.e. a zero-based window).
        process: override the process label (defaults to the tracer's).

    Returns:
        The created spans, offload span first.
    """
    cycles = int(report.cycles)
    end = int(end_cycle) if end_cycle is not None else cycles
    start = end - cycles
    attrs = {
        "label": report.label,
        "cycles": cycles,
        "energy_j": float(report.energy_j),
    }
    pipeline = dict(report.pipeline or {})
    attrs.update({f"pipeline.{key}": int(value) for key, value in pipeline.items()})
    for engine_name, traffic in (report.dma or {}).items():
        for key, value in traffic.items():
            attrs[f"dma.{engine_name}.{key}"] = int(value)
    offload = tracer.add_span(
        "soc:offload",
        parent=parent,
        track="soc",
        process=process,
        start_cycle=start,
        end_cycle=end,
        attrs=attrs,
    )
    spans = [offload]
    phase_layout = [
        ("soc:dma", "dma_cycles", start),
        ("soc:compute", "compute_cycles", start),
    ]
    accumulate = int(pipeline.get("accumulate_cycles", 0))
    staging = int(pipeline.get("staging_cycles", 0))
    if staging:
        phase_layout.append(("soc:staging", "staging_cycles", start))
    if accumulate:
        phase_layout.append(("soc:accumulate", "accumulate_cycles", end - accumulate))
    for name, key, phase_start in phase_layout:
        duration = int(pipeline.get(key, 0))
        if duration <= 0:
            continue
        spans.append(
            tracer.add_span(
                name,
                parent=offload,
                track=name,
                process=process,
                start_cycle=phase_start,
                end_cycle=phase_start + duration,
                attrs={"cycles": duration},
            )
        )
    return spans
