"""Material models for the augmented silicon photonics platform.

The NEUROPULS platform augments a silicon-on-insulator (SOI) process with
phase-change materials (PCMs such as GSST and GeSe) for non-volatile phase
shifting and III-V gain material for on-chip lasers.  This package contains
the material-level models those devices are built on.
"""

from repro.materials.pcm import (
    PCMMaterial,
    PCMState,
    GSST,
    GESE,
    GST225,
    registry as pcm_registry,
)
from repro.materials.silicon import SiliconWaveguideMaterial, THERMO_OPTIC_COEFF_SI
from repro.materials.iii_v import IIIVGainMaterial

__all__ = [
    "PCMMaterial",
    "PCMState",
    "GSST",
    "GESE",
    "GST225",
    "pcm_registry",
    "SiliconWaveguideMaterial",
    "THERMO_OPTIC_COEFF_SI",
    "IIIVGainMaterial",
]
