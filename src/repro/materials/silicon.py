"""Silicon waveguide material model (SOI platform baseline).

The volatile phase shifters of a conventional SOI platform use the
thermo-optic effect: a heater above the waveguide raises the local
temperature and the silicon refractive index follows with coefficient
``dn/dT``.  The phase shift is volatile — holding a weight costs static
electrical power, which is precisely the cost the PCM shifters remove.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Thermo-optic coefficient of silicon at 1550 nm [1/K].
THERMO_OPTIC_COEFF_SI = 1.86e-4


@dataclass(frozen=True)
class SiliconWaveguideMaterial:
    """Optical and thermal model of a strip SOI waveguide.

    Attributes:
        effective_index: modal effective index at ``wavelength``.
        group_index: group index (sets propagation delay).
        propagation_loss_db_per_cm: straight-waveguide loss.
        thermo_optic_coeff: dn_eff/dT [1/K].
        heater_efficiency_mw_per_pi: electrical power for a pi phase shift
            in a standard thermo-optic shifter [mW] (typ. 20-30 mW).
        wavelength: reference vacuum wavelength [m].
    """

    effective_index: float = 2.35
    group_index: float = 4.2
    propagation_loss_db_per_cm: float = 1.5
    thermo_optic_coeff: float = THERMO_OPTIC_COEFF_SI
    heater_efficiency_mw_per_pi: float = 25.0
    wavelength: float = 1550e-9

    def phase_shift_from_temperature(self, delta_t_kelvin: float, length: float) -> float:
        """Phase shift [rad] of a heated section of given length [m]."""
        if length <= 0.0:
            raise ValueError("length must be positive")
        delta_n = self.thermo_optic_coeff * delta_t_kelvin
        return 2.0 * np.pi * delta_n * length / self.wavelength

    def heater_power_for_phase(self, phase_rad: float) -> float:
        """Static electrical power [W] to hold a thermo-optic phase shift.

        Thermo-optic phase is linear in dissipated power, so the power for a
        phase ``phi`` is ``phi/pi`` times the per-pi efficiency.  Phases are
        taken modulo 2*pi and folded to the cheaper direction.
        """
        phase = float(np.mod(phase_rad, 2.0 * np.pi))
        return (phase / np.pi) * self.heater_efficiency_mw_per_pi * 1e-3

    def propagation_delay(self, length: float) -> float:
        """Group delay [s] through a waveguide of given length [m]."""
        if length < 0.0:
            raise ValueError("length must be non-negative")
        from repro.utils.units import SPEED_OF_LIGHT

        return self.group_index * length / SPEED_OF_LIGHT
