"""III-V gain material model for on-chip lasers.

Silicon has an indirect bandgap, so the platform co-integrates III-V
material (InP-based multi-quantum wells) to build on-chip lasers, including
the Q-switched excitable lasers that act as spiking neurons.  The model here
is the minimal set of rate-equation parameters the laser models in
``repro.devices.laser`` need.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IIIVGainMaterial:
    """Rate-equation parameters of a III-V gain section.

    Attributes:
        carrier_lifetime: spontaneous carrier lifetime [s].
        photon_lifetime: cavity photon lifetime [s].
        gain_coefficient: differential gain normalised to the photon decay
            rate (dimensionless in the Yamada formulation).
        transparency_density: normalised transparency carrier density.
        saturable_absorption: normalised absorption of the saturable
            absorber section (sets the excitability threshold).
        pump_efficiency: fraction of injected current converted to carriers.
    """

    name: str = "InP-MQW"
    carrier_lifetime: float = 1.0e-9
    photon_lifetime: float = 5.0e-12
    gain_coefficient: float = 2.0
    transparency_density: float = 1.0
    saturable_absorption: float = 2.0
    pump_efficiency: float = 0.8

    @property
    def timescale_ratio(self) -> float:
        """Ratio of photon to carrier lifetime (the Yamada-model epsilon)."""
        return self.photon_lifetime / self.carrier_lifetime
