"""Phase-change material (PCM) models.

The paper's key device-level augmentation is a non-volatile optical phase
shifter realised by a PCM patch (GSST, GeSe, or classic GST) on top of a
silicon waveguide, switched between amorphous and (partially) crystalline
states by an integrated heater.  Two material properties drive all
architecture-level conclusions:

* the complex refractive-index contrast ``delta_n + i*delta_k`` between the
  amorphous and crystalline phases at 1550 nm, and
* the figure of merit ``FOM = delta_n / delta_k`` — a large FOM means a
  large phase shift can be programmed with little added optical loss.

The models here are deliberately phenomenological: the refractive index of a
partially crystallised patch is interpolated between the two end states with
an effective-medium (Lorentz-Lorenz style) mixing rule, and multilevel
operation is modelled as a finite set of reachable crystalline fractions.
Literature values are taken from the papers cited in the DAC manuscript
(Soref 2015 for GeSe, Dory 2020 for Ge-Sb-S-Se-Te alloys, and the widely
used GST225 numbers as a low-FOM baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np


@dataclass(frozen=True)
class PCMState:
    """A programmed state of a PCM cell.

    Attributes:
        crystalline_fraction: fraction of the patch volume in the
            crystalline phase, in ``[0, 1]``.
        level: index of the discrete level this fraction corresponds to, or
            ``None`` for a continuously programmed state.
    """

    crystalline_fraction: float
    level: Optional[int] = None

    def __post_init__(self):
        if not 0.0 <= self.crystalline_fraction <= 1.0:
            raise ValueError("crystalline_fraction must lie in [0, 1]")


@dataclass(frozen=True)
class PCMMaterial:
    """Optical model of a phase-change material at a fixed wavelength.

    Attributes:
        name: human-readable material name.
        n_amorphous / k_amorphous: real and imaginary refractive index in
            the amorphous phase at ``wavelength``.
        n_crystalline / k_crystalline: same for the fully crystalline phase.
        wavelength: vacuum wavelength the indices are quoted at [m].
        switching_energy_per_um3: energy to switch 1 um^3 of material
            between phases (single SET or RESET pulse) [J].
        switching_time: duration of a switching pulse [s].
        retention_years: nominal non-volatile retention.
    """

    name: str
    n_amorphous: float
    k_amorphous: float
    n_crystalline: float
    k_crystalline: float
    wavelength: float = 1550e-9
    switching_energy_per_um3: float = 10e-12
    switching_time: float = 100e-9
    retention_years: float = 10.0

    @property
    def delta_n(self) -> float:
        """Real refractive-index contrast between the two phases."""
        return self.n_crystalline - self.n_amorphous

    @property
    def delta_k(self) -> float:
        """Imaginary refractive-index (extinction) contrast between phases."""
        return self.k_crystalline - self.k_amorphous

    @property
    def figure_of_merit(self) -> float:
        """FOM = |delta_n| / |delta_k| (larger is better for phase shifting)."""
        if self.delta_k == 0.0:
            return float("inf")
        return abs(self.delta_n) / abs(self.delta_k)

    def effective_index(self, crystalline_fractions) -> np.ndarray:
        """Vectorised effective complex index for partially crystallised patches.

        Accepts a scalar or an array of crystalline fractions and returns
        the Lorentz-Lorenz effective-medium index elementwise; this is the
        kernel the array-backed synapse state evaluates for whole weight
        matrices at once.
        """
        fractions = np.asarray(crystalline_fractions, dtype=float)
        if np.any(fractions < 0.0) or np.any(fractions > 1.0):
            raise ValueError("crystalline_fraction must lie in [0, 1]")
        eps_a = (self.n_amorphous + 1j * self.k_amorphous) ** 2
        eps_c = (self.n_crystalline + 1j * self.k_crystalline) ** 2
        # Lorentz-Lorenz mixing on (eps - 1)/(eps + 2).
        mix = fractions * (eps_c - 1.0) / (eps_c + 2.0) + (1.0 - fractions) * (
            eps_a - 1.0
        ) / (eps_a + 2.0)
        eps_eff = (1.0 + 2.0 * mix) / (1.0 - mix)
        index = np.sqrt(eps_eff)
        # The physical branch has non-negative absorption.
        return np.where(index.imag < 0, -index, index)

    def refractive_index(self, crystalline_fraction: float) -> complex:
        """Effective complex index for a partially crystallised patch.

        Uses the Lorentz-Lorenz effective-medium approximation on the
        complex permittivity, which is the standard model for partially
        crystallised PCM cells and reduces to the end-point values at
        fractions 0 and 1.
        """
        return complex(self.effective_index(crystalline_fraction))

    def phase_shift_per_length(self, crystalline_fraction, confinement: float = 0.1):
        """Phase shift per unit length relative to the amorphous state [rad/m].

        ``confinement`` is the fraction of the optical mode overlapping the
        PCM patch (the patch sits on top of the waveguide, so only a small
        part of the mode sees it).  Scalar in, float out; array in, array out.
        """
        if not 0.0 < confinement <= 1.0:
            raise ValueError("confinement must lie in (0, 1]")
        index = self.effective_index(crystalline_fraction)
        index_a = self.effective_index(0.0)
        delta_n_eff = confinement * (index.real - index_a.real)
        shift = 2.0 * np.pi * delta_n_eff / self.wavelength
        return float(shift) if np.ndim(crystalline_fraction) == 0 else shift

    def absorption_per_length(self, crystalline_fraction, confinement: float = 0.1):
        """Excess power absorption coefficient relative to amorphous [1/m].

        Returned ``alpha`` attenuates power as ``exp(-alpha * L)``.
        Scalar in, float out; array in, array out.
        """
        if not 0.0 < confinement <= 1.0:
            raise ValueError("confinement must lie in (0, 1]")
        index = self.effective_index(crystalline_fraction)
        index_a = self.effective_index(0.0)
        delta_k_eff = confinement * (index.imag - index_a.imag)
        alpha = 4.0 * np.pi * delta_k_eff / self.wavelength
        return float(alpha) if np.ndim(crystalline_fraction) == 0 else alpha

    def level_fractions(self, n_levels: int) -> np.ndarray:
        """Crystalline fractions of an ``n_levels``-state multilevel cell.

        Levels are spaced uniformly in crystalline fraction, the standard
        assumption for partial-crystallisation multilevel programming.
        """
        if n_levels < 2:
            raise ValueError("a multilevel cell needs at least 2 levels")
        return np.linspace(0.0, 1.0, n_levels)

    def switching_energy(self, volume_um3: float) -> float:
        """Energy of one programming pulse for a patch of given volume [J]."""
        if volume_um3 <= 0.0:
            raise ValueError("volume must be positive")
        return self.switching_energy_per_um3 * volume_um3


#: GSST (Ge2Sb2Se4Te1): the low-loss PCM highlighted in the paper.
GSST = PCMMaterial(
    name="GSST",
    n_amorphous=3.325,
    k_amorphous=0.0002,
    n_crystalline=5.083,
    k_crystalline=0.350,
    switching_energy_per_um3=8e-12,
    switching_time=50e-9,
)

#: GeSe: very low loss in both states (Soref 2015), large FOM.
GESE = PCMMaterial(
    name="GeSe",
    n_amorphous=2.45,
    k_amorphous=0.0001,
    n_crystalline=3.05,
    k_crystalline=0.012,
    switching_energy_per_um3=12e-12,
    switching_time=80e-9,
)

#: GST225: classic, lossy PCM used as an unfavourable baseline.
GST225 = PCMMaterial(
    name="GST225",
    n_amorphous=3.94,
    k_amorphous=0.045,
    n_crystalline=6.11,
    k_crystalline=0.83,
    switching_energy_per_um3=15e-12,
    switching_time=30e-9,
)

#: Registry of the built-in materials, keyed by lower-case name.
registry: Dict[str, PCMMaterial] = {
    "gsst": GSST,
    "gese": GESE,
    "gst225": GST225,
}


def get_material(name: str) -> PCMMaterial:
    """Look up a built-in PCM material by (case-insensitive) name."""
    key = name.strip().lower()
    if key not in registry:
        raise KeyError(f"unknown PCM material {name!r}; known: {sorted(registry)}")
    return registry[key]
