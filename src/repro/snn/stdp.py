"""Spike-timing-dependent plasticity (STDP) for photonic synapses.

The paper proposes investigating "bio-inspired learning rules such as
spike-timing dependent plasticity (STDP)" on top of the accumulation
behaviour of PCM cells.  The rule implemented here is the standard
exponential pair-based STDP window:

* pre before post (``dt = t_post - t_pre > 0``): potentiation
  ``dw = A_plus * exp(-dt / tau_plus)``
* post before pre (``dt < 0``): depression
  ``dw = -A_minus * exp(dt / tau_minus)``

Updates are applied through the PCM pulse mechanism of the synapse, so the
realised weight change is quantised by the per-pulse granularity of the
device — the hardware-faithful detail that distinguishes this from textbook
STDP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.snn.synapse import PhotonicSynapse


@dataclass(frozen=True)
class STDPRule:
    """Exponential pair-based STDP rule.

    Attributes:
        a_plus: potentiation amplitude (weight units).
        a_minus: depression amplitude (weight units).
        tau_plus: potentiation time constant [s].
        tau_minus: depression time constant [s].
        w_min / w_max: weight clipping range.
    """

    a_plus: float = 0.08
    a_minus: float = 0.05
    tau_plus: float = 2.0e-9
    tau_minus: float = 2.0e-9
    w_min: float = 0.0
    w_max: float = 1.0

    def __post_init__(self):
        if self.tau_plus <= 0 or self.tau_minus <= 0:
            raise ValueError("STDP time constants must be positive")
        if self.w_min >= self.w_max:
            raise ValueError("w_min must be below w_max")

    def weight_change(self, delta_t: float) -> float:
        """Weight change for a pre/post spike-time difference ``t_post - t_pre``."""
        if delta_t >= 0:
            return self.a_plus * float(np.exp(-delta_t / self.tau_plus))
        return -self.a_minus * float(np.exp(delta_t / self.tau_minus))

    def window(self, delta_times: np.ndarray) -> np.ndarray:
        """Vectorised STDP window (for plotting / characterisation)."""
        return self.weight_changes(delta_times)

    def weight_changes(self, delta_times: np.ndarray) -> np.ndarray:
        """Elementwise :meth:`weight_change` for an array of time differences.

        The decaying exponent is evaluated on ``-|dt|`` for both branches
        (``np.where`` computes both), so large time differences never
        overflow.  This is the single vectorised STDP curve, used by the
        array-backed network simulator on whole synapse rows/columns.
        """
        delta_times = np.asarray(delta_times, dtype=float)
        magnitude = np.abs(delta_times)
        return np.where(
            delta_times >= 0,
            self.a_plus * np.exp(-magnitude / self.tau_plus),
            -self.a_minus * np.exp(-magnitude / self.tau_minus),
        )

    def bounded_deltas(
        self,
        weights: np.ndarray,
        delta_times: np.ndarray,
        valid: np.ndarray = None,
    ) -> np.ndarray:
        """Clipped weight deltas for an array of synapses.

        The realised change moves each weight toward
        ``clip(w + weight_change(dt), w_min, w_max)`` — the vector analogue
        of :meth:`_bounded_update`.  Entries where ``valid`` is False (no
        paired spike recorded yet) get a zero delta.
        """
        weights = np.asarray(weights, dtype=float)
        changes = self.weight_changes(delta_times)
        targets = np.clip(weights + changes, self.w_min, self.w_max)
        deltas = targets - weights
        if valid is not None:
            deltas = np.where(valid, deltas, 0.0)
        return deltas

    def apply_on_post_spike(self, synapse: PhotonicSynapse, post_time: float) -> float:
        """Potentiate a synapse when its postsynaptic neuron fires.

        Uses the most recent presynaptic spike; returns the realised weight.
        """
        synapse.record_post_spike(post_time)
        if synapse.last_pre_spike is None:
            return synapse.weight
        delta_t = post_time - synapse.last_pre_spike
        change = self.weight_change(delta_t)
        return self._bounded_update(synapse, change)

    def apply_on_pre_spike(self, synapse: PhotonicSynapse, pre_time: float) -> float:
        """Depress a synapse when a presynaptic spike follows a postsynaptic one."""
        if synapse.last_post_spike is None:
            return synapse.weight
        delta_t = synapse.last_post_spike - pre_time
        change = self.weight_change(delta_t)
        return self._bounded_update(synapse, change)

    def _bounded_update(self, synapse: PhotonicSynapse, change: float) -> float:
        current = synapse.weight
        target = float(np.clip(current + change, self.w_min, self.w_max))
        return synapse.update_weight(target - current)
