"""Photonic spiking neural network substrate.

Excitable-laser neurons, PCM synapses with accumulation behaviour, STDP
learning, spike encodings and an event-driven network simulator — the
spiking side of the paper's neuromorphic architecture (Section 3).
"""

from repro.snn.neuron import PhotonicLIFNeuron, ExcitableLaserNeuron
from repro.snn.synapse import PhotonicSynapse
from repro.snn.stdp import STDPRule
from repro.snn.encoding import (
    SpikeTrain,
    rate_encode,
    latency_encode,
    merge_spike_trains,
    spike_count_decode,
)
from repro.snn.network import BatchedSNNResult, PhotonicSNN, SNNResult

__all__ = [
    "BatchedSNNResult",
    "PhotonicLIFNeuron",
    "ExcitableLaserNeuron",
    "PhotonicSynapse",
    "STDPRule",
    "SpikeTrain",
    "rate_encode",
    "latency_encode",
    "merge_spike_trains",
    "spike_count_decode",
    "PhotonicSNN",
    "SNNResult",
]
