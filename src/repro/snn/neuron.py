"""Photonic spiking neuron models.

Two abstraction levels are provided:

* :class:`PhotonicLIFNeuron` — a leaky integrate-and-fire abstraction whose
  parameters (threshold, leak, refractory period) are extracted from the
  excitable-laser device model.  This is the neuron the network-level SNN
  simulator uses, because time-stepping the full Yamada equations for every
  neuron of a network is needlessly expensive.
* :class:`ExcitableLaserNeuron` — a thin wrapper around the Yamada-model
  laser (``repro.devices.laser.ExcitableLaser``) used to *validate* the
  abstraction: it exhibits a firing threshold, all-or-nothing pulses and a
  refractory period, the three behaviours the LIF abstraction keeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.devices.laser import ExcitableLaser


@dataclass
class PhotonicLIFNeuron:
    """Leaky integrate-and-fire abstraction of an excitable laser neuron.

    The membrane variable models the gain-carrier reservoir of the laser:
    incoming optical pulses deplete/charge it, it leaks back to rest, and
    when it crosses the threshold the device emits one stereotyped spike
    and becomes refractory.

    Attributes:
        threshold: firing threshold of the membrane variable.
        leak_time_constant: exponential leak time constant [s].
        refractory_period: time after a spike during which inputs are
            ignored [s].
        spike_energy: optical energy of one emitted spike [J] (energy
            accounting only).
        membrane: current membrane value.
    """

    threshold: float = 1.0
    leak_time_constant: float = 1.0e-9
    refractory_period: float = 0.5e-9
    spike_energy: float = 20e-15
    membrane: float = 0.0

    def __post_init__(self):
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.leak_time_constant <= 0:
            raise ValueError("leak_time_constant must be positive")
        self._last_spike_time: Optional[float] = None
        self._last_update_time = 0.0

    def reset(self) -> None:
        """Reset membrane and refractory state."""
        self.membrane = 0.0
        self._last_spike_time = None
        self._last_update_time = 0.0

    def _apply_leak(self, time: float) -> None:
        elapsed = time - self._last_update_time
        if elapsed > 0:
            self.membrane *= float(np.exp(-elapsed / self.leak_time_constant))
            self._last_update_time = time

    def receive(self, amplitude: float, time: float) -> bool:
        """Integrate an input pulse at ``time``; returns True if a spike fires.

        ``amplitude`` is the weighted optical pulse energy arriving at the
        gain section (already multiplied by the synaptic weight).
        """
        self._apply_leak(time)
        if (
            self._last_spike_time is not None
            and time - self._last_spike_time < self.refractory_period
        ):
            return False
        self.membrane += float(amplitude)
        if self.membrane >= self.threshold:
            self.membrane = 0.0
            self._last_spike_time = time
            return True
        return False

    @property
    def last_spike_time(self) -> Optional[float]:
        """Time of the most recent output spike, or None."""
        return self._last_spike_time


@dataclass
class ExcitableLaserNeuron:
    """Device-level spiking neuron: a Yamada-model Q-switched laser.

    Attributes:
        laser: the time-stepped excitable laser simulator.
        input_coupling: scale factor from (weighted) input pulse amplitude
            to the drive term of the intensity equation.
    """

    laser: ExcitableLaser = field(default_factory=ExcitableLaser)
    input_coupling: float = 1.0

    def stimulate(
        self,
        pulse_amplitudes: List[float],
        pulse_times: List[float],
        duration: float,
        pulse_width: float = 1.0,
    ) -> dict:
        """Drive the laser with a pulse train and return the response.

        Times and durations are in units of the cavity photon lifetime (the
        natural time unit of the Yamada model).  Returns a dictionary with
        the intensity trace, the detected output spike times, and the time
        axis.
        """
        if len(pulse_amplitudes) != len(pulse_times):
            raise ValueError("pulse_amplitudes and pulse_times must have equal length")
        if duration <= 0:
            raise ValueError("duration must be positive")
        dt = self.laser.dt
        n_steps = int(np.ceil(duration / dt))
        drive = np.zeros(n_steps)
        for amplitude, time in zip(pulse_amplitudes, pulse_times):
            start = int(round(time / dt))
            stop = min(start + max(1, int(round(pulse_width / dt))), n_steps)
            if 0 <= start < n_steps:
                drive[start:stop] += self.input_coupling * amplitude
        self.laser.reset()
        trace = self.laser.run(drive)
        spike_times = self.laser.detect_spikes(trace)
        return {
            "time": np.arange(n_steps) * dt,
            "intensity": trace,
            "spike_times": spike_times,
        }

    def firing_threshold(
        self,
        amplitudes: np.ndarray,
        settle_time: float = 500.0,
        pulse_width: float = 1.0,
    ) -> float:
        """Empirically find the minimum pulse amplitude that triggers a spike.

        Sweeps the given amplitudes (sorted ascending) and returns the first
        one that produces an output spike; returns ``inf`` if none does.
        This is the excitability-threshold characterisation of experiment E7.
        """
        for amplitude in np.sort(np.asarray(amplitudes, dtype=float)):
            response = self.stimulate([amplitude], [settle_time], settle_time * 2, pulse_width)
            if response["spike_times"].size > 0:
                return float(amplitude)
        return float("inf")
