"""Photonic synapses: PCM cells between spiking neurons.

A synapse weights the optical spike travelling from a presynaptic to a
postsynaptic neuron.  The weight is stored in the transmission of a PCM
cell (non-volatile, multilevel, with pulse-accumulation dynamics), so
synaptic plasticity is implemented with the same SET/RESET pulses the
device physics provides — this is what makes on-chip STDP possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.devices.pcm_cell import (
    PCMSynapticCell,
    pcm_normalized_weight,
    pcm_transmission,
    pulse_granular_fraction_update,
)
from repro.materials.pcm import GSST, PCMMaterial


@dataclass
class PhotonicSynapse:
    """A plastic photonic synapse backed by a PCM cell.

    Attributes:
        pre: index of the presynaptic neuron.
        post: index of the postsynaptic neuron.
        cell: the PCM device storing the weight.
        delay: propagation delay of the connecting waveguide [s].
    """

    pre: int
    post: int
    cell: PCMSynapticCell = field(default_factory=PCMSynapticCell)
    delay: float = 10e-12

    def __post_init__(self):
        if self.pre < 0 or self.post < 0:
            raise ValueError("neuron indices must be non-negative")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")
        self.last_pre_spike: Optional[float] = None
        self.last_post_spike: Optional[float] = None

    @property
    def weight(self) -> float:
        """Current synaptic weight (PCM cell transmission, normalised)."""
        return self.cell.weight

    def transmit(self, spike_time: float, amplitude: float = 1.0) -> tuple:
        """Weight a presynaptic spike; returns (arrival_time, weighted_amplitude)."""
        self.last_pre_spike = spike_time
        return spike_time + self.delay, amplitude * self.weight

    def record_post_spike(self, spike_time: float) -> None:
        """Record a postsynaptic spike (needed by the STDP rule)."""
        self.last_post_spike = spike_time

    def update_weight(self, delta: float) -> float:
        """Apply a plasticity update through the PCM pulse mechanism."""
        return self.cell.adjust_weight(delta)

    def programming_energy(self) -> float:
        """Energy of one plasticity programming pulse [J]."""
        return self.cell.programming_energy(1)


class SynapseArray:
    """Array-backed PCM synapse state for an (n_pre, n_post) crossbar.

    Stores the crystalline fraction of every synapse's PCM cell in one
    matrix and evaluates weights and pulse-granular plasticity updates as
    vector operations over whole rows (one presynaptic fan-out) or columns
    (one postsynaptic STDP update).  The per-element physics is the *same
    code* as :class:`PCMSynapticCell` — both delegate to the shared
    ``pcm_transmission`` / ``pcm_normalized_weight`` /
    ``pulse_granular_fraction_update`` kernels — so a crossbar of scalar
    cells and a ``SynapseArray`` evolve identically.

    Attributes:
        fractions: (n_pre, n_post) crystalline fractions in [0, 1].
        material / patch_length / confinement: PCM cell optical model.
        pulse_crystallization_step / pulse_amorphization_step: fraction
            change per depressing / potentiating pulse.
        delay: propagation delay of the connecting waveguides [s] (shared).
    """

    def __init__(
        self,
        crystalline_fractions: np.ndarray,
        material: PCMMaterial = GSST,
        patch_length: float = 5e-6,
        confinement: float = 0.1,
        pulse_crystallization_step: float = 0.05,
        pulse_amorphization_step: float = 0.05,
        delay: float = 10e-12,
    ):
        fractions = np.asarray(crystalline_fractions, dtype=float)
        if fractions.ndim != 2:
            raise ValueError("crystalline_fractions must be an (n_pre, n_post) matrix")
        if np.any(fractions < 0.0) or np.any(fractions > 1.0):
            raise ValueError("crystalline fractions must lie in [0, 1]")
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.fractions = fractions.copy()
        self.material = material
        self.patch_length = float(patch_length)
        self.confinement = float(confinement)
        self.pulse_crystallization_step = float(pulse_crystallization_step)
        self.pulse_amorphization_step = float(pulse_amorphization_step)
        self.delay = float(delay)
        self._t_min = self._transmission_of(np.array(1.0))
        self._t_max = self._transmission_of(np.array(0.0))

    @property
    def shape(self) -> tuple:
        """Crossbar dimensions ``(n_pre, n_post)``."""
        return self.fractions.shape

    def _transmission_of(self, fractions: np.ndarray) -> np.ndarray:
        return pcm_transmission(self.material, fractions, self.confinement, self.patch_length)

    def weights_of(self, fractions: np.ndarray) -> np.ndarray:
        """Normalised weights in [0, 1] for an array of fractions."""
        return pcm_normalized_weight(
            self.material,
            fractions,
            self.confinement,
            self.patch_length,
            t_min=self._t_min,
            t_max=self._t_max,
        )

    def weights(self) -> np.ndarray:
        """The full (n_pre, n_post) synaptic weight matrix."""
        return self.weights_of(self.fractions)

    def row_weights(self, pre: int) -> np.ndarray:
        """Weights of one presynaptic fan-out (row ``pre``)."""
        return self.weights_of(self.fractions[pre, :])

    def column_weights(self, post: int) -> np.ndarray:
        """Weights of one postsynaptic fan-in (column ``post``)."""
        return self.weights_of(self.fractions[:, post])

    def _adjusted_fractions(
        self,
        fractions: np.ndarray,
        delta_weights: np.ndarray,
        current_weights: np.ndarray = None,
    ) -> np.ndarray:
        """Pulse-granular fraction update for elementwise weight deltas."""
        return pulse_granular_fraction_update(
            fractions,
            delta_weights,
            self.weights_of,
            self.pulse_crystallization_step,
            self.pulse_amorphization_step,
            current_weights=current_weights,
        )

    def adjust_row(
        self, pre: int, delta_weights: np.ndarray, current_weights: np.ndarray = None
    ) -> None:
        """Apply weight deltas to all synapses of presynaptic channel ``pre``.

        ``current_weights`` optionally passes in the already-evaluated
        weights of the row to avoid recomputing them.
        """
        self.fractions[pre, :] = self._adjusted_fractions(
            self.fractions[pre, :], delta_weights, current_weights
        )

    def adjust_column(
        self, post: int, delta_weights: np.ndarray, current_weights: np.ndarray = None
    ) -> None:
        """Apply weight deltas to all synapses of postsynaptic neuron ``post``."""
        self.fractions[:, post] = self._adjusted_fractions(
            self.fractions[:, post], delta_weights, current_weights
        )

    def adjust(
        self, delta_weights: np.ndarray, current_weights: np.ndarray = None
    ) -> None:
        """Apply an (n_pre, n_post) matrix of weight deltas in one pulse pass.

        The full-crossbar analogue of :meth:`adjust_row` /
        :meth:`adjust_column`: every cell receives its pulse-granular update
        from the same elementwise kernel, so one matrix call is equivalent
        to (and cheaper than) a column-by-column sweep.  Used by the fused
        serving path to apply a whole micro-batch STDP update at once.
        """
        delta_weights = np.asarray(delta_weights, dtype=float)
        if delta_weights.shape != self.fractions.shape:
            raise ValueError(
                f"delta_weights shape {delta_weights.shape} does not match "
                f"crossbar shape {self.fractions.shape}"
            )
        self.fractions = self._adjusted_fractions(
            self.fractions, delta_weights, current_weights
        )

    def programming_energy_per_pulse(self) -> float:
        """Energy of one plasticity programming pulse [J] (state-independent)."""
        volume_um3 = 0.05 * self.patch_length * 1e6
        return self.material.switching_energy(volume_um3)
