"""Photonic synapses: PCM cells between spiking neurons.

A synapse weights the optical spike travelling from a presynaptic to a
postsynaptic neuron.  The weight is stored in the transmission of a PCM
cell (non-volatile, multilevel, with pulse-accumulation dynamics), so
synaptic plasticity is implemented with the same SET/RESET pulses the
device physics provides — this is what makes on-chip STDP possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.devices.pcm_cell import PCMSynapticCell


@dataclass
class PhotonicSynapse:
    """A plastic photonic synapse backed by a PCM cell.

    Attributes:
        pre: index of the presynaptic neuron.
        post: index of the postsynaptic neuron.
        cell: the PCM device storing the weight.
        delay: propagation delay of the connecting waveguide [s].
    """

    pre: int
    post: int
    cell: PCMSynapticCell = field(default_factory=PCMSynapticCell)
    delay: float = 10e-12

    def __post_init__(self):
        if self.pre < 0 or self.post < 0:
            raise ValueError("neuron indices must be non-negative")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")
        self.last_pre_spike: Optional[float] = None
        self.last_post_spike: Optional[float] = None

    @property
    def weight(self) -> float:
        """Current synaptic weight (PCM cell transmission, normalised)."""
        return self.cell.weight

    def transmit(self, spike_time: float, amplitude: float = 1.0) -> tuple:
        """Weight a presynaptic spike; returns (arrival_time, weighted_amplitude)."""
        self.last_pre_spike = spike_time
        return spike_time + self.delay, amplitude * self.weight

    def record_post_spike(self, spike_time: float) -> None:
        """Record a postsynaptic spike (needed by the STDP rule)."""
        self.last_post_spike = spike_time

    def update_weight(self, delta: float) -> float:
        """Apply a plasticity update through the PCM pulse mechanism."""
        return self.cell.adjust_weight(delta)

    def programming_energy(self) -> float:
        """Energy of one plasticity programming pulse [J]."""
        return self.cell.programming_energy(1)
