"""Event-driven photonic spiking neural network simulator.

Wires :class:`PhotonicLIFNeuron` neurons and an array-backed crossbar of
PCM synapses (:class:`repro.snn.synapse.SynapseArray`) into a feed-forward
network, simulates it event by event (spike by spike), and optionally
applies the STDP rule online.  This is the substrate for experiment E7:
unsupervised learning of input patterns through STDP on PCM synaptic
weights.

The event loop stays event-driven (spikes are processed in time order),
but all per-event synapse work is vectorised: a presynaptic spike fans out
through one weight-matrix row, and an output spike applies the STDP update
to one weight-matrix column, instead of touching ``n`` Python synapse
objects one by one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import heapq

import numpy as np

from repro.devices.pcm_cell import PCMSynapticCell
from repro.snn.encoding import SpikeTrain, merge_spike_trains
from repro.snn.neuron import PhotonicLIFNeuron
from repro.snn.stdp import STDPRule
from repro.snn.synapse import PhotonicSynapse, SynapseArray
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class SNNResult:
    """Outcome of one SNN simulation run.

    Attributes:
        output_spikes: spike times per output neuron.
        total_input_spikes: number of input events processed.
        total_output_spikes: number of output spikes emitted.
        plasticity_events: number of STDP weight updates applied.
        energy_j: optical + programming energy consumed.
    """

    output_spikes: List[np.ndarray]
    total_input_spikes: int
    total_output_spikes: int
    plasticity_events: int
    energy_j: float

    def spike_counts(self) -> np.ndarray:
        """Output spike counts (the rate-decoded responses)."""
        return np.array([len(times) for times in self.output_spikes])


class PhotonicSNN:
    """A single-layer, all-to-all photonic spiking network.

    ``n_inputs`` input channels connect to ``n_outputs`` excitable-laser
    neurons through PCM synapses.  Optional lateral inhibition implements a
    soft winner-take-all so different output neurons specialise to
    different input patterns during STDP learning.

    Attributes:
        n_inputs / n_outputs: layer dimensions.
        neurons: the output LIF neurons.
        synapse_array: array-backed PCM synapse state (weight and
            crystalline-fraction matrices).
        stdp: the plasticity rule applied online (None disables learning).
        inhibition: membrane decrement applied to all other output neurons
            when one fires (lateral inhibition strength).
    """

    def __init__(
        self,
        n_inputs: int,
        n_outputs: int,
        stdp: Optional[STDPRule] = None,
        inhibition: float = 0.0,
        initial_weight_spread: float = 0.2,
        neuron_threshold: float = 1.0,
        rng: RngLike = 0,
    ):
        if n_inputs < 1 or n_outputs < 1:
            raise ValueError("network dimensions must be positive")
        self.n_inputs = int(n_inputs)
        self.n_outputs = int(n_outputs)
        self.stdp = stdp
        self.inhibition = float(inhibition)
        generator = ensure_rng(rng)
        self.neurons = [
            PhotonicLIFNeuron(threshold=neuron_threshold) for _ in range(self.n_outputs)
        ]
        fractions = np.clip(
            0.5
            + generator.uniform(
                -initial_weight_spread,
                initial_weight_spread,
                size=(self.n_inputs, self.n_outputs),
            ),
            0.0,
            1.0,
        )
        self.synapse_array = SynapseArray(fractions)
        # Most recent pre/post spike times (NaN = none yet); like the cell
        # state these persist across run() calls.
        self._last_pre = np.full(self.n_inputs, np.nan)
        self._last_post = np.full(self.n_outputs, np.nan)

    # ------------------------------------------------------------------ #
    # weights
    # ------------------------------------------------------------------ #
    def weight_matrix(self) -> np.ndarray:
        """Current synaptic weights as an (n_inputs, n_outputs) matrix."""
        return self.synapse_array.weights()

    @property
    def synapses(self) -> Dict[Tuple[int, int], PhotonicSynapse]:
        """Object view of the crossbar, keyed by ``(pre, post)``.

        Built on demand from the array state for inspection and
        compatibility; mutating the returned objects does not write back —
        plasticity acts on :attr:`synapse_array`.
        """
        view: Dict[Tuple[int, int], PhotonicSynapse] = {}
        for pre in range(self.n_inputs):
            for post in range(self.n_outputs):
                cell = PCMSynapticCell(
                    material=self.synapse_array.material,
                    patch_length=self.synapse_array.patch_length,
                    confinement=self.synapse_array.confinement,
                    pulse_crystallization_step=self.synapse_array.pulse_crystallization_step,
                    pulse_amorphization_step=self.synapse_array.pulse_amorphization_step,
                    crystalline_fraction=float(self.synapse_array.fractions[pre, post]),
                )
                synapse = PhotonicSynapse(
                    pre=pre, post=post, cell=cell, delay=self.synapse_array.delay
                )
                if np.isfinite(self._last_pre[pre]):
                    synapse.last_pre_spike = float(self._last_pre[pre])
                if np.isfinite(self._last_post[post]):
                    synapse.last_post_spike = float(self._last_post[post])
                view[(pre, post)] = synapse
        return view

    # ------------------------------------------------------------------ #
    # simulation
    # ------------------------------------------------------------------ #
    def run(
        self,
        input_trains: Sequence[SpikeTrain],
        learning: bool = True,
        input_amplitude: float = 0.6,
    ) -> SNNResult:
        """Simulate the network response to a set of input spike trains.

        Events are processed in time order.  Each input spike is fanned out
        through its synapse row; when an output neuron fires, lateral
        inhibition is applied and (if learning) STDP potentiates the
        synapses whose presynaptic spikes preceded the output spike and
        depresses later ones — one column update per output spike.
        """
        if len(input_trains) > self.n_inputs:
            raise ValueError("more input trains than input channels")
        for neuron in self.neurons:
            neuron.reset()

        events = merge_spike_trains(list(input_trains))
        queue: List[Tuple[float, int, int]] = []
        for order, (time, neuron_index) in enumerate(events):
            heapq.heappush(queue, (time, order, neuron_index))

        output_spikes: List[List[float]] = [[] for _ in range(self.n_outputs)]
        plasticity_events = 0
        energy = 0.0
        spike_energy = self.neurons[0].spike_energy if self.neurons else 0.0
        pulse_energy = self.synapse_array.programming_energy_per_pulse()
        delay = self.synapse_array.delay
        plastic = learning and self.stdp is not None
        sequence = len(events)

        while queue:
            time, _, pre = heapq.heappop(queue)
            arrival = time + delay
            row_weights = self.synapse_array.row_weights(pre)
            amplitudes = input_amplitude * row_weights
            self._last_pre[pre] = time
            if plastic:
                # Depress (or potentiate, for acausal orderings) the whole
                # fan-out row against the recorded postsynaptic spike times.
                recorded = np.isfinite(self._last_post)
                if np.any(recorded):
                    delta_t = np.where(recorded, self._last_post - time, 0.0)
                    deltas = self.stdp.bounded_deltas(row_weights, delta_t, valid=recorded)
                    self.synapse_array.adjust_row(pre, deltas, current_weights=row_weights)
            for post in range(self.n_outputs):
                fired = self.neurons[post].receive(amplitudes[post], arrival)
                if fired:
                    output_spikes[post].append(arrival)
                    energy += spike_energy
                    if self.inhibition > 0:
                        for other in range(self.n_outputs):
                            if other != post:
                                self.neurons[other].membrane -= self.inhibition
                    if plastic:
                        self._last_post[post] = arrival
                        seen = np.isfinite(self._last_pre)
                        delta_t = np.where(seen, arrival - self._last_pre, 0.0)
                        column = self.synapse_array.column_weights(post)
                        deltas = self.stdp.bounded_deltas(column, delta_t, valid=seen)
                        self.synapse_array.adjust_column(post, deltas, current_weights=column)
                        plasticity_events += self.n_inputs
                        energy += self.n_inputs * pulse_energy

        return SNNResult(
            output_spikes=[np.asarray(times) for times in output_spikes],
            total_input_spikes=sequence,
            total_output_spikes=int(sum(len(times) for times in output_spikes)),
            plasticity_events=plasticity_events,
            energy_j=energy,
        )

    def train(
        self,
        patterns: Sequence[Sequence[SpikeTrain]],
        epochs: int = 5,
    ) -> List[np.ndarray]:
        """Run several epochs of unsupervised STDP over a pattern set.

        Returns the weight matrix after every epoch so learning progress
        can be inspected.
        """
        if self.stdp is None:
            raise ValueError("training requires an STDP rule")
        history = []
        for _ in range(max(1, epochs)):
            for pattern in patterns:
                self.run(pattern, learning=True)
            history.append(self.weight_matrix())
        return history

    def respond(self, pattern: Sequence[SpikeTrain]) -> np.ndarray:
        """Inference-mode response: output spike counts without learning."""
        result = self.run(pattern, learning=False)
        return result.spike_counts()
