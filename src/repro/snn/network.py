"""Event-driven photonic spiking neural network simulator.

Wires :class:`PhotonicLIFNeuron` neurons and an array-backed crossbar of
PCM synapses (:class:`repro.snn.synapse.SynapseArray`) into a feed-forward
network, simulates it event by event (spike by spike), and optionally
applies the STDP rule online.  This is the substrate for experiment E7:
unsupervised learning of input patterns through STDP on PCM synaptic
weights.

The event loop stays event-driven (spikes are processed in time order),
but all per-event synapse work is vectorised: a presynaptic spike fans out
through one weight-matrix row, and an output spike applies the STDP update
to one weight-matrix column, instead of touching ``n`` Python synapse
objects one by one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import heapq

import numpy as np

from repro.devices.pcm_cell import PCMSynapticCell
from repro.snn.encoding import SpikeTrain, merge_spike_trains
from repro.snn.neuron import PhotonicLIFNeuron
from repro.snn.stdp import STDPRule
from repro.snn.synapse import PhotonicSynapse, SynapseArray
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class BatchedSNNResult:
    """Outcome of one fused multi-pattern SNN run (:meth:`PhotonicSNN.run_patterns`).

    Attributes:
        spike_counts: (n_patterns, n_outputs) output spike counts — the
            rate-decoded responses, one row per input pattern.
        last_pre: (n_patterns, n_inputs) most recent presynaptic spike time
            per channel within each pattern (NaN = channel never spiked).
        last_post: (n_patterns, n_outputs) most recent output spike time per
            neuron within each pattern (NaN = neuron never fired).
        total_input_spikes: input events processed across the batch.
        total_output_spikes: output spikes emitted across the batch.
        energy_j: optical spike energy consumed across the batch.
    """

    spike_counts: np.ndarray
    last_pre: np.ndarray
    last_post: np.ndarray
    total_input_spikes: int
    total_output_spikes: int
    energy_j: float

    @property
    def n_patterns(self) -> int:
        """Number of patterns served by the fused run."""
        return self.spike_counts.shape[0]


@dataclass
class SNNResult:
    """Outcome of one SNN simulation run.

    Attributes:
        output_spikes: spike times per output neuron.
        total_input_spikes: number of input events processed.
        total_output_spikes: number of output spikes emitted.
        plasticity_events: number of STDP weight updates applied.
        energy_j: optical + programming energy consumed.
    """

    output_spikes: List[np.ndarray]
    total_input_spikes: int
    total_output_spikes: int
    plasticity_events: int
    energy_j: float

    def spike_counts(self) -> np.ndarray:
        """Output spike counts (the rate-decoded responses)."""
        return np.array([len(times) for times in self.output_spikes])


class PhotonicSNN:
    """A single-layer, all-to-all photonic spiking network.

    ``n_inputs`` input channels connect to ``n_outputs`` excitable-laser
    neurons through PCM synapses.  Optional lateral inhibition implements a
    soft winner-take-all so different output neurons specialise to
    different input patterns during STDP learning.

    Attributes:
        n_inputs / n_outputs: layer dimensions.
        neurons: the output LIF neurons.
        synapse_array: array-backed PCM synapse state (weight and
            crystalline-fraction matrices).
        stdp: the plasticity rule applied online (None disables learning).
        inhibition: membrane decrement applied to all other output neurons
            when one fires (lateral inhibition strength).
    """

    def __init__(
        self,
        n_inputs: int,
        n_outputs: int,
        stdp: Optional[STDPRule] = None,
        inhibition: float = 0.0,
        initial_weight_spread: float = 0.2,
        neuron_threshold: float = 1.0,
        rng: RngLike = 0,
    ):
        if n_inputs < 1 or n_outputs < 1:
            raise ValueError("network dimensions must be positive")
        self.n_inputs = int(n_inputs)
        self.n_outputs = int(n_outputs)
        self.stdp = stdp
        self.inhibition = float(inhibition)
        generator = ensure_rng(rng)
        self.neurons = [
            PhotonicLIFNeuron(threshold=neuron_threshold) for _ in range(self.n_outputs)
        ]
        fractions = np.clip(
            0.5
            + generator.uniform(
                -initial_weight_spread,
                initial_weight_spread,
                size=(self.n_inputs, self.n_outputs),
            ),
            0.0,
            1.0,
        )
        self.synapse_array = SynapseArray(fractions)
        # Most recent pre/post spike times (NaN = none yet); like the cell
        # state these persist across run() calls.
        self._last_pre = np.full(self.n_inputs, np.nan)
        self._last_post = np.full(self.n_outputs, np.nan)

    # ------------------------------------------------------------------ #
    # weights
    # ------------------------------------------------------------------ #
    def weight_matrix(self) -> np.ndarray:
        """Current synaptic weights as an (n_inputs, n_outputs) matrix."""
        return self.synapse_array.weights()

    @property
    def synapses(self) -> Dict[Tuple[int, int], PhotonicSynapse]:
        """Object view of the crossbar, keyed by ``(pre, post)``.

        Built on demand from the array state for inspection and
        compatibility; mutating the returned objects does not write back —
        plasticity acts on :attr:`synapse_array`.
        """
        view: Dict[Tuple[int, int], PhotonicSynapse] = {}
        for pre in range(self.n_inputs):
            for post in range(self.n_outputs):
                cell = PCMSynapticCell(
                    material=self.synapse_array.material,
                    patch_length=self.synapse_array.patch_length,
                    confinement=self.synapse_array.confinement,
                    pulse_crystallization_step=self.synapse_array.pulse_crystallization_step,
                    pulse_amorphization_step=self.synapse_array.pulse_amorphization_step,
                    crystalline_fraction=float(self.synapse_array.fractions[pre, post]),
                )
                synapse = PhotonicSynapse(
                    pre=pre, post=post, cell=cell, delay=self.synapse_array.delay
                )
                if np.isfinite(self._last_pre[pre]):
                    synapse.last_pre_spike = float(self._last_pre[pre])
                if np.isfinite(self._last_post[post]):
                    synapse.last_post_spike = float(self._last_post[post])
                view[(pre, post)] = synapse
        return view

    # ------------------------------------------------------------------ #
    # simulation
    # ------------------------------------------------------------------ #
    def run(
        self,
        input_trains: Sequence[SpikeTrain],
        learning: bool = True,
        input_amplitude: float = 0.6,
    ) -> SNNResult:
        """Simulate the network response to a set of input spike trains.

        Events are processed in time order.  Each input spike is fanned out
        through its synapse row; when an output neuron fires, lateral
        inhibition is applied and (if learning) STDP potentiates the
        synapses whose presynaptic spikes preceded the output spike and
        depresses later ones — one column update per output spike.
        """
        if len(input_trains) > self.n_inputs:
            raise ValueError("more input trains than input channels")
        for neuron in self.neurons:
            neuron.reset()

        events = merge_spike_trains(list(input_trains))
        queue: List[Tuple[float, int, int]] = []
        for order, (time, neuron_index) in enumerate(events):
            heapq.heappush(queue, (time, order, neuron_index))

        output_spikes: List[List[float]] = [[] for _ in range(self.n_outputs)]
        plasticity_events = 0
        energy = 0.0
        spike_energy = self.neurons[0].spike_energy if self.neurons else 0.0
        pulse_energy = self.synapse_array.programming_energy_per_pulse()
        delay = self.synapse_array.delay
        plastic = learning and self.stdp is not None
        sequence = len(events)

        while queue:
            time, _, pre = heapq.heappop(queue)
            arrival = time + delay
            row_weights = self.synapse_array.row_weights(pre)
            amplitudes = input_amplitude * row_weights
            self._last_pre[pre] = time
            if plastic:
                # Depress (or potentiate, for acausal orderings) the whole
                # fan-out row against the recorded postsynaptic spike times.
                recorded = np.isfinite(self._last_post)
                if np.any(recorded):
                    delta_t = np.where(recorded, self._last_post - time, 0.0)
                    deltas = self.stdp.bounded_deltas(row_weights, delta_t, valid=recorded)
                    self.synapse_array.adjust_row(pre, deltas, current_weights=row_weights)
            for post in range(self.n_outputs):
                fired = self.neurons[post].receive(amplitudes[post], arrival)
                if fired:
                    output_spikes[post].append(arrival)
                    energy += spike_energy
                    if self.inhibition > 0:
                        for other in range(self.n_outputs):
                            if other != post:
                                self.neurons[other].membrane -= self.inhibition
                    if plastic:
                        self._last_post[post] = arrival
                        seen = np.isfinite(self._last_pre)
                        delta_t = np.where(seen, arrival - self._last_pre, 0.0)
                        column = self.synapse_array.column_weights(post)
                        deltas = self.stdp.bounded_deltas(column, delta_t, valid=seen)
                        self.synapse_array.adjust_column(post, deltas, current_weights=column)
                        plasticity_events += self.n_inputs
                        energy += self.n_inputs * pulse_energy

        return SNNResult(
            output_spikes=[np.asarray(times) for times in output_spikes],
            total_input_spikes=sequence,
            total_output_spikes=int(sum(len(times) for times in output_spikes)),
            plasticity_events=plasticity_events,
            energy_j=energy,
        )

    # ------------------------------------------------------------------ #
    # fused multi-pattern simulation (the serving datapath)
    # ------------------------------------------------------------------ #
    def run_patterns(
        self,
        patterns: Sequence[Sequence[SpikeTrain]],
        input_amplitude: float = 0.6,
    ) -> BatchedSNNResult:
        """Simulate the inference response to a batch of patterns in one pass.

        This is the spiking analogue of ``apply_batch``: the synaptic weight
        matrix is evaluated **once** for the whole batch (serial :meth:`run`
        re-evaluates one weight row per input event) and the event loop is
        vectorised across patterns — step ``i`` advances every pattern's
        ``i``-th event simultaneously, so the Python-level work scales with
        the *longest* pattern instead of the batch's total event count.

        Patterns are independent (each gets fresh neuron state, exactly as
        serial ``run`` resets the neurons), so per-pattern results are
        bitwise-identical to ``run(pattern, learning=False)``, including the
        sequential lateral-inhibition scan within each event fan-out.  The
        network's persistent pre/post spike bookkeeping and synaptic weights
        are left untouched; plasticity is applied explicitly *between* fused
        runs via :meth:`apply_stdp_batch`.
        """
        patterns = list(patterns)
        for pattern in patterns:
            if len(pattern) > self.n_inputs:
                raise ValueError("more input trains than input channels")
        n_patterns = len(patterns)
        n_out = self.n_outputs
        counts = np.zeros((n_patterns, n_out), dtype=int)
        last_pre = np.full((n_patterns, self.n_inputs), np.nan)
        last_post = np.full((n_patterns, n_out), np.nan)
        if n_patterns == 0:
            return BatchedSNNResult(
                spike_counts=counts, last_pre=last_pre, last_post=last_post,
                total_input_spikes=0, total_output_spikes=0, energy_j=0.0,
            )

        events = [merge_spike_trains(list(pattern)) for pattern in patterns]
        total_input_spikes = sum(len(sequence) for sequence in events)
        max_events = max(len(sequence) for sequence in events)
        # Padded event tables: one fused step advances every pattern's i-th
        # event.  Padding times are +inf so masked lanes neither spike nor
        # emit overflow warnings in the leak factor.
        times = np.full((n_patterns, max_events), np.inf)
        channels = np.zeros((n_patterns, max_events), dtype=int)
        valid = np.zeros((n_patterns, max_events), dtype=bool)
        for index, sequence in enumerate(events):
            for order, (time, neuron_index) in enumerate(sequence):
                times[index, order] = time
                channels[index, order] = neuron_index
                valid[index, order] = True

        # one weight-matrix evaluation per fused batch (the serving invariant)
        amplitudes_all = input_amplitude * self.synapse_array.weights()
        delay = self.synapse_array.delay
        thresholds = np.array([neuron.threshold for neuron in self.neurons])
        leak_tau = np.array([neuron.leak_time_constant for neuron in self.neurons])
        refractory = np.array([neuron.refractory_period for neuron in self.neurons])
        spike_energy = self.neurons[0].spike_energy if self.neurons else 0.0

        membrane = np.zeros((n_patterns, n_out))
        last_update = np.zeros((n_patterns, n_out))
        last_spike = np.full((n_patterns, n_out), np.nan)

        for step in range(max_events):
            active = valid[:, step]
            if not np.any(active):
                break
            time = times[:, step]
            arrival = time + delay
            pre = channels[:, step]
            rows = np.flatnonzero(active)
            last_pre[rows, pre[rows]] = time[rows]
            amplitudes = amplitudes_all[pre, :]
            # The fan-out scan stays sequential over output neurons (it is
            # sequential in serial run: a neuron firing mid-scan inhibits
            # neurons processed later in the same event) but vectorises over
            # the batch dimension.
            for post in range(n_out):
                column = membrane[:, post]
                elapsed = arrival - last_update[:, post]
                leaking = active & (elapsed > 0)
                column = np.where(
                    leaking, column * np.exp(-elapsed / leak_tau[post]), column
                )
                last_update[:, post] = np.where(
                    leaking, arrival, last_update[:, post]
                )
                refractory_mask = (
                    active
                    & np.isfinite(last_spike[:, post])
                    & (arrival - last_spike[:, post] < refractory[post])
                )
                receiving = active & ~refractory_mask
                column = np.where(receiving, column + amplitudes[:, post], column)
                fired = receiving & (column >= thresholds[post])
                column = np.where(fired, 0.0, column)
                membrane[:, post] = column
                if np.any(fired):
                    counts[fired, post] += 1
                    last_spike[fired, post] = arrival[fired]
                    last_post[fired, post] = arrival[fired]
                    if self.inhibition > 0:
                        # decrement every *other* neuron of the fired
                        # patterns; (x - i) + i == x restores column post
                        # exactly, so one broadcast subtraction suffices
                        membrane[fired, :] -= self.inhibition
                        membrane[fired, post] += self.inhibition

        total_output_spikes = int(counts.sum())
        return BatchedSNNResult(
            spike_counts=counts,
            last_pre=last_pre,
            last_post=last_post,
            total_input_spikes=total_input_spikes,
            total_output_spikes=total_output_spikes,
            energy_j=total_output_spikes * spike_energy,
        )

    def apply_stdp_batch(self, batch: BatchedSNNResult) -> Tuple[int, float]:
        """Apply STDP updates recorded by a fused run, between micro-batches.

        The online-learning contract of the serving path: responses in a
        micro-batch are computed against the weights as of batch start (one
        fused :meth:`run_patterns` step), then plasticity is applied here —
        pattern by pattern in batch order, so a fixed request order yields a
        bitwise-reproducible weight trajectory.  Per pattern, every output
        neuron that fired contributes one column update (``delta_t`` =
        last post spike − last pre spike per channel, exactly the pairing
        serial :meth:`run` applies on an output spike), and all fired
        columns are applied as **one** vectorised pulse-quantised
        :meth:`~repro.snn.synapse.SynapseArray.adjust` per pattern.

        Returns ``(plasticity_events, programming_energy_j)``.
        """
        if self.stdp is None:
            raise ValueError("apply_stdp_batch requires an STDP rule")
        pulse_energy = self.synapse_array.programming_energy_per_pulse()
        plasticity_events = 0
        energy = 0.0
        for index in range(batch.n_patterns):
            fired = np.isfinite(batch.last_post[index])
            if not np.any(fired):
                continue
            seen = np.isfinite(batch.last_pre[index])
            pairs = seen[:, None] & fired[None, :]
            delta_t = np.where(
                pairs,
                batch.last_post[index][None, :] - batch.last_pre[index][:, None],
                0.0,
            )
            weights = self.synapse_array.weights()
            deltas = self.stdp.bounded_deltas(weights, delta_t, valid=pairs)
            self.synapse_array.adjust(deltas, current_weights=weights)
            n_updates = int(np.count_nonzero(fired)) * self.n_inputs
            plasticity_events += n_updates
            energy += n_updates * pulse_energy
        return plasticity_events, energy

    def train(
        self,
        patterns: Sequence[Sequence[SpikeTrain]],
        epochs: int = 5,
    ) -> List[np.ndarray]:
        """Run several epochs of unsupervised STDP over a pattern set.

        Returns the weight matrix after every epoch so learning progress
        can be inspected.
        """
        if self.stdp is None:
            raise ValueError("training requires an STDP rule")
        history = []
        for _ in range(max(1, epochs)):
            for pattern in patterns:
                self.run(pattern, learning=True)
            history.append(self.weight_matrix())
        return history

    def respond(self, pattern: Sequence[SpikeTrain]) -> np.ndarray:
        """Inference-mode response: output spike counts without learning."""
        result = self.run(pattern, learning=False)
        return result.spike_counts()
