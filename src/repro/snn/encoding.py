"""Spike encodings: converting analog values to optical spike trains.

Photonic SNN inputs arrive as optical pulse trains.  Two standard encodings
are provided:

* rate coding — the value sets the number of (regularly spaced) spikes in
  an encoding window;
* latency (time-to-first-spike) coding — larger values spike earlier, which
  suits the sub-nanosecond dynamics of the excitable lasers and requires a
  single pulse per input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class SpikeTrain:
    """Spikes of one input channel.

    Attributes:
        neuron: input channel index.
        times: sorted spike times [s].
    """

    neuron: int
    times: np.ndarray

    def __post_init__(self):
        object.__setattr__(self, "times", np.sort(np.asarray(self.times, dtype=float)))


def rate_encode(
    values: np.ndarray,
    window: float = 10e-9,
    max_spikes: int = 10,
) -> List[SpikeTrain]:
    """Rate-encode values in [0, 1] into regularly spaced spike trains."""
    values = np.asarray(values, dtype=float)
    if np.any(values < 0) or np.any(values > 1):
        raise ValueError("values must be normalised into [0, 1]")
    if window <= 0 or max_spikes < 1:
        raise ValueError("window must be positive and max_spikes >= 1")
    trains = []
    for neuron, value in enumerate(values):
        n_spikes = int(round(value * max_spikes))
        if n_spikes == 0:
            times = np.empty(0)
        else:
            times = np.linspace(window / (n_spikes + 1), window, n_spikes, endpoint=False)
        trains.append(SpikeTrain(neuron=neuron, times=times))
    return trains


def latency_encode(
    values: np.ndarray,
    window: float = 10e-9,
    threshold: float = 0.05,
) -> List[SpikeTrain]:
    """Latency-encode values in [0, 1]: larger values spike earlier.

    Values below ``threshold`` emit no spike.  The mapping is linear:
    ``t = (1 - value) * window``.
    """
    values = np.asarray(values, dtype=float)
    if np.any(values < 0) or np.any(values > 1):
        raise ValueError("values must be normalised into [0, 1]")
    trains = []
    for neuron, value in enumerate(values):
        if value < threshold:
            times = np.empty(0)
        else:
            times = np.array([(1.0 - value) * window])
        trains.append(SpikeTrain(neuron=neuron, times=times))
    return trains


def merge_spike_trains(trains: List[SpikeTrain]) -> List[Tuple[float, int]]:
    """Merge per-channel spike trains into one time-sorted event list."""
    events = []
    for train in trains:
        events.extend((float(time), train.neuron) for time in train.times)
    events.sort(key=lambda item: item[0])
    return events


def spike_count_decode(spike_times_per_neuron: List[np.ndarray]) -> np.ndarray:
    """Decode output spike counts into a class-score vector."""
    return np.array([len(times) for times in spike_times_per_neuron], dtype=float)
