"""Model compiler: graph IR, calibrated cost model, cost-based placement.

The compiler is the layer that turns device- and system-level simulation
into an *architecture*: it captures whole multi-layer models as a
content-hashable graph IR, predicts where their GeMMs run cheapest from
calibrated cost models, shards each layer across the PE cluster (rows or
K-dimension with partial-product accumulation), and lowers the result to
executable plans — per-layer :meth:`~repro.system.soc.PhotonicSoC.run_tiled_gemm`
offloads or replica-pinned serving requests — cached by
``(graph hash, hardware fingerprint)``.
"""

from repro.compiler.costmodel import (
    DEFAULT_PROBE_SHAPES,
    PlanPrediction,
    ReplicaProfile,
    SoCCostModel,
    StreamPrediction,
    profile_engine,
    profile_replicas,
    replica_cost_fn,
)
from repro.compiler.execute import (
    DEFAULT_PLAN_CACHE,
    PlanCache,
    PoolLayerStep,
    PoolPlan,
    SoCLayerStep,
    SoCPlan,
    compile_for_pool,
    compile_for_soc,
    cost_model_fingerprint,
    pool_fingerprint,
    profiles_fingerprint,
    soc_fingerprint,
)
from repro.compiler.graph import GraphError, ModelGraph
from repro.compiler.ops import SUPPORTED_ACTIVATIONS, DenseOp
from repro.compiler.partition import (
    PLACEMENT_STRATEGIES,
    Placement,
    ShardingDecision,
    choose_sharding,
    place_graph,
)

__all__ = [
    "DEFAULT_PLAN_CACHE",
    "DEFAULT_PROBE_SHAPES",
    "DenseOp",
    "GraphError",
    "ModelGraph",
    "PLACEMENT_STRATEGIES",
    "PlanCache",
    "PlanPrediction",
    "Placement",
    "PoolLayerStep",
    "PoolPlan",
    "ReplicaProfile",
    "SUPPORTED_ACTIVATIONS",
    "ShardingDecision",
    "SoCCostModel",
    "SoCLayerStep",
    "SoCPlan",
    "StreamPrediction",
    "choose_sharding",
    "compile_for_pool",
    "compile_for_soc",
    "cost_model_fingerprint",
    "place_graph",
    "pool_fingerprint",
    "profiles_fingerprint",
    "profile_engine",
    "profile_replicas",
    "replica_cost_fn",
    "soc_fingerprint",
]
