"""Model compiler: graph IR, calibrated cost model, cost-based placement.

The compiler is the layer that turns device- and system-level simulation
into an *architecture*: it captures whole models — chains **and**
branching DAGs (residual adds, splits, concats) — as a content-hashable
graph IR, predicts where their GeMMs run cheapest from calibrated cost
models, shards each layer across the PE cluster (rows or K-dimension
with partial-product accumulation, batch-aware through the expected
micro-batch width), and lowers the graph's deterministic topological
schedule to executable plans with buffer liveness tracking — per-op
:meth:`~repro.system.soc.PhotonicSoC.run_tiled_gemm` offloads or
replica-pinned serving requests dispatched level-parallel — cached by
``(graph hash, hardware fingerprint)``.
"""

from repro.compiler.adaptive import (
    AdaptiveReplanner,
    ManagedPlan,
    RefitEvent,
    ReplanEvent,
)
from repro.compiler.costmodel import (
    DEFAULT_PROBE_SHAPES,
    CalibrationSample,
    FanoutPrediction,
    PlanPrediction,
    ReplicaProfile,
    SoCCostModel,
    StreamPrediction,
    profile_engine,
    profile_replicas,
    replica_cost_fn,
)
from repro.compiler.execute import (
    DEFAULT_PLAN_CACHE,
    FUSION_MODES,
    POOL_CONCURRENCY,
    SOC_ACTIVATIONS,
    PlanCache,
    PoolLayerStep,
    PoolPlan,
    SoCLayerStep,
    SoCPlan,
    compile_for_pool,
    compile_for_soc,
    cost_model_fingerprint,
    pool_fingerprint,
    profiles_fingerprint,
    soc_fingerprint,
)
from repro.compiler.graph import (
    INPUT_BUFFER,
    GraphError,
    ModelGraph,
    ScheduleStep,
)
from repro.compiler.ops import (
    SUPPORTED_ACTIVATIONS,
    AddOp,
    ConcatOp,
    DenseOp,
    GraphOp,
    SplitOp,
)
from repro.compiler.partition import (
    PLACEMENT_STRATEGIES,
    FusionDecision,
    Placement,
    ShardingDecision,
    choose_fusion,
    choose_sharding,
    expected_batch_width,
    place_graph,
    sharding_signature,
)

__all__ = [
    "AdaptiveReplanner",
    "AddOp",
    "CalibrationSample",
    "ConcatOp",
    "DEFAULT_PLAN_CACHE",
    "DEFAULT_PROBE_SHAPES",
    "DenseOp",
    "FUSION_MODES",
    "FanoutPrediction",
    "FusionDecision",
    "GraphError",
    "GraphOp",
    "INPUT_BUFFER",
    "ManagedPlan",
    "ModelGraph",
    "PLACEMENT_STRATEGIES",
    "POOL_CONCURRENCY",
    "PlanCache",
    "PlanPrediction",
    "Placement",
    "PoolLayerStep",
    "PoolPlan",
    "RefitEvent",
    "ReplanEvent",
    "ReplicaProfile",
    "SOC_ACTIVATIONS",
    "SUPPORTED_ACTIVATIONS",
    "ScheduleStep",
    "ShardingDecision",
    "SoCCostModel",
    "SoCLayerStep",
    "SoCPlan",
    "SplitOp",
    "StreamPrediction",
    "choose_fusion",
    "choose_sharding",
    "compile_for_pool",
    "compile_for_soc",
    "cost_model_fingerprint",
    "expected_batch_width",
    "place_graph",
    "pool_fingerprint",
    "profiles_fingerprint",
    "profile_engine",
    "profile_replicas",
    "replica_cost_fn",
    "sharding_signature",
    "soc_fingerprint",
]
