"""Plan compilation and execution: lowering graphs onto SoC and replicas.

``compile_for_soc`` lowers a :class:`~repro.compiler.graph.ModelGraph` —
a chain *or* a branching DAG — into an :class:`SoCPlan`: the graph's
deterministic topological schedule with one sharded
:meth:`~repro.system.soc.PhotonicSoC.run_tiled_gemm` offload per dense op
(the rows-vs-K decision made per op, at the expected batch width, by the
partitioner) and host-side integer glue for the split/concat/add ops.
``compile_for_pool`` lowers the same schedule onto a live replica pool as
a :class:`PoolPlan` whose dense ops are pinned to the replicas a
calibrated :class:`~repro.compiler.partition.Placement` chose; steps are
grouped into dependency levels so independent branches dispatch
**concurrently** across their replicas.

Both executors walk the schedule with **buffer liveness tracking**: each
step's producers are read from a resident buffer table and every buffer
is freed at its last consumer (dead branches never compile at all — the
schedule prunes ops the designated output does not need).

Compiled plans are cached in an LRU :class:`PlanCache` keyed by
``(graph_hash, hardware fingerprint)``: re-compiling the same model for
the same hardware is a dictionary hit, while any change to layer bytes,
activation wiring, PE cluster or replica pool produces a fresh plan.

Executing a plan is **numerically identical** to direct per-op execution
on the same backend: the plan only decides *where* each matmul runs and
how it is sharded; the matmul itself goes through the exact same datapath
(``run_tiled_gemm`` accumulates integer partials exactly; pool layers
execute the same ``backend.matmul`` the direct path would call), and the
glue ops are exact in both domains.
"""

from __future__ import annotations

import asyncio
import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.compiler.costmodel import ReplicaProfile, SoCCostModel, profile_replicas
from repro.compiler.graph import INPUT_BUFFER, GraphError, ModelGraph
from repro.compiler.partition import (
    Placement,
    choose_fusion,
    choose_sharding,
    expected_batch_width,
    place_graph,
)
from repro.core.nn import ACTIVATIONS
from repro.serving.errors import ServingError

#: Activations an integer SoC offload can apply in its digital epilogue.
SOC_ACTIVATIONS = ("identity", "relu")

#: Branch-fusion modes of ``compile_for_soc``: ``"auto"`` fuses same-input
#: dense fan-outs when :func:`~repro.compiler.partition.choose_fusion` says
#: it pays, ``"always"`` fuses every eligible group, ``"never"`` keeps one
#: offload per dense op (the pre-fusion lowering).
FUSION_MODES = ("auto", "always", "never")

#: Pool-plan execution modes: ``"levels"`` dispatches each dependency
#: level's dense ops concurrently (branch parallelism across replicas);
#: ``"sequential"`` awaits one op at a time (the chain-era baseline).
POOL_CONCURRENCY = ("levels", "sequential")

#: Tiny weight matrix used to probe whether an engine accepts explicit
#: weights (bound-model engines raise ServingError from ``model_key``).
_WEIGHTS_PROBE = np.zeros((1, 1))


class PlanCache:
    """LRU cache of compiled plans keyed by (graph hash, hardware print)."""

    def __init__(self, max_plans: int = 32):
        if max_plans < 1:
            raise ValueError("max_plans must be >= 1")
        self.max_plans = int(max_plans)
        self.hits = 0
        self.misses = 0
        self._plans: "OrderedDict[Tuple[str, str], object]" = OrderedDict()

    def get(self, key: Tuple[str, str]):
        """Return the cached plan for ``key`` (refreshing LRU) or ``None``."""
        plan = self._plans.get(key)
        if plan is not None:
            self._plans.move_to_end(key)
            self.hits += 1
        return plan

    def put(self, key: Tuple[str, str], plan) -> None:
        """Insert a freshly compiled plan, evicting the least recently used."""
        self.misses += 1
        self._plans[key] = plan
        while len(self._plans) > self.max_plans:
            self._plans.popitem(last=False)

    def __len__(self) -> int:
        """Number of resident plans."""
        return len(self._plans)

    def clear(self) -> None:
        """Drop every cached plan (counters are kept)."""
        self._plans.clear()

    def invalidate(
        self, graph_hash: Optional[str] = None, fingerprint: Optional[str] = None
    ) -> int:
        """Drop plans matching a graph hash and/or hardware fingerprint.

        Stale plans keyed on a retired fingerprint can never hit again
        after a cost-model refit bumps the hardware fingerprint — but they
        would still occupy LRU slots and evict live plans.  The adaptive
        replanner calls this with each managed plan's ``graph_hash`` when
        it refits, so the cache only holds reachable entries.

        Args:
            graph_hash: drop entries for this graph (any fingerprint).
            fingerprint: drop entries with this fingerprint (any graph).
                When both are given, entries must match both.

        Returns:
            The number of plans dropped (0 when both filters are ``None``).
        """
        if graph_hash is None and fingerprint is None:
            return 0
        doomed = [
            key
            for key in self._plans
            if (graph_hash is None or key[0] == graph_hash)
            and (fingerprint is None or key[1] == fingerprint)
        ]
        for key in doomed:
            del self._plans[key]
        return len(doomed)


#: Default process-wide plan cache used when callers do not pass their own.
DEFAULT_PLAN_CACHE = PlanCache(max_plans=32)


def cost_model_fingerprint(cost_model: Optional[SoCCostModel]) -> str:
    """Fingerprint of a cost model's fitted coefficients (or ``"none"``).

    Plans compiled with different calibrations (or with/without one) make
    different sharding decisions, so the cost model is part of the plan
    cache key — recalibrating must never return a stale cached plan.
    """
    if cost_model is None:
        return "none"
    digest = hashlib.sha1()
    digest.update(np.asarray(cost_model.dma_coeffs, dtype=float).tobytes())
    digest.update(np.asarray(cost_model.host_coeffs, dtype=float).tobytes())
    for device in sorted(cost_model.compute_coeffs):
        digest.update(device.encode())
        digest.update(
            np.asarray(cost_model.compute_coeffs[device], dtype=float).tobytes()
        )
    return digest.hexdigest()


def profiles_fingerprint(profiles: Dict[str, ReplicaProfile]) -> str:
    """Fingerprint of the measured replica profiles feeding a placement."""
    digest = hashlib.sha1()
    for name in sorted(profiles):
        profile = profiles[name]
        digest.update(name.encode())
        digest.update(f"{profile.service_s}|{profile.macs}|".encode())
    return digest.hexdigest()


def soc_fingerprint(
    soc,
    k_shards: Optional[int] = None,
    tile_rows: Optional[int] = None,
    cost_model: Optional[SoCCostModel] = None,
    n_columns: int = 1,
    fuse: str = "auto",
) -> str:
    """Hardware fingerprint of an SoC configuration for plan caching.

    Args:
        soc: the :class:`~repro.system.soc.PhotonicSoC` target.
        k_shards / tile_rows: sharding overrides baked into the plan.
        cost_model: calibration the sharding decisions were made with.
        n_columns: batch width the decisions were optimised for.
        fuse: branch-fusion mode the plan was compiled with
            (:data:`FUSION_MODES`).

    Returns:
        A hex digest covering clock, accelerator roster (device types,
        backends, scratchpad sizes), sharding overrides, batch width,
        fusion mode and the cost-model coefficients.
    """
    digest = hashlib.sha1()
    digest.update(b"soc|")
    digest.update(str(soc.clock_hz).encode())
    for accelerator in soc.accelerators:
        digest.update(accelerator.device_type.encode())
        digest.update(accelerator.backend.name.encode())
        digest.update(str(accelerator.input_spm.size_bytes).encode())
        digest.update(b",")
    digest.update(f"k={k_shards}|t={tile_rows}|n={n_columns}|f={fuse}|".encode())
    digest.update(cost_model_fingerprint(cost_model).encode())
    return digest.hexdigest()


def pool_fingerprint(
    replicas,
    strategy: str = "min-cost",
    profiles: Optional[Dict[str, ReplicaProfile]] = None,
) -> str:
    """Hardware fingerprint of a replica pool for plan caching.

    Args:
        replicas: the :class:`~repro.serving.scheduler.Replica` pool.
        strategy: the placement strategy the plan was compiled with.
        profiles: the measured profiles feeding the placement (optional).

    Returns:
        A hex digest covering replica names, engine types, backend names,
        the strategy and the profile measurements.
    """
    digest = hashlib.sha1()
    digest.update(b"pool|")
    for replica in replicas:
        digest.update(replica.name.encode())
        digest.update(type(replica.engine).__name__.encode())
        backend = getattr(replica.engine, "backend", None)
        digest.update(getattr(backend, "name", "none").encode())
        digest.update(b",")
    digest.update(strategy.encode())
    if profiles is not None:
        digest.update(b"|")
        digest.update(profiles_fingerprint(profiles).encode())
    return digest.hexdigest()


@dataclass
class SoCLayerStep:
    """One compiled step of an SoC plan (a dense offload or host glue).

    Attributes:
        op_name: the graph node this step executes (a synthetic
            ``fused(...)`` label for branch-fused steps).
        kind: op kind (``"dense"`` offloads one op; ``"fused-dense"``
            offloads a whole same-input fan-out as one stacked GeMM;
            anything else is host glue).
        inputs: producer buffer names in edge order (empty = graph input).
        release: buffers freed after this step (their last consumer).
        weights / bias: integer operands of a dense offload (``None`` for
            glue steps; fused steps carry the stacked weights and keep
            per-branch biases in ``branches``).
        activation: integer epilogue (``identity`` / ``relu``; fused steps
            apply per-branch epilogues from ``branches`` instead).
        sharding: ``"rows"`` | ``"k"`` for dense steps, ``"host"`` for glue.
        k_shards: K-slice count of a K-sharded dense step (else 1).
        op: the glue :class:`~repro.compiler.ops.GraphOp` executed
            host-side (``None`` for dense steps).
        predicted_cycles: cost-model estimate for the step (0 for glue
            under a model, ``None`` without one).
        branches: fused-dense only — per-branch ``(name, n_rows, bias,
            activation)`` tuples in stacking order; the host splits the
            offload's output rows back into these buffers.
        predicted_fused_cycles / predicted_serial_cycles: the cost-model
            comparison behind a fused step's fusion decision (``None``
            without a model).
    """

    op_name: str
    weights: Optional[np.ndarray]
    bias: Optional[np.ndarray]
    activation: str
    sharding: str  # "rows" | "k" | "host"
    k_shards: int
    kind: str = "dense"
    inputs: Tuple[str, ...] = ()
    release: Tuple[str, ...] = ()
    op: Optional[object] = None
    predicted_cycles: Optional[float] = None
    branches: Tuple[Tuple[str, int, Optional[np.ndarray], str], ...] = ()
    predicted_fused_cycles: Optional[float] = None
    predicted_serial_cycles: Optional[float] = None


@dataclass
class SoCPlan:
    """An executable placement plan lowered onto one SoC cluster.

    Attributes:
        graph_hash / fingerprint: the cache key this plan was compiled for.
        steps: topological schedule steps (dense offloads + host glue).
        output: name of the step whose buffer is the plan result.
        n_columns: batch width the sharding decisions were optimised for.
        reports: the per-offload :class:`~repro.system.soc.WorkloadReport`
            list of the most recent :meth:`run` (dense steps only).
    """

    soc: object
    graph_hash: str
    fingerprint: str
    steps: List[SoCLayerStep]
    output: str
    tile_rows: Optional[int] = None
    n_columns: int = 1
    predicted_cycles: Optional[float] = None
    reports: List[object] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        """Simulated offload cycles of the most recent :meth:`run`."""
        return sum(report.cycles for report in self.reports)

    def run(self, columns: np.ndarray) -> np.ndarray:
        """Execute the schedule on integer input columns ``(n_in, batch)``.

        Dense steps offload through ``run_tiled_gemm`` with their compiled
        sharding; fused-dense steps offload a whole same-input fan-out as
        one stacked GeMM, then split the output rows back into per-branch
        buffers (bias/activation applied per branch) host-side; glue steps
        execute host-side in exact ``int64`` arithmetic.  Intermediate
        buffers are freed at their last consumer, so peak residency
        follows the DAG's live frontier instead of its total op count.

        Args:
            columns: ``(n_in,)`` vector or ``(n_in, batch)`` integer block
                (rounded to ``int64``).

        Returns:
            The designated output's ``(n_out, batch)`` integer block.
        """
        block = np.asarray(np.round(np.asarray(columns, dtype=float)), dtype=np.int64)
        if block.ndim == 1:
            block = block[:, None]
        self.reports = []
        buffers: Dict[str, np.ndarray] = {INPUT_BUFFER: block}
        for step in self.steps:
            sources = [buffers[name] for name in step.inputs or (INPUT_BUFFER,)]
            if step.kind == "fused-dense":
                report = self.soc.run_tiled_gemm(
                    step.weights,
                    sources[0],
                    tile_rows=self.tile_rows,
                    k_shards=step.k_shards if step.sharding == "k" else None,
                )
                self.reports.append(report)
                stacked = report.result
                row = 0
                for name, n_rows, bias, activation in step.branches:
                    out = stacked[row : row + n_rows]
                    row += n_rows
                    if bias is not None:
                        out = out + bias[:, None]
                    if activation == "relu":
                        out = np.maximum(out, 0)
                    buffers[name] = out
                for name in step.release:
                    del buffers[name]
                continue
            if step.kind == "dense":
                report = self.soc.run_tiled_gemm(
                    step.weights,
                    sources[0],
                    tile_rows=self.tile_rows,
                    k_shards=step.k_shards if step.sharding == "k" else None,
                )
                self.reports.append(report)
                out = report.result
                if step.bias is not None:
                    out = out + step.bias[:, None]
            else:
                out = step.op.core(sources)
            if step.activation == "relu":
                out = np.maximum(out, 0)
            buffers[step.op_name] = out
            for name in step.release:
                del buffers[name]
        return buffers[self.output]


def _fanout_groups(schedule) -> List[dict]:
    """Detect same-source dense fan-outs eligible for vertical fusion.

    Two shapes qualify:

    * **plain fan-out** — two or more dense ops reading the *same* buffer
      (diamond / fan-out graphs): their weight matrices stack vertically
      as-is.
    * **split heads** — dense ops each reading its own identity
      :class:`~repro.compiler.ops.SplitOp` view of one shared source
      (multi-head graphs): each head's weights embed block-diagonally
      into the full source width, zero columns outside its slice.  The
      embedding is exact in integer arithmetic — the padded positions
      contribute zero to every dot product — but the zeros are real
      streamed work, which is why padded groups are flagged for the
      fusion cost decision.

    Returns a list of group dicts with the members (schedule items, in
    schedule order), the shared ``source`` buffer the fused step reads,
    per-member column ``slices`` (``None`` for plain stacking), the
    ``fused_inner`` reduction width and the ``padded`` flag.
    """
    by_name = {item.op.name: item for item in schedule}
    grouped: "OrderedDict[Tuple[str, str], List]" = OrderedDict()
    spans: Dict[str, Optional[Tuple[int, int]]] = {}
    for item in schedule:
        op = item.op
        if op.kind != "dense":
            continue
        deps = item.inputs or (INPUT_BUFFER,)
        if len(deps) != 1:
            continue
        dep = deps[0]
        producer = by_name.get(dep)
        if (
            producer is not None
            and producer.op.kind == "split"
            and producer.op.activation == "identity"
            and op.n_inputs == producer.op.stop - producer.op.start
        ):
            source = producer.inputs[0] if producer.inputs else INPUT_BUFFER
            grouped.setdefault(("split", source), []).append(item)
            spans[op.name] = (producer.op.start, producer.op.stop)
        else:
            grouped.setdefault(("direct", dep), []).append(item)
            spans[op.name] = None
    groups: List[dict] = []
    for (mode, source), members in grouped.items():
        if len(members) < 2:
            continue
        if mode == "split":
            widths = {
                by_name[member.inputs[0]].op.n_features for member in members
            }
            if len(widths) != 1:
                continue
            fused_inner = widths.pop()
            slices = [spans[member.op.name] for member in members]
            padded = any(span != (0, fused_inner) for span in slices)
        else:
            widths = {member.op.n_inputs for member in members}
            if len(widths) != 1:
                continue
            fused_inner = widths.pop()
            slices = [None] * len(members)
            padded = False
        groups.append(
            {
                "source": source,
                "members": members,
                "slices": slices,
                "fused_inner": fused_inner,
                "padded": padded,
            }
        )
    return groups


def compile_for_soc(
    graph: ModelGraph,
    soc,
    cost_model: Optional[SoCCostModel] = None,
    tile_rows: Optional[int] = None,
    n_columns: Union[int, object] = 1,
    fuse: str = "auto",
    cache: Optional[PlanCache] = DEFAULT_PLAN_CACHE,
) -> SoCPlan:
    """Compile a model graph into a sharded SoC offload schedule.

    Accepts chains and branching DAGs alike: the graph's deterministic
    topological schedule (dead branches pruned) becomes the plan, each
    dense op gets its own rows-vs-K sharding decision from
    :func:`~repro.compiler.partition.choose_sharding` (cost-model-driven
    when one is supplied) and split/concat/add glue lowers to host-side
    integer steps.  ``n_columns`` is the batch width the decisions are
    optimised for — pass the expected serving batch (an ``int``, or a
    live :class:`~repro.serving.batching.MicroBatcher` / replica, resolved
    through :func:`~repro.compiler.partition.expected_batch_width`) so the
    rows-vs-K comparison matches the workload the plan will actually run.
    The SoC works on integers, so weights/biases are rounded at compile
    time and only integer-preserving activations
    (:data:`SOC_ACTIVATIONS`) are accepted.

    Independent dense ops reading the same buffer — plain fan-outs, or
    multi-head groups reading identity splits of one source — can fuse
    into a **single vertically-stacked offload** whose output rows the
    host splits back into per-branch buffers (exact integer arithmetic
    either way).  ``fuse`` picks the policy (:data:`FUSION_MODES`):
    ``"auto"`` asks :func:`~repro.compiler.partition.choose_fusion` —
    cost-model-driven when one is supplied — ``"always"`` fuses every
    eligible group, ``"never"`` disables fusion.

    Args:
        graph: the model to lower.
        soc: a :class:`~repro.system.soc.PhotonicSoC` with accelerators.
        cost_model: calibrated predictor driving the sharding decisions.
        tile_rows: row-tiling override for every offload.
        n_columns: expected batch width (or a serving object carrying it).
        fuse: branch-fusion mode (:data:`FUSION_MODES`).
        cache: plan cache (``None`` disables caching).

    Returns:
        The executable :class:`SoCPlan`.

    Raises:
        ValueError: when the SoC has no accelerators, the batch width is
            invalid or the fusion mode is unknown.
        GraphError: for graphs whose activations cannot lower to the
            integer datapath, or unresolved multi-sink outputs.
    """
    if not getattr(soc, "accelerators", None):
        raise ValueError("SoC plan needs a PhotonicSoC with accelerators attached")
    if fuse not in FUSION_MODES:
        raise ValueError(
            f"unknown fusion mode {fuse!r} (choose from {FUSION_MODES})"
        )
    n_columns = expected_batch_width(n_columns)
    schedule = graph.schedule()  # validates output/cycles before cache lookup
    key = (
        graph.graph_hash(),
        soc_fingerprint(
            soc, tile_rows=tile_rows, cost_model=cost_model,
            n_columns=n_columns, fuse=fuse,
        ),
    )
    if cache is not None:
        cached = cache.get(key)
        if cached is not None and cached.soc is soc:
            return cached
    n_pes = len(soc.accelerators)
    output_name = graph.output_name()

    def round_int(values) -> np.ndarray:
        return np.asarray(np.round(np.asarray(values, dtype=float)), dtype=np.int64)

    # ------------------------------------------------------------------ #
    # branch fusion: same-input dense fan-outs collapse into one stacked
    # offload each; the fused step replaces the group's first member and
    # split ops whose every consumer fused away are pruned
    # ------------------------------------------------------------------ #
    fused_steps: Dict[str, SoCLayerStep] = {}
    skip_names: set = set()
    if fuse != "never":
        consumers: Dict[str, set] = {}
        for item in schedule:
            for dep in item.inputs or (INPUT_BUFFER,):
                consumers.setdefault(dep, set()).add(item.op.name)
        fused_groups = []
        fused_member_names: set = set()
        for group in _fanout_groups(schedule):
            shapes = [
                (member.op.n_outputs, member.op.n_inputs)
                for member in group["members"]
            ]
            decision = choose_fusion(
                shapes, group["fused_inner"], n_columns, n_pes,
                cost_model=cost_model, tile_rows=tile_rows,
                padded=group["padded"],
            )
            if not (decision.fuse or fuse == "always"):
                continue
            fused_groups.append((group, decision))
            fused_member_names.update(
                member.op.name for member in group["members"]
            )
        for group, decision in fused_groups:
            members = group["members"]
            total_rows = sum(member.op.n_outputs for member in members)
            weights = np.zeros((total_rows, group["fused_inner"]), dtype=np.int64)
            branches = []
            row = 0
            for member, span in zip(members, group["slices"]):
                op = member.op
                start, stop = span if span is not None else (0, group["fused_inner"])
                weights[row : row + op.n_outputs, start:stop] = round_int(op.weights)
                bias = round_int(op.bias) if op.bias is not None else None
                branches.append((op.name, op.n_outputs, bias, op.activation))
                row += op.n_outputs
            shard = choose_sharding(
                total_rows, group["fused_inner"], n_columns, n_pes,
                cost_model=cost_model, tile_rows=tile_rows,
            )
            fused_steps[members[0].op.name] = SoCLayerStep(
                op_name="fused(" + "+".join(branch[0] for branch in branches) + ")",
                weights=weights,
                bias=None,
                activation="identity",
                sharding=shard.strategy,
                k_shards=shard.k_shards,
                kind="fused-dense",
                inputs=() if group["source"] == INPUT_BUFFER else (group["source"],),
                branches=tuple(branches),
                predicted_cycles=shard.predicted_cycles,
                predicted_fused_cycles=decision.predicted_fused_cycles,
                predicted_serial_cycles=decision.predicted_serial_cycles,
            )
            skip_names.update(member.op.name for member in members[1:])
            for member in members:
                dep = (member.inputs or (INPUT_BUFFER,))[0]
                if dep == group["source"]:
                    continue  # plain fan-out: the dep IS the fused input
                if dep != output_name and consumers[dep] <= fused_member_names:
                    skip_names.add(dep)

    steps: List[SoCLayerStep] = []
    predicted_total: Optional[float] = 0.0 if cost_model is not None else None
    for item in schedule:
        op = item.op
        if op.activation not in SOC_ACTIVATIONS:
            raise GraphError(
                f"op {op.name!r}: activation {op.activation!r} cannot be "
                f"lowered to the integer SoC datapath "
                f"(supported: {SOC_ACTIVATIONS})"
            )
        decision_cycles: Optional[float]
        if op.name in fused_steps:
            step = fused_steps[op.name]
            steps.append(step)
            decision_cycles = step.predicted_cycles
        elif op.name in skip_names:
            continue
        elif op.kind != "dense":
            steps.append(
                SoCLayerStep(
                    op_name=op.name,
                    weights=None,
                    bias=None,
                    activation=op.activation,
                    sharding="host",
                    k_shards=1,
                    kind=op.kind,
                    inputs=item.inputs,
                    release=item.release,
                    op=op,
                    predicted_cycles=0.0 if cost_model is not None else None,
                )
            )
            continue
        else:
            bias = round_int(op.bias) if op.bias is not None else None
            decision = choose_sharding(
                op.n_outputs, op.n_inputs, n_columns, n_pes,
                cost_model=cost_model, tile_rows=tile_rows,
            )
            steps.append(
                SoCLayerStep(
                    op_name=op.name,
                    weights=round_int(op.weights),
                    bias=bias,
                    activation=op.activation,
                    sharding=decision.strategy,
                    k_shards=decision.k_shards,
                    kind="dense",
                    inputs=item.inputs,
                    release=item.release,
                    predicted_cycles=decision.predicted_cycles,
                )
            )
            decision_cycles = decision.predicted_cycles
        if predicted_total is not None:
            if decision_cycles is None:
                # a single missing per-layer prediction must yield "no
                # total", not a silently understated one
                predicted_total = None
            else:
                predicted_total += decision_cycles
    if fused_steps:
        # fusion moved producers and pruned steps, so every release set is
        # recomputed from scratch over the final step list (same last-use
        # rule the schedule itself applies)
        last_use: Dict[str, int] = {}
        for index, step in enumerate(steps):
            for dep in step.inputs or (INPUT_BUFFER,):
                last_use[dep] = index
        for index, step in enumerate(steps):
            deps = step.inputs or (INPUT_BUFFER,)
            step.release = tuple(sorted(
                {
                    dep for dep in deps
                    if last_use[dep] == index and dep != output_name
                }
            ))
    plan = SoCPlan(
        soc=soc,
        graph_hash=key[0],
        fingerprint=key[1],
        steps=steps,
        output=graph.output_name(),
        tile_rows=tile_rows,
        n_columns=n_columns,
        predicted_cycles=predicted_total,
    )
    if cache is not None:
        cache.put(key, plan)
    return plan


@dataclass
class PoolLayerStep:
    """One compiled step of a pool plan.

    Attributes:
        op_name: the graph node this step executes.
        kind: op kind (``"dense"`` submits to a replica; else host glue).
        inputs: producer buffer names in edge order (empty = graph input).
        release: buffers freed after this step's level completes.
        level: dependency depth — steps sharing a level have no data
            dependencies and may dispatch concurrently.
        weights / bias / activation: dense operands and epilogue.
        replica: pinned replica name (empty for glue steps).
        op: the :class:`~repro.compiler.ops.GraphOp` (executes glue
            semantics host-side; dense steps keep it for introspection).
        predicted_s: placement's service-time estimate for the step.
    """

    op_name: str
    weights: Optional[np.ndarray]
    bias: Optional[np.ndarray]
    activation: str
    replica: str
    kind: str = "dense"
    inputs: Tuple[str, ...] = ()
    release: Tuple[str, ...] = ()
    level: int = 0
    op: Optional[object] = None
    predicted_s: Optional[float] = None


@dataclass
class PoolPlan:
    """An executable placement plan over a live replica pool.

    Dense matmuls are submitted to the server **pinned** to the replica
    the placement chose, one dependency level at a time: steps within a
    level are independent, so their requests dispatch concurrently and
    independent DAG branches overlap their replicas' batching windows and
    queue waits.  Bias/activation epilogues and glue ops run host-side in
    the same float arithmetic the direct path uses, so the plan's output
    is bitwise identical to running each op directly on the backend of
    its assigned replica (for deterministic backends).

    Attributes:
        graph_hash / fingerprint: the cache key this plan was compiled for.
        steps: topological schedule steps, annotated with levels.
        output: name of the step whose buffer is the plan result.
        placement: the op-to-replica assignment backing the plan.
    """

    graph_hash: str
    fingerprint: str
    steps: List[PoolLayerStep]
    output: str
    placement: Placement
    predicted_s: Optional[float] = None

    @property
    def n_levels(self) -> int:
        """Number of dependency levels (the plan's critical-path length)."""
        return 1 + max((step.level for step in self.steps), default=-1)

    async def run(
        self, server, column: np.ndarray, concurrency: str = "levels"
    ) -> np.ndarray:
        """Execute the plan for one input column through a running server.

        Args:
            server: a started :class:`~repro.serving.server.InferenceServer`
                over the pool the plan was compiled for.
            column: the ``(n_in,)`` input vector (or ``(n_in, 1)`` block).
            concurrency: one of :data:`POOL_CONCURRENCY` —
                ``"levels"`` gathers each dependency level's dense
                requests concurrently (branch parallelism);
                ``"sequential"`` awaits one op at a time.

        Returns:
            The output column, shaped like the input (vector in, vector
            out; one-column block in, one-column block out).

        Raises:
            ValueError: for multi-column inputs or unknown concurrency
                modes.
        """
        if concurrency not in POOL_CONCURRENCY:
            raise ValueError(
                f"unknown concurrency {concurrency!r} "
                f"(choose from {POOL_CONCURRENCY})"
            )
        out = np.asarray(column, dtype=float)
        was_matrix = out.ndim == 2
        if was_matrix:
            if out.shape[1] != 1:
                raise ValueError("pool plans execute one input column per run")
            out = out[:, 0]
        elif out.ndim != 1:
            raise ValueError("pool plans execute one input column per run")
        buffers: Dict[str, np.ndarray] = {INPUT_BUFFER: out[:, None]}

        async def run_dense(step: PoolLayerStep, block: np.ndarray) -> np.ndarray:
            pre = await server.submit(
                block[:, 0], weights=step.weights, replica=step.replica
            )
            # the step's own compiled epilogue (same float arithmetic as
            # DenseOp.finish) — steps are self-contained, the stored op is
            # only needed for glue semantics
            pre = np.asarray(pre, dtype=float)[:, None]
            if step.bias is not None:
                pre = pre + step.bias[:, None]
            if step.activation == "identity":
                return pre
            return ACTIVATIONS[step.activation](pre.T).T

        for level_steps in self._levels():
            if concurrency == "levels":
                dense = [
                    step for step in level_steps if step.kind == "dense"
                ]
                results = await asyncio.gather(
                    *(
                        run_dense(
                            step,
                            buffers[step.inputs[0]] if step.inputs
                            else buffers[INPUT_BUFFER],
                        )
                        for step in dense
                    )
                )
                for step, result in zip(dense, results):
                    buffers[step.op_name] = result
                for step in level_steps:
                    if step.kind != "dense":
                        sources = [
                            buffers[name]
                            for name in step.inputs or (INPUT_BUFFER,)
                        ]
                        buffers[step.op_name] = step.op.apply(sources)
            else:
                for step in level_steps:
                    sources = [
                        buffers[name] for name in step.inputs or (INPUT_BUFFER,)
                    ]
                    if step.kind == "dense":
                        buffers[step.op_name] = await run_dense(step, sources[0])
                    else:
                        buffers[step.op_name] = step.op.apply(sources)
            for step in level_steps:
                for name in step.release:
                    del buffers[name]
        result = buffers[self.output]
        return result if was_matrix else result[:, 0]

    def _levels(self) -> List[List[PoolLayerStep]]:
        """Schedule steps grouped by dependency level, in level order."""
        grouped: Dict[int, List[PoolLayerStep]] = {}
        for step in self.steps:
            grouped.setdefault(step.level, []).append(step)
        return [grouped[level] for level in sorted(grouped)]


def compile_for_pool(
    graph: ModelGraph,
    replicas,
    profiles: Optional[Dict[str, ReplicaProfile]] = None,
    strategy: str = "min-cost",
    cache: Optional[PlanCache] = DEFAULT_PLAN_CACHE,
) -> PoolPlan:
    """Compile a model graph into replica-pinned serving steps.

    Accepts chains and branching DAGs: dense ops are placed on replicas
    by calibrated cost and annotated with dependency levels so
    independent branches dispatch concurrently; glue ops lower to
    host-side float steps.  ``profiles`` defaults to measuring the pool
    on the spot (:func:`~repro.compiler.costmodel.profile_replicas`) —
    pass pre-measured profiles to compile without touching the engines.

    Args:
        graph: the model to lower.
        replicas: the target :class:`~repro.serving.scheduler.Replica`
            pool (engines must accept explicit-weights requests).
        profiles: pre-measured replica profiles keyed by replica name.
        strategy: placement strategy
            (:data:`~repro.compiler.partition.PLACEMENT_STRATEGIES`).
        cache: plan cache (``None`` disables caching).

    Returns:
        The executable :class:`PoolPlan`.

    Raises:
        ValueError: when the pool is empty or no replica accepts
            explicit-weights requests.
        GraphError: for malformed graphs (cycles, unresolved outputs).
    """
    schedule = graph.schedule()  # validates output/cycles before cache lookup
    replicas = list(replicas)
    if not replicas:
        raise ValueError("pool plan needs at least one replica")
    # plan layers execute as explicit-weights requests; engines serving only
    # a bound model (e.g. MLPEngine) must be excluded at compile time, not
    # fail mid-plan after earlier layers already executed
    servable = []
    for replica in replicas:
        try:
            replica.engine.model_key(_WEIGHTS_PROBE)
        except ServingError:
            continue
        servable.append(replica)
    if not servable:
        raise ValueError(
            "no replica in the pool accepts explicit-weights requests "
            "(pool plans cannot be lowered onto bound-model engines such "
            "as MLPEngine)"
        )
    replicas = servable
    if profiles is None:
        # profile first so the cache key reflects the fresh measurements —
        # re-profiling a changed pool must never return a stale placement
        profiles = profile_replicas(replicas)
    else:
        profiles = {
            name: profile
            for name, profile in profiles.items()
            if name in {replica.name for replica in replicas}
        }
    key = (
        graph.graph_hash(),
        pool_fingerprint(replicas, strategy=strategy, profiles=profiles),
    )
    if cache is not None:
        cached = cache.get(key)
        if cached is not None:
            return cached
    placement = place_graph(graph, profiles, strategy=strategy)
    levels: Dict[str, int] = {}
    steps: List[PoolLayerStep] = []
    for item in schedule:
        op = item.op
        level = (
            1 + max(levels[name] for name in item.inputs) if item.inputs else 0
        )
        levels[op.name] = level
        if op.kind == "dense":
            steps.append(
                PoolLayerStep(
                    op_name=op.name,
                    weights=np.asarray(op.weights, dtype=float),
                    bias=np.asarray(op.bias, dtype=float) if op.bias is not None else None,
                    activation=op.activation,
                    replica=placement.assignments[op.name],
                    kind="dense",
                    inputs=item.inputs,
                    release=item.release,
                    level=level,
                    op=op,
                    predicted_s=placement.predicted_op_s.get(op.name),
                )
            )
        else:
            steps.append(
                PoolLayerStep(
                    op_name=op.name,
                    weights=None,
                    bias=None,
                    activation=op.activation,
                    replica="",
                    kind=op.kind,
                    inputs=item.inputs,
                    release=item.release,
                    level=level,
                    op=op,
                )
            )
    plan = PoolPlan(
        graph_hash=key[0],
        fingerprint=key[1],
        steps=steps,
        output=graph.output_name(),
        placement=placement,
        predicted_s=placement.predicted_total_s,
    )
    if cache is not None:
        cache.put(key, plan)
    return plan
