"""Plan compilation and execution: lowering graphs onto SoC and replicas.

``compile_for_soc`` lowers a chain :class:`~repro.compiler.graph.ModelGraph`
into an :class:`SoCPlan` — one sharded
:meth:`~repro.system.soc.PhotonicSoC.run_tiled_gemm` offload per layer,
with the rows-vs-K sharding decision made per layer by the partitioner —
and ``compile_for_pool`` lowers the same graph onto a live replica pool as
a :class:`PoolPlan` whose layers are pinned to the replicas a calibrated
:class:`~repro.compiler.partition.Placement` chose.

Compiled plans are cached in an LRU :class:`PlanCache` keyed by
``(graph_hash, hardware fingerprint)``: re-compiling the same model for
the same hardware is a dictionary hit, while any change to layer bytes,
activation wiring, PE cluster or replica pool produces a fresh plan.

Executing a plan is **numerically identical** to direct per-layer
execution on the same backend: the plan only decides *where* each matmul
runs and how it is sharded; the matmul itself goes through the exact same
datapath (``run_tiled_gemm`` accumulates integer partials exactly; pool
layers execute the same ``backend.matmul`` the direct path would call).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.compiler.costmodel import ReplicaProfile, SoCCostModel, profile_replicas
from repro.compiler.graph import GraphError, ModelGraph
from repro.compiler.partition import Placement, choose_sharding, place_graph
from repro.core.nn import ACTIVATIONS
from repro.serving.errors import ServingError

#: Activations an integer SoC offload can apply in its digital epilogue.
SOC_ACTIVATIONS = ("identity", "relu")

#: Tiny weight matrix used to probe whether an engine accepts explicit
#: weights (bound-model engines raise ServingError from ``model_key``).
_WEIGHTS_PROBE = np.zeros((1, 1))


class PlanCache:
    """LRU cache of compiled plans keyed by (graph hash, hardware print)."""

    def __init__(self, max_plans: int = 32):
        if max_plans < 1:
            raise ValueError("max_plans must be >= 1")
        self.max_plans = int(max_plans)
        self.hits = 0
        self.misses = 0
        self._plans: "OrderedDict[Tuple[str, str], object]" = OrderedDict()

    def get(self, key: Tuple[str, str]):
        plan = self._plans.get(key)
        if plan is not None:
            self._plans.move_to_end(key)
            self.hits += 1
        return plan

    def put(self, key: Tuple[str, str], plan) -> None:
        self.misses += 1
        self._plans[key] = plan
        while len(self._plans) > self.max_plans:
            self._plans.popitem(last=False)

    def __len__(self) -> int:
        return len(self._plans)

    def clear(self) -> None:
        self._plans.clear()


#: Default process-wide plan cache used when callers do not pass their own.
DEFAULT_PLAN_CACHE = PlanCache(max_plans=32)


def cost_model_fingerprint(cost_model: Optional[SoCCostModel]) -> str:
    """Fingerprint of a cost model's fitted coefficients (or ``"none"``).

    Plans compiled with different calibrations (or with/without one) make
    different sharding decisions, so the cost model is part of the plan
    cache key — recalibrating must never return a stale cached plan.
    """
    if cost_model is None:
        return "none"
    digest = hashlib.sha1()
    digest.update(np.asarray(cost_model.dma_coeffs, dtype=float).tobytes())
    digest.update(np.asarray(cost_model.host_coeffs, dtype=float).tobytes())
    for device in sorted(cost_model.compute_coeffs):
        digest.update(device.encode())
        digest.update(
            np.asarray(cost_model.compute_coeffs[device], dtype=float).tobytes()
        )
    return digest.hexdigest()


def profiles_fingerprint(profiles: Dict[str, ReplicaProfile]) -> str:
    """Fingerprint of the measured replica profiles feeding a placement."""
    digest = hashlib.sha1()
    for name in sorted(profiles):
        profile = profiles[name]
        digest.update(name.encode())
        digest.update(f"{profile.service_s}|{profile.macs}|".encode())
    return digest.hexdigest()


def soc_fingerprint(
    soc,
    k_shards: Optional[int] = None,
    tile_rows: Optional[int] = None,
    cost_model: Optional[SoCCostModel] = None,
    n_columns: int = 1,
) -> str:
    """Hardware fingerprint of an SoC configuration for plan caching."""
    digest = hashlib.sha1()
    digest.update(b"soc|")
    digest.update(str(soc.clock_hz).encode())
    for accelerator in soc.accelerators:
        digest.update(accelerator.device_type.encode())
        digest.update(accelerator.backend.name.encode())
        digest.update(str(accelerator.input_spm.size_bytes).encode())
        digest.update(b",")
    digest.update(f"k={k_shards}|t={tile_rows}|n={n_columns}|".encode())
    digest.update(cost_model_fingerprint(cost_model).encode())
    return digest.hexdigest()


def pool_fingerprint(
    replicas,
    strategy: str = "min-cost",
    profiles: Optional[Dict[str, ReplicaProfile]] = None,
) -> str:
    """Hardware fingerprint of a replica pool for plan caching."""
    digest = hashlib.sha1()
    digest.update(b"pool|")
    for replica in replicas:
        digest.update(replica.name.encode())
        digest.update(type(replica.engine).__name__.encode())
        backend = getattr(replica.engine, "backend", None)
        digest.update(getattr(backend, "name", "none").encode())
        digest.update(b",")
    digest.update(strategy.encode())
    if profiles is not None:
        digest.update(b"|")
        digest.update(profiles_fingerprint(profiles).encode())
    return digest.hexdigest()


@dataclass
class SoCLayerStep:
    """One compiled layer of an SoC plan."""

    op_name: str
    weights: np.ndarray  # int64, ready for the offload path
    bias: Optional[np.ndarray]
    activation: str
    sharding: str  # "rows" | "k"
    k_shards: int
    predicted_cycles: Optional[float] = None


@dataclass
class SoCPlan:
    """An executable placement plan lowered onto one SoC cluster.

    Attributes:
        graph_hash / fingerprint: the cache key this plan was compiled for.
        steps: per-layer offload steps in topological order.
        reports: the per-layer :class:`~repro.system.soc.WorkloadReport`
            list of the most recent :meth:`run`.
    """

    soc: object
    graph_hash: str
    fingerprint: str
    steps: List[SoCLayerStep]
    tile_rows: Optional[int] = None
    predicted_cycles: Optional[float] = None
    reports: List[object] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        """Simulated cycles of the most recent :meth:`run`."""
        return sum(report.cycles for report in self.reports)

    def run(self, columns: np.ndarray) -> np.ndarray:
        """Execute the plan on integer input columns ``(n_in, batch)``."""
        out = np.asarray(np.round(np.asarray(columns, dtype=float)), dtype=np.int64)
        if out.ndim == 1:
            out = out[:, None]
        self.reports = []
        for step in self.steps:
            report = self.soc.run_tiled_gemm(
                step.weights,
                out,
                tile_rows=self.tile_rows,
                k_shards=step.k_shards if step.sharding == "k" else None,
            )
            self.reports.append(report)
            out = report.result
            if step.bias is not None:
                out = out + step.bias[:, None]
            if step.activation == "relu":
                out = np.maximum(out, 0)
        return out


def compile_for_soc(
    graph: ModelGraph,
    soc,
    cost_model: Optional[SoCCostModel] = None,
    tile_rows: Optional[int] = None,
    n_columns: int = 1,
    cache: Optional[PlanCache] = DEFAULT_PLAN_CACHE,
) -> SoCPlan:
    """Compile a chain graph into per-layer sharded SoC offloads.

    Each layer gets its own rows-vs-K sharding decision from
    :func:`~repro.compiler.partition.choose_sharding` (cost-model-driven
    when one is supplied); ``n_columns`` is the batch width the decisions
    are optimised for — pass the expected serving batch so the rows-vs-K
    comparison (whose reduction cost scales with the batch) matches the
    workload the plan will actually run.  The SoC works on integers, so
    weights/biases are rounded at compile time and only integer-preserving
    activations (:data:`SOC_ACTIVATIONS`) are accepted.
    """
    if not getattr(soc, "accelerators", None):
        raise ValueError("SoC plan needs a PhotonicSoC with accelerators attached")
    if not graph.is_chain():
        raise GraphError("SoC lowering supports chain graphs only")
    if n_columns < 1:
        raise ValueError("n_columns must be >= 1")
    key = (
        graph.graph_hash(),
        soc_fingerprint(
            soc, tile_rows=tile_rows, cost_model=cost_model, n_columns=n_columns
        ),
    )
    if cache is not None:
        cached = cache.get(key)
        if cached is not None and cached.soc is soc:
            return cached
    n_pes = len(soc.accelerators)
    steps: List[SoCLayerStep] = []
    predicted_total: Optional[float] = 0.0 if cost_model is not None else None
    for op in graph.topological_order():
        if op.activation not in SOC_ACTIVATIONS:
            raise GraphError(
                f"op {op.name!r}: activation {op.activation!r} cannot be "
                f"lowered to the integer SoC datapath "
                f"(supported: {SOC_ACTIVATIONS})"
            )
        weights = np.asarray(np.round(np.asarray(op.weights, dtype=float)), dtype=np.int64)
        bias = None
        if op.bias is not None:
            bias = np.asarray(np.round(np.asarray(op.bias, dtype=float)), dtype=np.int64)
        decision = choose_sharding(
            op.n_outputs, op.n_inputs, n_columns, n_pes,
            cost_model=cost_model, tile_rows=tile_rows,
        )
        steps.append(
            SoCLayerStep(
                op_name=op.name,
                weights=weights,
                bias=bias,
                activation=op.activation,
                sharding=decision.strategy,
                k_shards=decision.k_shards,
                predicted_cycles=decision.predicted_cycles,
            )
        )
        if predicted_total is not None:
            if decision.predicted_cycles is None:
                # a single missing per-layer prediction must yield "no
                # total", not a silently understated one
                predicted_total = None
            else:
                predicted_total += decision.predicted_cycles
    plan = SoCPlan(
        soc=soc,
        graph_hash=key[0],
        fingerprint=key[1],
        steps=steps,
        tile_rows=tile_rows,
        predicted_cycles=predicted_total,
    )
    if cache is not None:
        cache.put(key, plan)
    return plan


@dataclass
class PoolLayerStep:
    """One compiled layer of a pool plan (pinned to a replica)."""

    op_name: str
    weights: np.ndarray
    bias: Optional[np.ndarray]
    activation: str
    replica: str
    predicted_s: Optional[float] = None


@dataclass
class PoolPlan:
    """An executable placement plan over a live replica pool.

    Layer matmuls are submitted to the server **pinned** to the replica
    the placement chose; bias/activation epilogues run host-side in the
    same float arithmetic the direct path uses, so the plan's output is
    bitwise identical to running each layer directly on the backend of its
    assigned replica (for deterministic backends).
    """

    graph_hash: str
    fingerprint: str
    steps: List[PoolLayerStep]
    placement: Placement
    predicted_s: Optional[float] = None

    async def run(self, server, column: np.ndarray) -> np.ndarray:
        """Execute the plan for one input column through a running server."""
        out = np.asarray(column, dtype=float)
        was_matrix = out.ndim == 2
        if was_matrix:
            if out.shape[1] != 1:
                raise ValueError("pool plans execute one input column per run")
            out = out[:, 0]
        elif out.ndim != 1:
            raise ValueError("pool plans execute one input column per run")
        for step in self.steps:
            pre = await server.submit(out, weights=step.weights, replica=step.replica)
            pre = np.asarray(pre, dtype=float)[:, None]
            if step.bias is not None:
                pre = pre + step.bias[:, None]
            if step.activation == "identity":
                out = pre[:, 0]
            else:
                out = ACTIVATIONS[step.activation](pre.T).T[:, 0]
        return out[:, None] if was_matrix else out


def compile_for_pool(
    graph: ModelGraph,
    replicas,
    profiles: Optional[Dict[str, ReplicaProfile]] = None,
    strategy: str = "min-cost",
    cache: Optional[PlanCache] = DEFAULT_PLAN_CACHE,
) -> PoolPlan:
    """Compile a chain graph into replica-pinned serving steps.

    ``profiles`` defaults to measuring the pool on the spot
    (:func:`~repro.compiler.costmodel.profile_replicas`) — pass
    pre-measured profiles to compile without touching the engines.
    """
    if not graph.is_chain():
        raise GraphError("pool lowering supports chain graphs only")
    replicas = list(replicas)
    if not replicas:
        raise ValueError("pool plan needs at least one replica")
    # plan layers execute as explicit-weights requests; engines serving only
    # a bound model (e.g. MLPEngine) must be excluded at compile time, not
    # fail mid-plan after earlier layers already executed
    servable = []
    for replica in replicas:
        try:
            replica.engine.model_key(_WEIGHTS_PROBE)
        except ServingError:
            continue
        servable.append(replica)
    if not servable:
        raise ValueError(
            "no replica in the pool accepts explicit-weights requests "
            "(pool plans cannot be lowered onto bound-model engines such "
            "as MLPEngine)"
        )
    replicas = servable
    if profiles is None:
        # profile first so the cache key reflects the fresh measurements —
        # re-profiling a changed pool must never return a stale placement
        profiles = profile_replicas(replicas)
    else:
        profiles = {
            name: profile
            for name, profile in profiles.items()
            if name in {replica.name for replica in replicas}
        }
    key = (
        graph.graph_hash(),
        pool_fingerprint(replicas, strategy=strategy, profiles=profiles),
    )
    if cache is not None:
        cached = cache.get(key)
        if cached is not None:
            return cached
    placement = place_graph(graph, profiles, strategy=strategy)
    steps = [
        PoolLayerStep(
            op_name=op.name,
            weights=np.asarray(op.weights, dtype=float),
            bias=np.asarray(op.bias, dtype=float) if op.bias is not None else None,
            activation=op.activation,
            replica=placement.assignments[op.name],
            predicted_s=placement.predicted_op_s.get(op.name),
        )
        for op in graph.topological_order()
    ]
    plan = PoolPlan(
        graph_hash=key[0],
        fingerprint=key[1],
        steps=steps,
        placement=placement,
        predicted_s=placement.predicted_total_s,
    )
    if cache is not None:
        cache.put(key, plan)
    return plan
