"""Adaptive replanning: the monitor → refit → recompile control loop.

Boot-time calibration is right exactly once.  The paper's augmented
photonic accelerators drift in deployment — thermal crosstalk, bias
aging, bus contention that wasn't there on the calibration bench — and
the serving layer's observed batch width rarely matches the width a plan
was compiled for.  :class:`AdaptiveReplanner` closes both loops:

* **Cost-model drift** — production offloads stream their measured
  :class:`~repro.system.soc.WorkloadReport` pipeline phases into a
  bounded sample window (:meth:`AdaptiveReplanner.observe_offload`).
  When the window's mean relative predicted-cycle error exceeds a
  threshold with at least ``min_samples`` samples — or the attached
  :class:`~repro.obs.drift.DriftMonitor` raises flags — the replanner
  refits a fresh :class:`~repro.compiler.costmodel.SoCCostModel` from
  the window (:meth:`~repro.compiler.costmodel.SoCCostModel.refit`).
  The refit changes the fitted coefficients, which changes
  :func:`~repro.compiler.execute.cost_model_fingerprint`, which changes
  every ``(graph_hash, fingerprint)`` plan-cache key — stale plans can
  never be returned again, and the next compile re-runs
  :func:`~repro.compiler.partition.choose_sharding` against the
  refreshed model.
* **Batch-width drift** — the serving layer feeds observed fused batch
  widths (:meth:`AdaptiveReplanner.observe_batch`, wired through
  ``InferenceServer(replanner=...)``).  When the deterministic expected
  width crosses a sharding flip point — the
  :func:`~repro.compiler.partition.sharding_signature` of a managed
  plan's shapes changes at the new width — the plan recompiles once and
  swaps in atomically (a Python reference rebind; the old plan serves
  every request started before the swap).  Width jitter inside a
  sharding region never recompiles.

Every decision is deterministic: no RNG, no wall-clock — the decision
trace (:meth:`AdaptiveReplanner.decision_trace`) of a replayed workload
is bitwise identical.  And because sharding only moves *where* tiles
execute, never *what* they compute, compiled outputs are bitwise
identical before and after any replan.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.compiler.costmodel import (
    CalibrationSample,
    ReplicaProfile,
    SoCCostModel,
    replica_cost_fn,
)
from repro.compiler.execute import (
    DEFAULT_PLAN_CACHE,
    PlanCache,
    SoCPlan,
    compile_for_soc,
    cost_model_fingerprint,
)
from repro.compiler.partition import sharding_signature


@dataclass(frozen=True)
class RefitEvent:
    """One cost-model refit decision in the replay trace.

    Attributes:
        generation: model generation after the refit (boot model is 0).
        n_samples: window size the refit regressed over.
        error_before: mean relative pipelined-cycle error of the retired
            model over the window.
        error_after: the refitted model's error over the same window.
        fingerprint: the refitted model's coefficient fingerprint — the
            hardware-fingerprint bump that invalidates stale plan-cache
            keys.
        drift_flags: number of :class:`~repro.obs.drift.DriftMonitor`
            flags pending when the refit fired.
    """

    generation: int
    n_samples: int
    error_before: float
    error_after: float
    fingerprint: str
    drift_flags: int = 0


@dataclass(frozen=True)
class ReplanEvent:
    """One plan recompilation decision in the replay trace.

    Attributes:
        generation: model generation the new plan was compiled against.
        graph_hash: the managed graph that recompiled.
        reason: ``"width-flip"`` (observed batch width crossed a sharding
            flip point) or ``"refit"`` (a cost-model refit changed the
            sharding decisions at the current width).
        old_width / new_width: batch widths of the retired and new plans.
        old_signature / new_signature: per-shape ``(strategy, k_shards)``
            sharding signatures — unequal by construction, that's what
            triggered the recompile.
        fingerprint: the new plan's hardware fingerprint.
    """

    generation: int
    graph_hash: str
    reason: str
    old_width: int
    new_width: int
    old_signature: Tuple[Tuple[str, int], ...]
    new_signature: Tuple[Tuple[str, int], ...]
    fingerprint: str


@dataclass
class ManagedPlan:
    """One graph under adaptive management and its active compiled plan.

    Attributes:
        graph: the managed :class:`~repro.compiler.graph.ModelGraph`.
        soc: the SoC cluster the plan targets.
        tile_rows / fuse: compile options pinned at :meth:`manage` time.
        plan: the active :class:`~repro.compiler.execute.SoCPlan` —
            rebinding this reference IS the atomic swap.
        width: batch width the active plan was compiled for.
        shapes: the plan's dense ``(n_rows, n_inner)`` offload shapes.
        signature: sharding signature of the active plan at ``width``.
        replans: recompiles performed since :meth:`manage`.
    """

    graph: object
    soc: object
    tile_rows: Optional[int]
    fuse: str
    plan: SoCPlan
    width: int
    shapes: Tuple[Tuple[int, int], ...]
    signature: Tuple[Tuple[str, int], ...]
    replans: int = 0


def _plan_shapes(plan: SoCPlan) -> Tuple[Tuple[int, int], ...]:
    """The dense ``(n_rows, n_inner)`` shapes a plan offloads, in order."""
    return tuple(
        (step.weights.shape[0], step.weights.shape[1])
        for step in plan.steps
        if step.weights is not None
    )


class AdaptiveReplanner:
    """Online recalibration and drift-triggered plan recompilation.

    Deterministic by construction: decisions read only the sample/width
    windows and the current model — no RNG, no clocks — so replaying the
    same observation sequence yields a bitwise-identical
    :meth:`decision_trace`.

    Args:
        soc: the serving SoC whose offloads feed the sample window (its
            accelerator roster supplies the refit device types).
        cost_model: the boot-time calibrated model (generation 0).
        drift_monitor: optional :class:`~repro.obs.drift.DriftMonitor`;
            its flags are consumed as an additional refit trigger and it
            is reset after each refit (old-model errors say nothing about
            the new model).
        refit_threshold: mean relative pipelined-cycle error over the
            window above which a refit fires (strictly greater).
        min_samples: refits never fire below this window size, however
            large the error — guards against one-shot noise.
        max_samples: bounded sample window length (oldest evicted).
        width_window: bounded observed-batch-width window length.
        cache: plan cache shared with ``compile_for_soc`` callers; refits
            invalidate managed graphs' stale entries in it.
    """

    def __init__(
        self,
        soc,
        cost_model: SoCCostModel,
        drift_monitor=None,
        refit_threshold: float = 0.10,
        min_samples: int = 8,
        max_samples: int = 64,
        width_window: int = 32,
        cache: Optional[PlanCache] = DEFAULT_PLAN_CACHE,
    ):
        if refit_threshold <= 0:
            raise ValueError("refit_threshold must be positive")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if max_samples < min_samples:
            raise ValueError("max_samples must be >= min_samples")
        if not getattr(soc, "accelerators", None):
            raise ValueError("adaptive replanning needs an SoC with accelerators")
        self.soc = soc
        self.model = cost_model
        self.drift_monitor = drift_monitor
        self.refit_threshold = float(refit_threshold)
        self.min_samples = int(min_samples)
        self.cache = cache
        self.generation = 0
        self.events: List[object] = []
        self._samples: Deque[CalibrationSample] = deque(maxlen=int(max_samples))
        self._widths: Deque[int] = deque(maxlen=int(width_window))
        self._plans: Dict[str, ManagedPlan] = {}
        self._profiles: Dict[str, ReplicaProfile] = {}
        self._device_types = [pe.device_type for pe in soc.accelerators]

    # ------------------------------------------------------------------ #
    # observation feeds
    # ------------------------------------------------------------------ #
    def observe_offload(
        self, shape: Tuple[int, int, int], report, tile_rows: Optional[int] = None
    ) -> None:
        """Record one production offload's measured pipeline phases.

        K-sharded and accounting-free reports are ignored — the refit
        regresses row-shard features, so only row-sharded pipelines are
        valid samples.  Wired from ``SoCGemmEngine(replanner=...)``.

        Args:
            shape: the offloaded ``(n_rows, n_inner, n_cols)`` shape.
            report: the :class:`~repro.system.soc.WorkloadReport`.
            tile_rows: row-tiling override the offload ran with.
        """
        try:
            sample = CalibrationSample.from_report(shape, report, tile_rows=tile_rows)
        except ValueError:
            return
        self._samples.append(sample)

    def observe_batch(self, n_columns: int) -> None:
        """Record one served fused-batch width.

        Wired from ``InferenceServer(replanner=...)`` via the replica
        batch observers; offline callers can feed widths directly.
        """
        if n_columns >= 1:
            self._widths.append(int(n_columns))

    def ingest_telemetry(self, telemetry) -> None:
        """Fold a ``ServingTelemetry``'s recorded batch widths into the window.

        The batch-observer wiring feeds widths live; this is the offline
        equivalent for replaying a telemetry capture into the replanner.
        """
        for value in telemetry.batch_sizes.values():
            self.observe_batch(int(value))

    def ingest_profiles(self, profiles: Dict[str, ReplicaProfile]) -> None:
        """Adopt a fresh ``profile_replicas`` result (replacing the old one).

        Scoring callables built from :meth:`current_profiles` see the new
        profiles immediately — no scheduler rebuild required.
        """
        self._profiles = dict(profiles)

    # ------------------------------------------------------------------ #
    # read-through views
    # ------------------------------------------------------------------ #
    def current_profiles(self) -> Dict[str, ReplicaProfile]:
        """The live replica-profile mapping (see :meth:`ingest_profiles`)."""
        return self._profiles

    def cost_fn(self) -> Callable[[object], float]:
        """A read-through scorer for ``ReplicaScheduler(policy="cost-based")``.

        Built over :meth:`current_profiles` (the callable form of
        :func:`~repro.compiler.costmodel.replica_cost_fn`), so cost-based
        routing sees every :meth:`ingest_profiles` refresh without the
        scheduler being rebuilt.
        """
        return replica_cost_fn(self.current_profiles)

    def fingerprint(self) -> str:
        """The current model's coefficient fingerprint (bumps on refit)."""
        return cost_model_fingerprint(self.model)

    def expected_width(self) -> Optional[int]:
        """Deterministic expected batch width from the observed window.

        The round of the window mean (always >= 1), or ``None`` before
        any width has been observed.
        """
        if not self._widths:
            return None
        return max(1, int(round(sum(self._widths) / len(self._widths))))

    def window_error(self, model: Optional[SoCCostModel] = None) -> Optional[float]:
        """Mean relative pipelined-cycle error of ``model`` over the window.

        Args:
            model: the model to score (default: the current one).

        Returns:
            ``mean(|measured - predicted| / measured)`` across the sample
            window, or ``None`` when the window is empty.
        """
        model = model if model is not None else self.model
        if not self._samples:
            return None
        total = 0.0
        for sample in self._samples:
            predicted = model.predict_gemm(
                *sample.shape, tile_rows=sample.tile_rows
            ).pipelined_cycles
            measured = sample.pipelined_cycles
            total += abs(measured - predicted) / max(measured, 1.0)
        return total / len(self._samples)

    # ------------------------------------------------------------------ #
    # plan management
    # ------------------------------------------------------------------ #
    def manage(
        self,
        graph,
        soc=None,
        tile_rows: Optional[int] = None,
        fuse: str = "auto",
        n_columns: Optional[int] = None,
    ) -> SoCPlan:
        """Compile ``graph`` and put its plan under adaptive management.

        Args:
            graph: the :class:`~repro.compiler.graph.ModelGraph` to serve.
            soc: target cluster (default: the replanner's SoC).
            tile_rows / fuse: compile options, pinned for every replan.
            n_columns: initial batch width (default: the observed
                expected width, else 1).

        Returns:
            The active compiled :class:`~repro.compiler.execute.SoCPlan`.
        """
        soc = soc if soc is not None else self.soc
        width = n_columns if n_columns is not None else (self.expected_width() or 1)
        plan = compile_for_soc(
            graph,
            soc,
            cost_model=self.model,
            tile_rows=tile_rows,
            n_columns=width,
            fuse=fuse,
            cache=self.cache,
        )
        shapes = _plan_shapes(plan)
        self._plans[plan.graph_hash] = ManagedPlan(
            graph=graph,
            soc=soc,
            tile_rows=tile_rows,
            fuse=fuse,
            plan=plan,
            width=width,
            shapes=shapes,
            signature=sharding_signature(
                shapes,
                width,
                len(soc.accelerators),
                cost_model=self.model,
                tile_rows=tile_rows,
            ),
        )
        return plan

    def active_plan(self, graph_or_hash) -> SoCPlan:
        """The currently-served plan of a managed graph.

        Args:
            graph_or_hash: the managed graph or its ``graph_hash`` string.

        Raises:
            KeyError: when the graph is not under management.
        """
        key = (
            graph_or_hash
            if isinstance(graph_or_hash, str)
            else graph_or_hash.graph_hash()
        )
        return self._plans[key].plan

    def managed(self) -> Dict[str, ManagedPlan]:
        """The managed-plan registry keyed by graph hash (live view)."""
        return self._plans

    # ------------------------------------------------------------------ #
    # decisions
    # ------------------------------------------------------------------ #
    def maybe_refit(self) -> Optional[RefitEvent]:
        """Refit the cost model if the sample window says it drifted.

        Fires only with at least ``min_samples`` samples AND (window
        error strictly above ``refit_threshold`` OR the attached drift
        monitor holding flags).  On refit: the model reference swaps to
        the freshly fitted one (bumping :meth:`fingerprint`, so every
        ``(graph_hash, fingerprint)`` plan-cache key changes), managed
        graphs' stale cache entries are invalidated, the drift monitor is
        reset, and managed plans whose sharding decisions change under
        the new model recompile immediately.

        Returns:
            The :class:`RefitEvent`, or ``None`` when no refit fired.
        """
        if len(self._samples) < self.min_samples:
            return None
        error_before = self.window_error()
        n_flags = len(self.drift_monitor.flags()) if self.drift_monitor else 0
        if error_before <= self.refit_threshold and n_flags == 0:
            return None
        refitted = self.model.refit(
            list(self._samples), device_types=self._device_types
        )
        error_after = self.window_error(model=refitted)
        self.generation += 1
        self.model = refitted
        if self.drift_monitor is not None:
            self.drift_monitor.reset()
        if self.cache is not None:
            for graph_hash in self._plans:
                self.cache.invalidate(graph_hash=graph_hash)
        event = RefitEvent(
            generation=self.generation,
            n_samples=len(self._samples),
            error_before=error_before,
            error_after=error_after,
            fingerprint=self.fingerprint(),
            drift_flags=n_flags,
        )
        self.events.append(event)
        for entry in self._plans.values():
            self._replan(entry, entry.width, reason="refit")
        return event

    def maybe_replan(self) -> List[ReplanEvent]:
        """Recompile managed plans whose width crossed a sharding flip point.

        The observed :meth:`expected_width` is compared against each
        managed plan's compiled width; a plan recompiles only when the
        :func:`~repro.compiler.partition.sharding_signature` at the new
        width differs from the active plan's — width jitter inside a
        sharding region is free.

        Returns:
            The :class:`ReplanEvent` list (empty when nothing flipped).
        """
        width = self.expected_width()
        if width is None:
            return []
        events = []
        for entry in self._plans.values():
            if width == entry.width:
                continue
            event = self._replan(entry, width, reason="width-flip")
            if event is not None:
                events.append(event)
        return events

    def poll(self) -> List[object]:
        """Run one decision round (refit check, then replan check).

        Call between serving batches — from a scheduler idle hook, a
        maintenance timer, or inline in a driver loop.  Deterministic:
        the same windows produce the same decisions.

        Returns:
            The events emitted by this round, in order.
        """
        before = len(self.events)
        self.maybe_refit()
        self.maybe_replan()
        return self.events[before:]

    def decision_trace(self) -> List[Dict]:
        """The full decision history as plain-JSON dicts (replay-comparable).

        Two runs fed identical observation sequences produce identical
        traces — the bitwise-replay contract the determinism tests pin.
        """
        trace = []
        for event in self.events:
            record = asdict(event)
            record["kind"] = "refit" if isinstance(event, RefitEvent) else "replan"
            if "old_signature" in record:
                record["old_signature"] = [list(pair) for pair in record["old_signature"]]
                record["new_signature"] = [list(pair) for pair in record["new_signature"]]
            trace.append(record)
        return trace

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _replan(
        self, entry: ManagedPlan, new_width: int, reason: str
    ) -> Optional[ReplanEvent]:
        """Recompile ``entry`` at ``new_width`` if its sharding flips."""
        new_signature = sharding_signature(
            entry.shapes,
            new_width,
            len(entry.soc.accelerators),
            cost_model=self.model,
            tile_rows=entry.tile_rows,
        )
        if new_signature == entry.signature:
            return None
        plan = compile_for_soc(
            entry.graph,
            entry.soc,
            cost_model=self.model,
            tile_rows=entry.tile_rows,
            n_columns=new_width,
            fuse=entry.fuse,
            cache=self.cache,
        )
        event = ReplanEvent(
            generation=self.generation,
            graph_hash=entry.plan.graph_hash,
            reason=reason,
            old_width=entry.width,
            new_width=new_width,
            old_signature=entry.signature,
            new_signature=new_signature,
            fingerprint=plan.fingerprint,
        )
        # the swap: every request started before this line runs the old
        # plan to completion; every request after it runs the new one
        entry.plan = plan
        entry.width = new_width
        shapes = _plan_shapes(plan)
        if shapes != entry.shapes:  # fusion decisions moved with the width
            entry.shapes = shapes
            new_signature = sharding_signature(
                shapes,
                new_width,
                len(entry.soc.accelerators),
                cost_model=self.model,
                tile_rows=entry.tile_rows,
            )
        entry.signature = new_signature
        entry.replans += 1
        self.events.append(event)
        return event
