"""Graph IR operations: the units the model compiler plans and places.

The compiler's IR is deliberately small: the paper's workloads are chains
of dense products (GeMM layers, :class:`~repro.core.nn.PhotonicMLP`
layers), so one op kind — :class:`DenseOp`, a matrix product with an
optional bias and activation — covers everything the execution targets can
lower today.  Every op is **content-hashable**: the hash covers the kind,
shapes, dtypes, raw weight/bias bytes and the activation, so two ops with
equal bytes but different dtype or shape hash differently and compiled
plans can be cached by graph content.
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np

from repro.core.nn import ACTIVATIONS

#: Activations the plan executors can apply host-side after the matmul.
SUPPORTED_ACTIVATIONS = tuple(sorted(ACTIVATIONS))


class DenseOp:
    """One dense layer: ``y = act(W x + b)`` with ``x`` an input column.

    Attributes:
        name: unique node name within its graph.
        weights: (n_out, n_in) weight matrix (any real dtype; the dtype is
            part of the content hash so an int8 and a float64 layer with
            equal bytes never collide in the plan cache).
        bias: optional (n_out,) bias vector.
        activation: one of :data:`SUPPORTED_ACTIVATIONS`.
    """

    kind = "dense"

    def __init__(
        self,
        name: str,
        weights: np.ndarray,
        bias: Optional[np.ndarray] = None,
        activation: str = "identity",
    ):
        weights = np.ascontiguousarray(weights)
        if weights.ndim != 2:
            raise ValueError(f"op {name!r}: weights must be a matrix")
        if min(weights.shape) < 1:
            raise ValueError(f"op {name!r}: weights must be non-degenerate")
        if activation not in ACTIVATIONS:
            raise ValueError(
                f"op {name!r}: unknown activation {activation!r} "
                f"(choose from {SUPPORTED_ACTIVATIONS})"
            )
        if bias is not None:
            bias = np.ascontiguousarray(bias)
            if bias.shape != (weights.shape[0],):
                raise ValueError(
                    f"op {name!r}: bias shape {bias.shape} does not match "
                    f"the output dimension {weights.shape[0]}"
                )
        self.name = str(name)
        self.weights = weights
        self.bias = bias
        self.activation = str(activation)
        self._hash: Optional[str] = None

    @property
    def n_inputs(self) -> int:
        return self.weights.shape[1]

    @property
    def n_outputs(self) -> int:
        return self.weights.shape[0]

    @property
    def macs(self) -> int:
        """Multiply-accumulates per input column."""
        return self.weights.shape[0] * self.weights.shape[1]

    def op_hash(self) -> str:
        """Content hash of this op (kind, shapes, dtypes, bytes, activation)."""
        if self._hash is None:
            digest = hashlib.sha1()
            digest.update(self.kind.encode())
            digest.update(str(self.weights.shape).encode())
            digest.update(str(self.weights.dtype).encode())
            digest.update(self.weights.tobytes())
            if self.bias is not None:
                digest.update(str(self.bias.dtype).encode())
                digest.update(self.bias.tobytes())
            digest.update(self.activation.encode())
            self._hash = digest.hexdigest()
        return self._hash

    def finish(self, pre_activation: np.ndarray) -> np.ndarray:
        """Apply the op's bias and activation to a raw ``W @ X`` column block.

        The matmul itself runs on whatever backend the plan placed the op
        on; this digital epilogue is the same for every target, which is
        what keeps a compiled plan's output identical to direct per-layer
        execution on the same backend.
        """
        out = np.asarray(pre_activation)
        if self.bias is not None:
            out = out + self.bias[:, None]
        if self.activation == "identity":
            return out
        # ACTIVATIONS act along the last axis of row-major batches; column
        # blocks transpose through them
        return ACTIVATIONS[self.activation](out.T).T

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DenseOp {self.name!r} {self.n_outputs}x{self.n_inputs} "
            f"act={self.activation}>"
        )
