"""Graph IR operations: the units the model compiler plans and places.

The IR covers the workloads the paper's platform targets — whole neural
models, which in practice are **DAGs**, not chains: residual MLPs,
multi-head readouts, SNN readout fan-outs.  Four op kinds span them:

* :class:`DenseOp` — a matrix product with optional bias and activation,
  the only op that executes on an accelerator backend.
* :class:`SplitOp` — a contiguous feature slice of its producer (several
  ``SplitOp`` nodes over one producer model a fan-out "split").
* :class:`ConcatOp` — feature-wise concatenation of its producers
  (fan-in; edge order is semantic and part of the content hash).
* :class:`AddOp` — elementwise sum of its producers (residual fan-in).

Every op is **content-hashable**: the hash covers the kind, shapes,
dtypes, raw weight/bias bytes, activation and structural parameters, so
two ops with equal bytes but different dtype or shape hash differently
and compiled plans can be cached by graph content.  The glue ops
(:class:`SplitOp` / :class:`ConcatOp` / :class:`AddOp`) carry no weights
and execute host-side in both lowering targets; only :class:`DenseOp`
is placed on backends.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Sequence

import numpy as np

from repro.core.nn import ACTIVATIONS

#: Activations the plan executors can apply host-side after the matmul.
SUPPORTED_ACTIVATIONS = tuple(sorted(ACTIVATIONS))


def _check_activation(name: str, activation: str) -> str:
    """Validate an activation label against the shared registry."""
    if activation not in ACTIVATIONS:
        raise ValueError(
            f"op {name!r}: unknown activation {activation!r} "
            f"(choose from {SUPPORTED_ACTIVATIONS})"
        )
    return str(activation)


def _apply_activation(activation: str, columns: np.ndarray) -> np.ndarray:
    """Apply a registry activation to an ``(n_features, batch)`` column block."""
    if activation == "identity":
        return columns
    # ACTIVATIONS act along the last axis of row-major batches; column
    # blocks transpose through them
    return ACTIVATIONS[activation](columns.T).T


class GraphOp:
    """Base class of every IR node.

    Subclasses declare their wiring contract through :attr:`arity` /
    :meth:`expected_input_sizes` and their semantics through
    :meth:`apply`; :attr:`placeable` marks ops that execute on an
    accelerator backend (only :class:`DenseOp`) — glue ops run host-side
    in every lowering target.

    Attributes:
        name: unique node name within its graph.
        activation: digital epilogue applied after the op's core semantics
            (one of :data:`SUPPORTED_ACTIVATIONS`).
    """

    kind = "op"
    #: True when the op's core computation runs on a backend (a matmul);
    #: False for host-side glue (split/concat/add).
    placeable = False

    def __init__(self, name: str, activation: str = "identity"):
        self.name = str(name)
        self.activation = _check_activation(name, activation)
        self._hash: Optional[str] = None

    @property
    def n_inputs(self) -> int:
        """Feature length of each input column (first input for fan-in ops)."""
        raise NotImplementedError

    @property
    def n_outputs(self) -> int:
        """Feature length of the output column."""
        raise NotImplementedError

    @property
    def macs(self) -> int:
        """Multiply-accumulates per input column (0 for glue ops)."""
        return 0

    def expected_input_sizes(self) -> Sequence[int]:
        """Feature sizes the op requires of its producers, in edge order."""
        raise NotImplementedError

    def validate_inputs(self, producer_sizes: Sequence[int]) -> None:
        """Check the producers wired to this op against its contract.

        Args:
            producer_sizes: ``n_outputs`` of each producer, in edge order.

        Raises:
            ValueError: when the edge count or any feature size mismatches.
        """
        expected = self.expected_input_sizes()
        if len(producer_sizes) != len(expected):
            raise ValueError(
                f"op {self.name!r} ({self.kind}) takes {len(expected)} input(s), "
                f"got {len(producer_sizes)}"
            )
        for position, (got, want) in enumerate(zip(producer_sizes, expected)):
            if got != want:
                raise ValueError(
                    f"op {self.name!r} ({self.kind}) input {position} expects "
                    f"{want} features but its producer supplies {got}"
                )

    def _hash_parts(self) -> Sequence[bytes]:
        """Kind-specific byte fields folded into :meth:`op_hash`."""
        raise NotImplementedError

    def op_hash(self) -> str:
        """Content hash of this op (kind, parameters, bytes, activation).

        Returns:
            A hex digest stable across processes and insertion orders; the
            op *name* does not contribute, so renaming nodes never defeats
            the plan cache.
        """
        if self._hash is None:
            digest = hashlib.sha1()
            digest.update(self.kind.encode())
            for part in self._hash_parts():
                digest.update(part)
            digest.update(self.activation.encode())
            self._hash = digest.hexdigest()
        return self._hash

    def core(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        """The op's semantics *without* the activation epilogue.

        Dtype-preserving for the glue ops (slice / concatenate / integer
        sum), which is what lets the SoC executor run them in its exact
        ``int64`` domain and apply the integer epilogue itself.

        Args:
            inputs: one ``(n_features, batch)`` array per wired producer,
                in edge order (roots receive the graph input).

        Returns:
            The op's raw ``(n_outputs, batch)`` output column block.
        """
        raise NotImplementedError

    def apply(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        """Reference semantics: producer column blocks in, column block out.

        Equal to :meth:`core` followed by the activation epilogue.

        Args:
            inputs: one ``(n_features, batch)`` array per wired producer,
                in edge order (roots receive the graph input).

        Returns:
            The op's ``(n_outputs, batch)`` output column block.
        """
        return _apply_activation(self.activation, self.core(inputs))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name!r} "
            f"{self.n_outputs}x{self.n_inputs} act={self.activation}>"
        )


class DenseOp(GraphOp):
    """One dense layer: ``y = act(W x + b)`` with ``x`` an input column.

    Attributes:
        name: unique node name within its graph.
        weights: (n_out, n_in) weight matrix (any real dtype; the dtype is
            part of the content hash so an int8 and a float64 layer with
            equal bytes never collide in the plan cache).
        bias: optional (n_out,) bias vector.
        activation: one of :data:`SUPPORTED_ACTIVATIONS`.
    """

    kind = "dense"
    placeable = True

    def __init__(
        self,
        name: str,
        weights: np.ndarray,
        bias: Optional[np.ndarray] = None,
        activation: str = "identity",
    ):
        weights = np.ascontiguousarray(weights)
        if weights.ndim != 2:
            raise ValueError(f"op {name!r}: weights must be a matrix")
        if min(weights.shape) < 1:
            raise ValueError(f"op {name!r}: weights must be non-degenerate")
        if bias is not None:
            bias = np.ascontiguousarray(bias)
            if bias.shape != (weights.shape[0],):
                raise ValueError(
                    f"op {name!r}: bias shape {bias.shape} does not match "
                    f"the output dimension {weights.shape[0]}"
                )
        super().__init__(name, activation=activation)
        self.weights = weights
        self.bias = bias

    @property
    def n_inputs(self) -> int:
        """Feature length of the input column (``weights.shape[1]``)."""
        return self.weights.shape[1]

    @property
    def n_outputs(self) -> int:
        """Feature length of the output column (``weights.shape[0]``)."""
        return self.weights.shape[0]

    @property
    def macs(self) -> int:
        """Multiply-accumulates per input column."""
        return self.weights.shape[0] * self.weights.shape[1]

    def expected_input_sizes(self) -> Sequence[int]:
        """One producer supplying ``n_inputs`` features."""
        return (self.n_inputs,)

    def _hash_parts(self) -> Sequence[bytes]:
        parts = [
            str(self.weights.shape).encode(),
            str(self.weights.dtype).encode(),
            self.weights.tobytes(),
        ]
        if self.bias is not None:
            parts.append(str(self.bias.dtype).encode())
            parts.append(self.bias.tobytes())
        return parts

    def finish(self, pre_activation: np.ndarray) -> np.ndarray:
        """Apply the op's bias and activation to a raw ``W @ X`` column block.

        The matmul itself runs on whatever backend the plan placed the op
        on; this digital epilogue is the same for every target, which is
        what keeps a compiled plan's output identical to direct per-layer
        execution on the same backend.

        Args:
            pre_activation: the ``(n_outputs, batch)`` raw product block.

        Returns:
            The finished ``(n_outputs, batch)`` output block.
        """
        out = np.asarray(pre_activation)
        if self.bias is not None:
            out = out + self.bias[:, None]
        return _apply_activation(self.activation, out)

    def core(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        """The raw matrix product ``weights @ x`` (no bias, no activation)."""
        (columns,) = inputs
        return self.weights @ columns

    def apply(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        """Reference execution: ``finish(weights @ x)`` on the one producer."""
        return self.finish(self.core(inputs))


class SplitOp(GraphOp):
    """A contiguous feature slice ``x[start:stop]`` of one producer.

    A fan-out "split" is modelled as several ``SplitOp`` nodes consuming
    the same producer, each owning one slice — which keeps every IR node
    single-output and makes branch liveness explicit to the executors.

    Attributes:
        n_features: feature length of the producer being sliced.
        start / stop: the half-open slice bounds.
    """

    kind = "split"

    def __init__(
        self,
        name: str,
        n_features: int,
        start: int,
        stop: int,
        activation: str = "identity",
    ):
        n_features, start, stop = int(n_features), int(start), int(stop)
        if n_features < 1:
            raise ValueError(f"op {name!r}: n_features must be >= 1")
        if not 0 <= start < stop <= n_features:
            raise ValueError(
                f"op {name!r}: slice [{start}:{stop}] is not a non-empty "
                f"range inside {n_features} features"
            )
        super().__init__(name, activation=activation)
        self.n_features = n_features
        self.start = start
        self.stop = stop

    @property
    def n_inputs(self) -> int:
        """Feature length of the producer being sliced."""
        return self.n_features

    @property
    def n_outputs(self) -> int:
        """Feature length of the slice (``stop - start``)."""
        return self.stop - self.start

    def expected_input_sizes(self) -> Sequence[int]:
        """One producer supplying ``n_features`` features."""
        return (self.n_features,)

    def _hash_parts(self) -> Sequence[bytes]:
        return [f"{self.n_features}|{self.start}|{self.stop}".encode()]

    def core(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        """Slice rows ``[start:stop]`` out of the producer's column block."""
        (columns,) = inputs
        return columns[self.start : self.stop]


class ConcatOp(GraphOp):
    """Feature-wise concatenation of its producers (fan-in).

    Edge order is semantic: ``ConcatOp`` glues producer columns in wiring
    order, and the graph hash covers ordered edges, so two graphs that
    concatenate the same branches in different orders hash differently.

    Attributes:
        input_sizes: feature length expected of each producer, in order.
    """

    kind = "concat"

    def __init__(
        self, name: str, input_sizes: Sequence[int], activation: str = "identity"
    ):
        sizes = tuple(int(size) for size in input_sizes)
        if len(sizes) < 2:
            raise ValueError(f"op {name!r}: concat needs at least two inputs")
        if min(sizes) < 1:
            raise ValueError(f"op {name!r}: input sizes must be positive")
        super().__init__(name, activation=activation)
        self.input_sizes = sizes

    @property
    def n_inputs(self) -> int:
        """Feature length of the first producer (see :attr:`input_sizes`)."""
        return self.input_sizes[0]

    @property
    def n_outputs(self) -> int:
        """Total feature length of the concatenated output."""
        return sum(self.input_sizes)

    def expected_input_sizes(self) -> Sequence[int]:
        """The declared per-edge feature sizes, in edge order."""
        return self.input_sizes

    def _hash_parts(self) -> Sequence[bytes]:
        return [",".join(str(size) for size in self.input_sizes).encode()]

    def core(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        """Stack producer column blocks along the feature axis, in edge order."""
        return np.concatenate(list(inputs), axis=0)


class AddOp(GraphOp):
    """Elementwise sum of equally-sized producers (residual fan-in).

    Attributes:
        n_features: feature length shared by every producer and the output.
        arity: number of producers (>= 2); part of the content hash so a
            2-way and a 3-way add of the same width never collide.
    """

    kind = "add"

    def __init__(
        self, name: str, n_features: int, arity: int = 2, activation: str = "identity"
    ):
        n_features, arity = int(n_features), int(arity)
        if n_features < 1:
            raise ValueError(f"op {name!r}: n_features must be >= 1")
        if arity < 2:
            raise ValueError(f"op {name!r}: add needs at least two inputs")
        super().__init__(name, activation=activation)
        self.n_features = n_features
        self.arity = arity

    @property
    def n_inputs(self) -> int:
        """Feature length of every producer."""
        return self.n_features

    @property
    def n_outputs(self) -> int:
        """Feature length of the sum (same as the inputs)."""
        return self.n_features

    def expected_input_sizes(self) -> Sequence[int]:
        """``arity`` producers, each supplying ``n_features`` features."""
        return (self.n_features,) * self.arity

    def _hash_parts(self) -> Sequence[bytes]:
        return [f"{self.n_features}|{self.arity}".encode()]

    def core(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        """Elementwise-sum the producer column blocks (dtype-preserving)."""
        total = inputs[0]
        for block in inputs[1:]:
            total = total + block
        return total
