"""Partitioning and placement: sharding decisions and op-to-replica maps.

Two placement axes:

* **Within one layer** — :func:`choose_sharding` picks between row sharding
  (:func:`~repro.system.soc.plan_shards`) and K-dimension sharding with
  partial-product accumulation (:func:`~repro.system.soc.plan_k_shards`)
  for a GeMM on an ``n_pes`` cluster.  The decision is **batch-aware**:
  with a calibrated :class:`~repro.compiler.costmodel.SoCCostModel` every
  candidate partition (rows, and each viable K-slice count) is predicted
  at the expected micro-batch width ``n_cols`` — the K-shard reduction and
  the duplicated-input DMA both scale with the batch, so the best plan at
  batch 1 is often not the best plan at batch 32.  Without a model a
  shape heuristic stands in (K-sharding wins when there are too few
  output rows to keep every PE busy).  :func:`expected_batch_width`
  bridges the serving layer: it turns a live
  :class:`~repro.serving.batching.MicroBatcher` (or its replica) into the
  batch width the decisions should be optimised for.
* **Across layers** — :func:`place_graph` assigns each *placeable* op of a
  :class:`~repro.compiler.graph.ModelGraph` to a serving replica using the
  measured :class:`~repro.compiler.costmodel.ReplicaProfile` costs:
  ``min-cost`` sends every op to its cheapest replica, ``balanced`` runs
  greedy list scheduling on predicted finish times so heavy chains spread
  across comparable replicas (and independent DAG branches land on
  different replicas, which is what the pool executor's level-parallel
  dispatch exploits).  Glue ops (split/concat/add) execute host-side and
  are never placed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.compiler.costmodel import ReplicaProfile, SoCCostModel
from repro.compiler.graph import ModelGraph

PLACEMENT_STRATEGIES = ("min-cost", "balanced")


@dataclass(frozen=True)
class FusionDecision:
    """Whether a same-input dense fan-out is fused into one offload.

    Attributes:
        fuse: True when the branches lower as one vertically-stacked GeMM.
        predicted_fused_cycles: cost-model estimate of the stacked offload
            (None when the decision came from the shape heuristic).
        predicted_serial_cycles: cost-model estimate of offloading the
            branches one after the other (None without a model).
    """

    fuse: bool
    predicted_fused_cycles: Optional[float] = None
    predicted_serial_cycles: Optional[float] = None


@dataclass(frozen=True)
class ShardingDecision:
    """How one GeMM layer is split across the PE cluster.

    Attributes:
        strategy: ``"rows"`` or ``"k"``.
        k_shards: K-slice count (1 under row sharding).
        predicted_cycles: cost-model estimate backing the choice (None when
            the decision came from the shape heuristic).
    """

    strategy: str
    k_shards: int = 1
    predicted_cycles: Optional[float] = None


def expected_batch_width(source: Union[int, object]) -> int:
    """Resolve the micro-batch width a sharding decision should assume.

    The serving layer owns the fusing: a compiled plan executes whatever
    column width the :class:`~repro.serving.batching.MicroBatcher` fuses,
    so sharding decisions tuned for single columns mis-predict under load.
    This bridges the two layers without a hard import:

    Args:
        source: either a plain ``int`` batch width, or a serving object —
            a :class:`~repro.serving.scheduler.Replica` (unwrapped to its
            batcher) or a :class:`~repro.serving.batching.MicroBatcher`.
            Batchers report their observed mean fused batch when they have
            served traffic, else their configured ``max_batch`` bound.

    Returns:
        The batch width, always >= 1.

    Raises:
        ValueError: for non-positive widths or objects that carry no
            batching information.
    """
    if hasattr(source, "expected_columns"):  # a Replica or MicroBatcher
        return max(1, int(source.expected_columns()))
    try:
        width = int(source)
    except (TypeError, ValueError):
        raise ValueError(
            f"cannot derive a batch width from {source!r}: pass an int, a "
            f"MicroBatcher or a Replica"
        ) from None
    if width < 1:
        raise ValueError(f"batch width must be >= 1, got {width}")
    return width


def choose_sharding(
    n_rows: int,
    n_inner: int,
    n_cols: int,
    n_pes: int,
    cost_model: Optional[SoCCostModel] = None,
    tile_rows: Optional[int] = None,
) -> ShardingDecision:
    """Pick rows- vs K-sharding for one (M, K, N) GeMM on ``n_pes`` PEs.

    With a calibrated cost model the choice is an argmin over predicted
    pipelined cycles of **every candidate partition** — row sharding and
    each viable K-slice count (2 … ``min(n_pes, n_inner)``) — evaluated at
    the expected batch width ``n_cols`` (see :func:`expected_batch_width`
    for deriving it from a live batcher).  Ties prefer row sharding, then
    fewer K-slices, so the decision is deterministic.

    Args:
        n_rows: output rows M of the GeMM.
        n_inner: inner (reduction) dimension K.
        n_cols: expected batch width N the plan will execute at.
        n_pes: accelerator count of the target cluster.
        cost_model: calibrated predictor; ``None`` falls back to the
            batch-oblivious shape heuristic.
        tile_rows: row-tiling override forwarded to the predictions.

    Returns:
        The winning :class:`ShardingDecision`.

    Raises:
        ValueError: for non-positive GeMM dimensions or PE counts.
    """
    if min(n_rows, n_inner, n_cols) < 1:
        raise ValueError(
            f"GeMM dimensions must be positive, got "
            f"(M, K, N) = ({n_rows}, {n_inner}, {n_cols})"
        )
    if n_pes < 1:
        raise ValueError("n_pes must be >= 1")
    if n_pes == 1 or n_inner < 2:
        predicted = None
        if cost_model is not None:
            predicted = cost_model.predict_gemm(
                n_rows, n_inner, n_cols, n_pes=n_pes, tile_rows=tile_rows
            ).pipelined_cycles
        return ShardingDecision(strategy="rows", k_shards=1, predicted_cycles=predicted)
    max_k = min(n_pes, n_inner)
    if cost_model is not None:
        best = ShardingDecision(
            strategy="rows",
            k_shards=1,
            predicted_cycles=cost_model.predict_gemm(
                n_rows, n_inner, n_cols, n_pes=n_pes, tile_rows=tile_rows
            ).pipelined_cycles,
        )
        for k_shards in range(2, max_k + 1):
            predicted = cost_model.predict_gemm(
                n_rows, n_inner, n_cols, n_pes=n_pes, k_shards=k_shards,
                tile_rows=tile_rows,
            ).pipelined_cycles
            if predicted < best.predicted_cycles:
                best = ShardingDecision(
                    strategy="k", k_shards=k_shards, predicted_cycles=predicted
                )
        return best
    # heuristic: rows-sharding starves PEs when M < n_pes (some get empty
    # shards) — split K instead whenever it is wide enough to share.  The
    # heuristic is batch-oblivious by construction; calibrate a cost model
    # for batch-aware decisions.
    if n_rows < n_pes and n_inner >= n_pes:
        return ShardingDecision(strategy="k", k_shards=max_k)
    return ShardingDecision(strategy="rows", k_shards=1)


def sharding_signature(
    shapes: Sequence[Tuple[int, int]],
    n_cols: int,
    n_pes: int,
    cost_model: Optional[SoCCostModel] = None,
    tile_rows: Optional[int] = None,
) -> Tuple[Tuple[str, int], ...]:
    """Per-shape ``(strategy, k_shards)`` decisions at one batch width.

    The adaptive replanner's flip detector: two signatures of the same
    ``(rows, inner)`` shape list taken at different widths (or under
    different cost models) are equal exactly when recompiling would
    reproduce the same partitioning — so a plan only recompiles when an
    observed width (or a refit) actually crosses a sharding flip point,
    never on width jitter within a region.

    Args:
        shapes: the dense ``(n_rows, n_inner)`` shapes of a plan's offload
            steps, in step order.
        n_cols: the batch width to evaluate the decisions at.
        n_pes: accelerator count of the target cluster.
        cost_model: calibrated predictor forwarded to
            :func:`choose_sharding`.
        tile_rows: row-tiling override forwarded to the predictions.

    Returns:
        A tuple of ``(strategy, k_shards)`` pairs, one per shape.
    """
    return tuple(
        (decision.strategy, decision.k_shards)
        for decision in (
            choose_sharding(
                rows, inner, n_cols, n_pes, cost_model=cost_model, tile_rows=tile_rows
            )
            for rows, inner in shapes
        )
    )


def choose_fusion(
    branch_shapes,
    fused_inner: int,
    n_cols: int,
    n_pes: int,
    cost_model: Optional[SoCCostModel] = None,
    tile_rows: Optional[int] = None,
    padded: bool = False,
) -> FusionDecision:
    """Decide whether a same-input dense fan-out fuses into one offload.

    Independent dense branches reading the same buffer can lower as a
    single vertically-stacked GeMM — one offload's driver/DMA cost instead
    of one per branch, with the output split back into branch rows on the
    host.  Whether that wins is a cost question: a plain fan-out stacks
    the weights for free, but split heads embed block-diagonally into the
    full source width and the zero padding is real streamed work.

    With a calibrated cost model the decision is
    :meth:`~repro.compiler.costmodel.SoCCostModel.predict_fanout` — fused
    and sequential each priced at their best sharding, at the expected
    batch width.  Without one the decision is **no fusion**: stacking
    changes which shardings are reachable (and padded split-head stacks
    stream zero columns as real work), so fusing is only worth it when a
    measured model predicts it — callers who want it anyway force it with
    ``compile_for_soc(..., fuse="always")``.

    Args:
        branch_shapes: per-branch ``(n_rows, n_inner)`` GeMM shapes.
        fused_inner: reduction width of the stacked offload.
        n_cols: expected batch width.
        n_pes: accelerator count of the target cluster.
        cost_model: calibrated predictor; ``None`` falls back to the
            heuristic.
        tile_rows: row-tiling override forwarded to the predictions.
        padded: True when branches embed block-diagonally (split heads)
            rather than stacking their exact weights (plain fan-out).

    Returns:
        The :class:`FusionDecision`.

    Raises:
        ValueError: for empty branch lists or non-positive dimensions.
    """
    branch_shapes = list(branch_shapes)
    if len(branch_shapes) < 2:
        raise ValueError("fusion needs at least two branches")
    for rows, inner in branch_shapes:
        if min(rows, inner) < 1:
            raise ValueError(
                f"branch dimensions must be positive, got ({rows}, {inner})"
            )
    if min(fused_inner, n_cols) < 1:
        raise ValueError("fused_inner and n_cols must be positive")
    if n_pes < 1:
        raise ValueError("n_pes must be >= 1")
    if cost_model is None:
        return FusionDecision(fuse=False)
    prediction = cost_model.predict_fanout(
        branch_shapes, fused_inner, n_cols, n_pes=n_pes, tile_rows=tile_rows
    )
    return FusionDecision(
        fuse=prediction.fuse,
        predicted_fused_cycles=prediction.fused_cycles,
        predicted_serial_cycles=prediction.serial_cycles,
    )


@dataclass
class Placement:
    """An op-to-replica assignment with its predicted per-replica load.

    Attributes:
        assignments: ``{op_name: replica_name}`` (placeable ops only).
        predicted_op_s: predicted service seconds per op.
        predicted_replica_s: predicted total seconds per replica.
        strategy: the placement strategy that produced it.
    """

    assignments: Dict[str, str] = field(default_factory=dict)
    predicted_op_s: Dict[str, float] = field(default_factory=dict)
    predicted_replica_s: Dict[str, float] = field(default_factory=dict)
    strategy: str = "min-cost"

    @property
    def predicted_total_s(self) -> float:
        """Summed predicted service seconds across every placed op."""
        return sum(self.predicted_op_s.values())


def place_graph(
    graph: ModelGraph,
    profiles: Dict[str, ReplicaProfile],
    strategy: str = "min-cost",
) -> Placement:
    """Assign every placeable op of ``graph`` to a replica by calibrated cost.

    Only live, *placeable* ops (dense layers — see
    :attr:`~repro.compiler.ops.GraphOp.placeable`) receive assignments;
    glue ops execute host-side and dead branches are pruned by the
    schedule.  ``min-cost`` routes each op to the replica with the lowest
    predicted service time for that op's arithmetic size; ``balanced``
    additionally tracks accumulated predicted load per replica and
    greedily minimises each op's predicted finish time, so pools of
    comparable replicas share deep chains — and independent branches of a
    DAG spread across replicas instead of hot-spotting the cheapest one.

    Args:
        graph: the model to place.
        profiles: measured per-replica service profiles.
        strategy: one of :data:`PLACEMENT_STRATEGIES`.

    Returns:
        The :class:`Placement` with assignments and predicted loads.

    Raises:
        ValueError: on empty profiles or unknown strategies.
    """
    if not profiles:
        raise ValueError("placement needs at least one replica profile")
    if strategy not in PLACEMENT_STRATEGIES:
        raise ValueError(
            f"unknown placement strategy {strategy!r} "
            f"(choose from {PLACEMENT_STRATEGIES})"
        )
    placement = Placement(strategy=strategy)
    accumulated: Dict[str, float] = {name: 0.0 for name in profiles}
    for step in graph.schedule():
        op = step.op
        if not op.placeable:
            continue
        costs = {
            name: profile.predict_request_s(op.macs)
            for name, profile in profiles.items()
        }
        if strategy == "min-cost":
            best = min(costs, key=lambda name: (costs[name], name))
        else:
            best = min(
                costs, key=lambda name: (accumulated[name] + costs[name], name)
            )
        placement.assignments[op.name] = best
        placement.predicted_op_s[op.name] = costs[best]
        accumulated[best] += costs[best]
    placement.predicted_replica_s = {
        name: load for name, load in accumulated.items() if load > 0.0
    }
    return placement
