"""Partitioning and placement: sharding decisions and op-to-replica maps.

Two placement axes:

* **Within one layer** — :func:`choose_sharding` picks between row sharding
  (:func:`~repro.system.soc.plan_shards`) and K-dimension sharding with
  partial-product accumulation (:func:`~repro.system.soc.plan_k_shards`)
  for a GeMM on an ``n_pes`` cluster, by predicted pipelined cycles when a
  calibrated :class:`~repro.compiler.costmodel.SoCCostModel` is available
  and by a shape heuristic otherwise (K-sharding wins when there are too
  few output rows to keep every PE busy).
* **Across layers** — :func:`place_graph` assigns each op of a
  :class:`~repro.compiler.graph.ModelGraph` to a serving replica using the
  measured :class:`~repro.compiler.costmodel.ReplicaProfile` costs:
  ``min-cost`` sends every op to its cheapest replica, ``balanced`` runs
  greedy list scheduling on predicted finish times so heavy chains spread
  across comparable replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.compiler.costmodel import ReplicaProfile, SoCCostModel
from repro.compiler.graph import ModelGraph

PLACEMENT_STRATEGIES = ("min-cost", "balanced")


@dataclass(frozen=True)
class ShardingDecision:
    """How one GeMM layer is split across the PE cluster.

    Attributes:
        strategy: ``"rows"`` or ``"k"``.
        k_shards: K-slice count (1 under row sharding).
        predicted_cycles: cost-model estimate backing the choice (None when
            the decision came from the shape heuristic).
    """

    strategy: str
    k_shards: int = 1
    predicted_cycles: Optional[float] = None


def choose_sharding(
    n_rows: int,
    n_inner: int,
    n_cols: int,
    n_pes: int,
    cost_model: Optional[SoCCostModel] = None,
    tile_rows: Optional[int] = None,
) -> ShardingDecision:
    """Pick rows- vs K-sharding for one (M, K, N) GeMM on ``n_pes`` PEs."""
    if min(n_rows, n_inner, n_cols) < 1:
        raise ValueError(
            f"GeMM dimensions must be positive, got "
            f"(M, K, N) = ({n_rows}, {n_inner}, {n_cols})"
        )
    if n_pes < 1:
        raise ValueError("n_pes must be >= 1")
    if n_pes == 1 or n_inner < 2:
        predicted = None
        if cost_model is not None:
            predicted = cost_model.predict_gemm(
                n_rows, n_inner, n_cols, n_pes=n_pes, tile_rows=tile_rows
            ).pipelined_cycles
        return ShardingDecision(strategy="rows", k_shards=1, predicted_cycles=predicted)
    k_shards = min(n_pes, n_inner)
    if cost_model is not None:
        rows_prediction = cost_model.predict_gemm(
            n_rows, n_inner, n_cols, n_pes=n_pes, tile_rows=tile_rows
        )
        k_prediction = cost_model.predict_gemm(
            n_rows, n_inner, n_cols, n_pes=n_pes, k_shards=k_shards,
            tile_rows=tile_rows,
        )
        if k_prediction.pipelined_cycles < rows_prediction.pipelined_cycles:
            return ShardingDecision(
                strategy="k",
                k_shards=k_shards,
                predicted_cycles=k_prediction.pipelined_cycles,
            )
        return ShardingDecision(
            strategy="rows",
            k_shards=1,
            predicted_cycles=rows_prediction.pipelined_cycles,
        )
    # heuristic: rows-sharding starves PEs when M < n_pes (some get empty
    # shards) — split K instead whenever it is wide enough to share
    if n_rows < n_pes and n_inner >= n_pes:
        return ShardingDecision(strategy="k", k_shards=k_shards)
    return ShardingDecision(strategy="rows", k_shards=1)


@dataclass
class Placement:
    """An op-to-replica assignment with its predicted per-replica load.

    Attributes:
        assignments: ``{op_name: replica_name}``.
        predicted_op_s: predicted service seconds per op.
        predicted_replica_s: predicted total seconds per replica.
        strategy: the placement strategy that produced it.
    """

    assignments: Dict[str, str] = field(default_factory=dict)
    predicted_op_s: Dict[str, float] = field(default_factory=dict)
    predicted_replica_s: Dict[str, float] = field(default_factory=dict)
    strategy: str = "min-cost"

    @property
    def predicted_total_s(self) -> float:
        return sum(self.predicted_op_s.values())


def place_graph(
    graph: ModelGraph,
    profiles: Dict[str, ReplicaProfile],
    strategy: str = "min-cost",
) -> Placement:
    """Assign every op of ``graph`` to a replica by calibrated cost.

    ``min-cost`` routes each op to the replica with the lowest predicted
    service time for that op's arithmetic size.  ``balanced`` additionally
    tracks accumulated predicted load per replica and greedily minimises
    each op's predicted finish time, so pools of comparable replicas share
    a deep chain instead of hot-spotting the single cheapest one.
    """
    if not profiles:
        raise ValueError("placement needs at least one replica profile")
    if strategy not in PLACEMENT_STRATEGIES:
        raise ValueError(
            f"unknown placement strategy {strategy!r} "
            f"(choose from {PLACEMENT_STRATEGIES})"
        )
    placement = Placement(strategy=strategy)
    accumulated: Dict[str, float] = {name: 0.0 for name in profiles}
    for op in graph.topological_order():
        costs = {
            name: profile.predict_request_s(op.macs)
            for name, profile in profiles.items()
        }
        if strategy == "min-cost":
            best = min(costs, key=lambda name: (costs[name], name))
        else:
            best = min(
                costs, key=lambda name: (accumulated[name] + costs[name], name)
            )
        placement.assignments[op.name] = best
        placement.predicted_op_s[op.name] = costs[best]
        accumulated[best] += costs[best]
    placement.predicted_replica_s = {
        name: load for name, load in accumulated.items() if load > 0.0
    }
    return placement
