"""Model graph IR: a content-hashable DAG of compiler ops.

:class:`ModelGraph` captures a whole model — a DAG of
:class:`~repro.compiler.ops.GraphOp` nodes (dense layers plus the
split/concat/add glue that fan-out and fan-in branches) and the
activation shapes flowing between them — as the unit the compiler plans,
places and caches.  Builders cover the model sources in the repo: raw
weight-matrix stacks (:meth:`ModelGraph.from_matrices`) and
:class:`~repro.core.nn.MLP` models (:meth:`ModelGraph.from_mlp`) produce
linear chains; branching models (residual MLPs, multi-head readouts) are
wired explicitly through :meth:`ModelGraph.add_op` or the eval builders
in :mod:`repro.eval.workloads`.

Both execution targets (:func:`~repro.compiler.execute.compile_for_soc`
and :func:`~repro.compiler.execute.compile_for_pool`) lower the graph's
deterministic **topological schedule** (:meth:`ModelGraph.schedule`):
dead branches — ops the designated output never consumes — are pruned at
compile time, and every schedule step carries the buffers whose last
consumer it is, so executors track liveness instead of keeping every
intermediate alive.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.compiler.ops import DenseOp, GraphOp
from repro.core.nn import MLP

#: Buffer name of the graph input in :meth:`ModelGraph.schedule` liveness
#: (root ops read it; it is released after its last root consumes it).
INPUT_BUFFER = "__input__"


class GraphError(ValueError):
    """Raised for malformed graphs (cycles, shape breaks, duplicate names)."""


@dataclass(frozen=True)
class ScheduleStep:
    """One step of a graph's deterministic topological schedule.

    Attributes:
        op: the node to execute.
        inputs: producer op names in edge order (empty = the op is a root
            and reads the graph input).
        release: buffer names (op names, or :data:`INPUT_BUFFER`) whose
            last consumer is this step — executors free them afterwards.
    """

    op: GraphOp
    inputs: Tuple[str, ...]
    release: Tuple[str, ...]


class ModelGraph:
    """A DAG of compiler ops with content hashing and topological order.

    Attributes:
        name: human-readable model label (not part of the content hash).
    """

    def __init__(self, name: str = "model"):
        self.name = str(name)
        self._ops: Dict[str, GraphOp] = {}
        self._inputs: Dict[str, Tuple[str, ...]] = {}
        self._output: Optional[str] = None
        self._order: Optional[List[str]] = None
        self._schedule: Optional[List[ScheduleStep]] = None
        self._hash: Optional[str] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_op(self, op: GraphOp, inputs: Sequence[str] = ()) -> GraphOp:
        """Add an op fed by the named producer ops (empty = graph input).

        Edge order is semantic (a :class:`~repro.compiler.ops.ConcatOp`
        glues producers in wiring order) and each op's wiring contract
        (edge count and per-edge feature sizes) is checked immediately;
        the DAG property is revalidated lazily on the next traversal.

        Args:
            op: the node to add (its ``name`` must be unique in the graph).
            inputs: names of already-added producer ops, in edge order.
                An empty sequence marks a root fed by the graph input.

        Returns:
            The op, for chaining.

        Raises:
            GraphError: on duplicate names, unknown producers, edge-count
                or feature-size mismatches.
        """
        if op.name in self._ops:
            raise GraphError(f"duplicate op name {op.name!r}")
        if op.name == INPUT_BUFFER:
            raise GraphError(f"op name {INPUT_BUFFER!r} is reserved")
        inputs = tuple(str(name) for name in inputs)
        for producer in inputs:
            if producer not in self._ops:
                raise GraphError(
                    f"op {op.name!r} depends on unknown op {producer!r}"
                )
        if inputs:
            try:
                op.validate_inputs(
                    [self._ops[producer].n_outputs for producer in inputs]
                )
            except ValueError as exc:
                raise GraphError(str(exc)) from None
        elif len(op.expected_input_sizes()) != 1:
            raise GraphError(
                f"op {op.name!r} ({op.kind}) takes "
                f"{len(op.expected_input_sizes())} inputs and cannot be a "
                f"root fed by the single graph input"
            )
        self._ops[op.name] = op
        self._inputs[op.name] = inputs
        self._order = None
        self._schedule = None
        self._hash = None
        return op

    def set_output(self, name: str) -> None:
        """Designate the op whose result is the graph output.

        Graphs with exactly one sink resolve their output automatically;
        call this for multi-sink graphs (or to read an intermediate node,
        leaving the rest as dead branches the executors prune).

        Raises:
            GraphError: when ``name`` is not an op of this graph.
        """
        if name not in self._ops:
            raise GraphError(f"cannot set output to unknown op {name!r}")
        self._output = str(name)
        self._schedule = None
        self._hash = None

    @classmethod
    def from_matrices(
        cls,
        matrices: Sequence[np.ndarray],
        biases: Optional[Sequence[Optional[np.ndarray]]] = None,
        activations: Optional[Sequence[str]] = None,
        name: str = "model",
    ) -> "ModelGraph":
        """Build a linear chain from a stack of (n_out, n_in) matrices.

        Args:
            matrices: per-layer weight matrices, input to output.
            biases: optional per-layer bias vectors (``None`` entries skip
                the bias); must match ``matrices`` in length when given.
            activations: optional per-layer activation names; must match
                ``matrices`` in length when given.
            name: model label (not part of the content hash).

        Returns:
            A chain :class:`ModelGraph` with one ``layer{i}`` op per matrix.

        Raises:
            GraphError: on empty stacks, length mismatches or shape breaks.
        """
        if not matrices:
            raise GraphError("a model graph needs at least one op")
        if biases is not None and len(biases) != len(matrices):
            raise GraphError("biases must match the number of layers")
        if activations is not None and len(activations) != len(matrices):
            raise GraphError("activations must match the number of layers")
        graph = cls(name=name)
        previous: Tuple[str, ...] = ()
        for index, weights in enumerate(matrices):
            op = DenseOp(
                f"layer{index}",
                weights,
                bias=biases[index] if biases is not None else None,
                activation=activations[index] if activations is not None else "identity",
            )
            graph.add_op(op, inputs=previous)
            previous = (op.name,)
        return graph

    @classmethod
    def from_mlp(cls, model: MLP, name: str = "mlp") -> "ModelGraph":
        """Capture an :class:`~repro.core.nn.MLP` as a graph (one op per layer)."""
        return cls.from_matrices(
            [layer.weights for layer in model.layers],
            biases=[layer.biases for layer in model.layers],
            activations=[layer.activation for layer in model.layers],
            name=name,
        )

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def topological_order(self) -> List[GraphOp]:
        """Ops in dependency order, deterministically.

        Kahn's algorithm with name-sorted ready sets: the order depends
        only on the graph's nodes and edges, never on insertion order —
        which is what keeps :meth:`graph_hash` (and therefore the plan
        cache) stable when the same DAG is built in a different order.

        Raises:
            GraphError: when the graph contains a dependency cycle.
        """
        if self._order is None:
            remaining = {name: set(deps) for name, deps in self._inputs.items()}
            order: List[str] = []
            while remaining:
                ready = sorted(
                    name for name, deps in remaining.items() if not deps
                )
                if not ready:
                    raise GraphError(
                        f"graph {self.name!r} has a dependency cycle among "
                        f"{sorted(remaining)}"
                    )
                for name in ready:
                    order.append(name)
                    del remaining[name]
                for deps in remaining.values():
                    deps.difference_update(ready)
            self._order = order
        return [self._ops[name] for name in self._order]

    def is_chain(self) -> bool:
        """True when the graph is one linear op chain (fan-in/out <= 1)."""
        consumers: Dict[str, int] = {name: 0 for name in self._ops}
        roots = 0
        for name, deps in self._inputs.items():
            if len(deps) > 1:
                return False
            if not deps:
                roots += 1
            for producer in deps:
                consumers[producer] += 1
        return roots == 1 and all(count <= 1 for count in consumers.values())

    def sinks(self) -> List[str]:
        """Names of ops no other op consumes, name-sorted."""
        consumed: Set[str] = set()
        for deps in self._inputs.values():
            consumed.update(deps)
        return sorted(name for name in self._ops if name not in consumed)

    def output_name(self) -> str:
        """The designated output op's name.

        Defaults to the unique sink; multi-sink graphs must designate one
        with :meth:`set_output`.

        Raises:
            GraphError: on empty graphs, or multi-sink graphs with no
                explicit output.
        """
        if self._output is not None:
            return self._output
        sinks = self.sinks()
        if not sinks:
            raise GraphError(f"graph {self.name!r} has no ops")
        if len(sinks) > 1:
            raise GraphError(
                f"graph {self.name!r} has multiple sinks {sinks}; designate "
                f"one with set_output()"
            )
        return sinks[0]

    def live_op_names(self) -> Set[str]:
        """Names of ops the designated output transitively depends on."""
        live: Set[str] = set()
        frontier = [self.output_name()]
        while frontier:
            name = frontier.pop()
            if name in live:
                continue
            live.add(name)
            frontier.extend(self._inputs[name])
        return live

    def schedule(self) -> List[ScheduleStep]:
        """The deterministic topological schedule both executors lower.

        Dead ops (never consumed by the designated output) are pruned;
        each step records the buffers whose **last consumer** it is, so an
        executor frees intermediates as branches retire instead of keeping
        the whole DAG's activations resident.  Root steps read the graph
        input (buffer :data:`INPUT_BUFFER`); every live root must agree on
        the input feature length.

        The computed schedule is cached (invalidated by :meth:`add_op` /
        :meth:`set_output`); callers receive a fresh list over the shared
        immutable steps.

        Raises:
            GraphError: on cycles, unresolved outputs or root input-length
                disagreements.
        """
        if self._schedule is not None:
            return list(self._schedule)
        live = self.live_op_names()
        order = [op for op in self.topological_order() if op.name in live]
        root_sizes = {
            op.name: op.n_inputs for op in order if not self._inputs[op.name]
        }
        if len(set(root_sizes.values())) > 1:
            raise GraphError(
                f"graph {self.name!r} roots disagree on the input feature "
                f"length: {root_sizes}"
            )
        output = self.output_name()
        last_use: Dict[str, int] = {}
        for index, op in enumerate(order):
            for dep in self._inputs[op.name] or (INPUT_BUFFER,):
                last_use[dep] = index
        steps: List[ScheduleStep] = []
        for index, op in enumerate(order):
            deps = self._inputs[op.name] or (INPUT_BUFFER,)
            release = tuple(sorted(
                {dep for dep in deps if last_use[dep] == index and dep != output}
            ))
            steps.append(
                ScheduleStep(op=op, inputs=self._inputs[op.name], release=release)
            )
        self._schedule = steps
        return list(steps)

    def op(self, name: str) -> GraphOp:
        """The op registered under ``name`` (raises ``KeyError`` if absent)."""
        return self._ops[name]

    def op_inputs(self, name: str) -> Tuple[str, ...]:
        """Producer names feeding op ``name``, in edge order."""
        return self._inputs[name]

    def __len__(self) -> int:
        """Number of ops in the graph (dead branches included)."""
        return len(self._ops)

    def __iter__(self):
        """Iterate ops in deterministic topological order."""
        return iter(self.topological_order())

    @property
    def n_inputs(self) -> int:
        """Feature length of the graph input (shared by every live root)."""
        live = self.live_op_names()
        for op in self.topological_order():
            if op.name in live and not self._inputs[op.name]:
                return op.n_inputs
        raise GraphError(f"graph {self.name!r} has no root ops")

    @property
    def n_outputs(self) -> int:
        """Feature length of the designated output op."""
        return self._ops[self.output_name()].n_outputs

    # ------------------------------------------------------------------ #
    # content hash
    # ------------------------------------------------------------------ #
    def graph_hash(self) -> str:
        """Content hash over ops *and* topology (ordered edges by position).

        Two graphs with the same layer bytes but different wiring hash
        differently, edge **order** counts (concat fan-ins are ordered),
        and the *resolved* output designation is folded in — explicitly
        setting the sole sink hashes the same as relying on the default,
        so redundant ``set_output`` calls never defeat the plan cache;
        neither do model renames or insertion-order changes.  Multi-sink
        graphs with no designated output hash on structure alone (they
        cannot execute until one is designated).
        """
        if self._hash is None:
            order = self.topological_order()
            position = {op.name: index for index, op in enumerate(order)}
            digest = hashlib.sha1()
            for op in order:
                digest.update(op.op_hash().encode())
                for producer in self._inputs[op.name]:
                    digest.update(str(position[producer]).encode())
                    digest.update(b",")
                digest.update(b"|")
            try:
                output = self.output_name()
            except GraphError:
                output = None
            if output is not None:
                digest.update(f"out:{position[output]}".encode())
            self._hash = digest.hexdigest()
        return self._hash

    # ------------------------------------------------------------------ #
    # reference execution
    # ------------------------------------------------------------------ #
    def reference_forward(
        self,
        columns: np.ndarray,
        matmul: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None,
    ) -> np.ndarray:
        """Direct per-op execution of the schedule (the compiler oracle).

        Executes the same pruned topological schedule the plan executors
        lower, but inline: dense products through ``matmul`` (exact
        ``weights @ columns`` by default — pass a backend's ``matmul`` to
        oracle a compiled plan on that backend), glue ops as plain NumPy.

        Args:
            columns: ``(n_inputs,)`` vector or ``(n_inputs, batch)`` block.
            matmul: optional ``(weights, columns) -> product`` override
                for dense ops.

        Returns:
            The designated output's ``(n_outputs, batch)`` column block.
        """
        out = np.asarray(columns, dtype=float)
        if out.ndim == 1:
            out = out[:, None]
        buffers: Dict[str, np.ndarray] = {INPUT_BUFFER: out}
        output = self.output_name()
        for step in self.schedule():
            sources = [buffers[name] for name in step.inputs or (INPUT_BUFFER,)]
            op = step.op
            if matmul is not None and isinstance(op, DenseOp):
                result = op.finish(matmul(op.weights, sources[0]))
            else:
                result = op.apply(sources)
            buffers[op.name] = result
            for name in step.release:
                del buffers[name]
        return buffers[output]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ModelGraph {self.name!r} ops={len(self._ops)} "
            f"hash={self.graph_hash()[:10]}>"
        )
