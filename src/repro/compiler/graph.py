"""Model graph IR: a content-hashable DAG of dense ops.

:class:`ModelGraph` captures a whole model — the chain (or DAG) of
:class:`~repro.compiler.ops.DenseOp` nodes and the activation shapes
flowing between them — as the unit the compiler plans, places and caches.
Builders cover the two model sources in the repo: raw weight-matrix stacks
(:meth:`ModelGraph.from_matrices`) and :class:`~repro.core.nn.MLP` models
(:meth:`ModelGraph.from_mlp`), both producing linear chains, which is what
the execution targets lower today; the IR itself stores explicit edges and
topologically sorts, so branching graphs are representable and rejected
only at lowering time.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compiler.ops import DenseOp
from repro.core.nn import MLP


class GraphError(ValueError):
    """Raised for malformed graphs (cycles, shape breaks, duplicate names)."""


class ModelGraph:
    """A DAG of dense ops with content hashing and topological order.

    Attributes:
        name: human-readable model label (not part of the content hash).
    """

    def __init__(self, name: str = "model"):
        self.name = str(name)
        self._ops: Dict[str, DenseOp] = {}
        self._inputs: Dict[str, Tuple[str, ...]] = {}
        self._order: Optional[List[str]] = None
        self._hash: Optional[str] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_op(self, op: DenseOp, inputs: Sequence[str] = ()) -> DenseOp:
        """Add an op fed by the named producer ops (empty = graph input).

        Shapes are checked against single-producer edges immediately; the
        DAG property is revalidated lazily on the next traversal.
        """
        if op.name in self._ops:
            raise GraphError(f"duplicate op name {op.name!r}")
        inputs = tuple(str(name) for name in inputs)
        for producer in inputs:
            if producer not in self._ops:
                raise GraphError(
                    f"op {op.name!r} depends on unknown op {producer!r}"
                )
        if len(inputs) == 1:
            producer_op = self._ops[inputs[0]]
            if producer_op.n_outputs != op.n_inputs:
                raise GraphError(
                    f"shape break: {producer_op.name!r} produces "
                    f"{producer_op.n_outputs} features but {op.name!r} "
                    f"consumes {op.n_inputs}"
                )
        self._ops[op.name] = op
        self._inputs[op.name] = inputs
        self._order = None
        self._hash = None
        return op

    @classmethod
    def from_matrices(
        cls,
        matrices: Sequence[np.ndarray],
        biases: Optional[Sequence[Optional[np.ndarray]]] = None,
        activations: Optional[Sequence[str]] = None,
        name: str = "model",
    ) -> "ModelGraph":
        """Build a linear chain from a stack of (n_out, n_in) matrices."""
        if not matrices:
            raise GraphError("a model graph needs at least one op")
        if biases is not None and len(biases) != len(matrices):
            raise GraphError("biases must match the number of layers")
        if activations is not None and len(activations) != len(matrices):
            raise GraphError("activations must match the number of layers")
        graph = cls(name=name)
        previous: Tuple[str, ...] = ()
        for index, weights in enumerate(matrices):
            op = DenseOp(
                f"layer{index}",
                weights,
                bias=biases[index] if biases is not None else None,
                activation=activations[index] if activations is not None else "identity",
            )
            graph.add_op(op, inputs=previous)
            previous = (op.name,)
        return graph

    @classmethod
    def from_mlp(cls, model: MLP, name: str = "mlp") -> "ModelGraph":
        """Capture an :class:`~repro.core.nn.MLP` as a graph (one op per layer)."""
        return cls.from_matrices(
            [layer.weights for layer in model.layers],
            biases=[layer.biases for layer in model.layers],
            activations=[layer.activation for layer in model.layers],
            name=name,
        )

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def topological_order(self) -> List[DenseOp]:
        """Ops in dependency order (deterministic; raises on cycles)."""
        if self._order is None:
            remaining = {name: set(deps) for name, deps in self._inputs.items()}
            order: List[str] = []
            while remaining:
                ready = sorted(
                    name for name, deps in remaining.items() if not deps
                )
                if not ready:
                    raise GraphError(
                        f"graph {self.name!r} has a dependency cycle among "
                        f"{sorted(remaining)}"
                    )
                for name in ready:
                    order.append(name)
                    del remaining[name]
                for deps in remaining.values():
                    deps.difference_update(ready)
            self._order = order
        return [self._ops[name] for name in self._order]

    def is_chain(self) -> bool:
        """True when the graph is one linear op chain (fan-in/out <= 1)."""
        consumers: Dict[str, int] = {name: 0 for name in self._ops}
        roots = 0
        for name, deps in self._inputs.items():
            if len(deps) > 1:
                return False
            if not deps:
                roots += 1
            for producer in deps:
                consumers[producer] += 1
        return roots == 1 and all(count <= 1 for count in consumers.values())

    def op(self, name: str) -> DenseOp:
        return self._ops[name]

    def op_inputs(self, name: str) -> Tuple[str, ...]:
        return self._inputs[name]

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self):
        return iter(self.topological_order())

    @property
    def n_inputs(self) -> int:
        return self.topological_order()[0].n_inputs

    @property
    def n_outputs(self) -> int:
        return self.topological_order()[-1].n_outputs

    # ------------------------------------------------------------------ #
    # content hash
    # ------------------------------------------------------------------ #
    def graph_hash(self) -> str:
        """Content hash over ops *and* topology (edges by op content).

        Two graphs with the same layer bytes but different wiring hash
        differently; the model name does not contribute, so renaming a
        model never defeats the plan cache.
        """
        if self._hash is None:
            order = self.topological_order()
            position = {op.name: index for index, op in enumerate(order)}
            digest = hashlib.sha1()
            for op in order:
                digest.update(op.op_hash().encode())
                for producer in sorted(self._inputs[op.name]):
                    digest.update(str(position[producer]).encode())
                digest.update(b"|")
            self._hash = digest.hexdigest()
        return self._hash

    # ------------------------------------------------------------------ #
    # reference execution
    # ------------------------------------------------------------------ #
    def reference_forward(self, columns: np.ndarray) -> np.ndarray:
        """Exact float forward pass of a chain graph (the compiler oracle)."""
        if not self.is_chain():
            raise GraphError("reference_forward supports chain graphs only")
        out = np.asarray(columns, dtype=float)
        if out.ndim == 1:
            out = out[:, None]
        for op in self.topological_order():
            out = op.finish(op.weights @ out)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ModelGraph {self.name!r} ops={len(self._ops)} "
            f"hash={self.graph_hash()[:10]}>"
        )
