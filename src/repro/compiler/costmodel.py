"""Calibrated cost model: predicted cycles/seconds per tile, plan, replica.

Two calibration sources feed the compiler's placement decisions:

* **SoC side** — :meth:`SoCCostModel.calibrate` runs a handful of probe
  GeMMs through :meth:`~repro.system.soc.PhotonicSoC.run_tiled_gemm` and
  fits linear models of the measured ``WorkloadReport.pipeline`` phase
  cycles (DMA cycles against words/bursts/transfers moved, compute cycles
  against per-tile shape features, one fit per device type).  The fitted
  model predicts per-tile, per-stream and whole-plan cycles for both
  row-sharded and K-sharded partitions without running the simulator.
* **Serving side** — :func:`profile_engine` / :func:`profile_replicas`
  measure each replica engine's wall-clock service time (and, for
  :class:`~repro.serving.engine.SoCGemmEngine` replicas, the simulated
  ``offload_cycles`` per request).  :func:`replica_cost_fn` turns the
  profiles into the scoring callable the serving scheduler's
  ``cost-based`` routing policy consumes.

Before any calibration data exists, :meth:`SoCCostModel.from_hints` seeds
an uncalibrated prior model from a backend's static
:meth:`~repro.core.backends.ExecutionBackend.cost_hint`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.serving.errors import ServingError
from repro.system.soc import plan_k_shards, plan_shards

#: Probe shapes (M, K, N) used by default calibration runs.
DEFAULT_PROBE_SHAPES = (
    (8, 8, 8),
    (16, 8, 8),
    (8, 16, 8),
    (8, 8, 16),
    (16, 16, 8),
    (12, 16, 16),
    (16, 16, 16),
)


def _tile_dma_features(
    rows: int, inner: int, cols: int, load_input: bool, words_per_burst: int
) -> np.ndarray:
    """DMA-phase features of one tile: [words, bursts, transfers].

    Matches the DMA engine's burst model: every transfer's first word per
    burst pays the full access latency, the rest stream one word/cycle —
    so measured DMA cycles are exactly linear in these features.
    """
    blocks = [rows * inner, rows * cols]  # weights in, outputs back
    if load_input:
        blocks.append(inner * cols)
    words = sum(blocks)
    bursts = sum(-(-block // words_per_burst) for block in blocks)
    return np.array([words, bursts, len(blocks)], dtype=float)

def _tile_compute_features(rows: int, inner: int, cols: int) -> np.ndarray:
    """Compute-phase features of one tile: [1, cols, macs, rows*inner].

    Covers both attached device types: the photonic PE's latency is affine
    in the streamed columns, the MAC array's in the MAC count.
    """
    return np.array([1.0, cols, rows * inner * cols, rows * inner], dtype=float)


def _shard_features(
    shape: Tuple[int, int, int],
    n_pes: int,
    device_types: Sequence[str],
    words_per_burst: int,
    tile_rows: Optional[int] = None,
) -> Tuple[np.ndarray, Dict[str, np.ndarray], int]:
    """Summed regression features of one row-sharded GeMM shape.

    Rebuilds the exact shard streams ``run_tiled_gemm`` would execute (via
    ``plan_shards``) and sums each tile's DMA and compute features, so a
    measured ``WorkloadReport.pipeline`` can be regressed against them.

    Returns:
        ``(dma_feature, per_device_compute_features, n_streams)`` where
        ``n_streams`` counts the PEs that received at least one tile.
    """
    n_rows, n_inner, n_cols = shape
    plans = plan_shards(n_rows, n_inner, n_cols, n_pes, 0, 0, 0, tile_rows=tile_rows)
    dma_feature = np.zeros(3)
    per_device: Dict[str, np.ndarray] = {}
    for device, descriptors in zip(device_types, plans):
        for descriptor in descriptors:
            dma_feature += _tile_dma_features(
                descriptor.rows,
                descriptor.inner,
                descriptor.cols,
                descriptor.load_input,
                words_per_burst,
            )
            per_device.setdefault(device, np.zeros(4))
            per_device[device] += _tile_compute_features(
                descriptor.rows, descriptor.inner, descriptor.cols
            )
    n_streams = sum(1 for descriptors in plans if descriptors)
    return dma_feature, per_device, n_streams


def _solve_phase_fits(
    dma_rows: List[np.ndarray],
    dma_targets: List[float],
    host_rows: List[List[float]],
    host_targets: List[float],
    compute_rows: Dict[str, List[np.ndarray]],
    compute_targets: Dict[str, List[float]],
    device_types: Sequence[str],
) -> Tuple[np.ndarray, np.ndarray, Dict[str, np.ndarray]]:
    """Least-squares solve of the three phase fits (DMA, host, compute).

    Shared by boot-time :meth:`SoCCostModel.calibrate` and online
    :meth:`SoCCostModel.refit` so the two paths cannot diverge: the same
    probe set always yields the same coefficients regardless of which
    entry point fitted them.
    """
    dma_coeffs, *_ = np.linalg.lstsq(
        np.asarray(dma_rows), np.asarray(dma_targets, dtype=float), rcond=None
    )
    host_coeffs, *_ = np.linalg.lstsq(
        np.asarray(host_rows, dtype=float),
        np.asarray(host_targets, dtype=float),
        rcond=None,
    )
    compute_coeffs: Dict[str, np.ndarray] = {}
    if "__mixed__" in compute_rows:
        stacked_coeffs, *_ = np.linalg.lstsq(
            np.asarray(compute_rows["__mixed__"]),
            np.asarray(compute_targets["__mixed__"], dtype=float),
            rcond=None,
        )
        for offset, device in enumerate(sorted(set(device_types))):
            compute_coeffs[device] = stacked_coeffs[offset * 4 : (offset + 1) * 4]
    else:
        for device, rows in compute_rows.items():
            coeffs, *_ = np.linalg.lstsq(
                np.asarray(rows),
                np.asarray(compute_targets[device], dtype=float),
                rcond=None,
            )
            compute_coeffs[device] = coeffs
    return dma_coeffs, host_coeffs, compute_coeffs


@dataclass(frozen=True)
class CalibrationSample:
    """One production offload distilled to its measured pipeline phases.

    The adaptive replanner collects these from live
    :class:`~repro.system.soc.WorkloadReport` instances (row-sharded runs
    only — K-sharded reports mix in staging/accumulate phases the
    calibration features don't model) and feeds them to
    :meth:`SoCCostModel.refit`.

    Attributes:
        shape: the offloaded ``(n_rows, n_inner, n_cols)`` GeMM shape.
        dma_cycles: measured DMA phase cycles.
        compute_cycles: measured compute phase cycles.
        serial_cycles: measured back-to-back total (host target source).
        pipelined_cycles: measured overlapped total (error metric source).
        n_tiles: tiles the offload was split into.
        tile_rows: row-tiling override the offload ran with, if any.
    """

    shape: Tuple[int, int, int]
    dma_cycles: float
    compute_cycles: float
    serial_cycles: float
    pipelined_cycles: float
    n_tiles: int
    tile_rows: Optional[int] = None

    @classmethod
    def from_report(
        cls, shape: Tuple[int, int, int], report, tile_rows: Optional[int] = None
    ) -> "CalibrationSample":
        """Distill a row-sharded ``WorkloadReport`` into a sample.

        Raises:
            ValueError: when the report has no pipeline accounting or was
                K-sharded (its phases don't match row-shard features).
        """
        pipeline = getattr(report, "pipeline", None) or {}
        if not pipeline:
            raise ValueError("report carries no pipeline accounting")
        if int(pipeline.get("k_shards", 1)) > 1:
            raise ValueError("K-sharded reports cannot seed a row-shard refit")
        return cls(
            shape=tuple(int(dim) for dim in shape),
            dma_cycles=float(pipeline["dma_cycles"]),
            compute_cycles=float(pipeline["compute_cycles"]),
            serial_cycles=float(pipeline["serial_cycles"]),
            pipelined_cycles=float(pipeline["pipelined_cycles"]),
            n_tiles=int(pipeline["n_tiles"]),
            tile_rows=tile_rows,
        )


@dataclass
class StreamPrediction:
    """Predicted phase cycles of one PE's tile stream."""

    dma_cycles: float
    compute_cycles: float
    n_tiles: int

    @property
    def serial_cycles(self) -> float:
        """Back-to-back phase sum (no double-buffering overlap)."""
        return self.dma_cycles + self.compute_cycles

    @property
    def pipelined_cycles(self) -> float:
        """Double-buffered estimate: the slower phase hides the faster one.

        The first tile's DMA-in cannot overlap anything, so the stream pays
        one mean DMA latency of startup plus the dominant phase.
        """
        if self.n_tiles <= 0:
            return 0.0
        startup = self.dma_cycles / self.n_tiles
        return startup + max(
            self.dma_cycles - startup + self.compute_cycles / self.n_tiles,
            self.compute_cycles,
        )


@dataclass
class FanoutPrediction:
    """Predicted cycles of a same-input dense fan-out, fused vs sequential.

    Attributes:
        fused_cycles: best predicted cycles of ONE vertically-stacked
            offload covering every branch (rows = sum of branch rows,
            inner = the shared/fused reduction width).
        serial_cycles: sum of each branch's best predicted cycles when
            offloaded one after the other.
    """

    fused_cycles: float
    serial_cycles: float

    @property
    def fuse(self) -> bool:
        """True when the fused offload is predicted to be faster."""
        return self.fused_cycles < self.serial_cycles


@dataclass
class PlanPrediction:
    """Predicted cycles of a whole sharded-GeMM plan."""

    per_pe: List[StreamPrediction] = field(default_factory=list)
    extra_cycles: float = 0.0  # accumulation / host driver overheads

    @property
    def serial_cycles(self) -> float:
        """Every stream's phases back-to-back plus the fixed overheads."""
        return sum(stream.serial_cycles for stream in self.per_pe) + self.extra_cycles

    @property
    def pipelined_cycles(self) -> float:
        """Concurrent-stream estimate: the slowest PE plus fixed overheads."""
        if not self.per_pe:
            return self.extra_cycles
        return max(stream.pipelined_cycles for stream in self.per_pe) + self.extra_cycles


class SoCCostModel:
    """Per-tile DMA/compute cycle predictor fitted from measured pipelines.

    Attributes:
        dma_coeffs: coefficients over :func:`_tile_dma_features`.
        compute_coeffs: coefficients over :func:`_tile_compute_features`,
            one vector per accelerator ``device_type``.
        clock_hz: SoC clock used to convert cycles to seconds.
        n_pes: PE count of the calibrated configuration.
    """

    def __init__(
        self,
        dma_coeffs: np.ndarray,
        compute_coeffs: Dict[str, np.ndarray],
        clock_hz: float = 1e9,
        n_pes: int = 1,
        words_per_burst: int = 8,
        host_coeffs: Optional[np.ndarray] = None,
        probes: Optional[List[dict]] = None,
    ):
        self.dma_coeffs = np.asarray(dma_coeffs, dtype=float)
        self.compute_coeffs = {
            name: np.asarray(coeffs, dtype=float)
            for name, coeffs in compute_coeffs.items()
        }
        self.clock_hz = float(clock_hz)
        self.n_pes = int(n_pes)
        self.words_per_burst = int(words_per_burst)
        #: host MMR-driver cycles against [n_tiles, n_streams, 1]
        self.host_coeffs = (
            np.asarray(host_coeffs, dtype=float)
            if host_coeffs is not None
            else np.zeros(3)
        )
        self.probes = probes or []

    # ------------------------------------------------------------------ #
    # calibration
    # ------------------------------------------------------------------ #
    @classmethod
    def calibrate(
        cls,
        soc,
        probe_shapes: Sequence[Tuple[int, int, int]] = DEFAULT_PROBE_SHAPES,
        value_range: int = 4,
        rng_seed: int = 0,
        words_per_burst: int = 8,
    ) -> "SoCCostModel":
        """Fit the model by running probe GeMMs on the given SoC.

        Probes run through the exact offload path the compiled plans use
        (``run_tiled_gemm`` with default row tiling); each probe's
        ``WorkloadReport.pipeline`` supplies one measured
        (dma_cycles, compute_cycles) pair, regressed against the summed
        per-tile features of its planned shard streams.  Homogeneous PE
        clusters fit one compute model per device type; mixed clusters are
        fitted jointly (their tiles are split deterministically by
        ``plan_shards``, so each device's share of the features is known).

        Mixed-cluster caveat: the joint fit predicts *total* compute
        cycles well, but even row sharding makes the per-device feature
        blocks strongly correlated, so the system is near rank-deficient
        and the per-device attribution is a minimum-norm split — treat
        ``predict_tile_cycles(device_type=...)`` on heterogeneous clusters
        as an aggregate estimate, not a per-device measurement.

        Args:
            soc: a :class:`~repro.system.soc.PhotonicSoC` with
                accelerators attached (the probes run on it).
            probe_shapes: (M, K, N) GeMM shapes to measure.
            value_range: integer magnitude bound of the probe operands.
            rng_seed: seed for the probe operand draws.
            words_per_burst: DMA burst length assumed by the features.

        Returns:
            The fitted :class:`SoCCostModel`.

        Raises:
            ValueError: when the SoC has no accelerators attached.
        """
        if not getattr(soc, "accelerators", None):
            raise ValueError("cost-model calibration needs an SoC with accelerators")
        generator = np.random.default_rng(rng_seed)
        n_pes = len(soc.accelerators)
        device_types = [pe.device_type for pe in soc.accelerators]
        dma_rows, dma_targets = [], []
        host_rows, host_targets = [], []
        compute_rows: Dict[str, List[np.ndarray]] = {}
        compute_targets: Dict[str, List[float]] = {}
        probes: List[dict] = []
        for shape in probe_shapes:
            n_rows, n_inner, n_cols = shape
            weights = generator.integers(
                -value_range, value_range + 1, size=(n_rows, n_inner)
            )
            inputs = generator.integers(
                -value_range, value_range + 1, size=(n_inner, n_cols)
            )
            report = soc.run_tiled_gemm(weights, inputs)
            dma_feature, per_device_features, n_streams = _shard_features(
                shape, n_pes, device_types, words_per_burst
            )
            dma_rows.append(dma_feature)
            dma_targets.append(report.pipeline["dma_cycles"])
            n_tiles = report.pipeline["n_tiles"]
            host_rows.append([n_tiles, n_streams, 1.0])
            # the host MMR-driver cost is whatever serial_cycles carries
            # beyond the two measured PE phases — exact by construction
            host_targets.append(
                report.pipeline["serial_cycles"]
                - report.pipeline["dma_cycles"]
                - report.pipeline["compute_cycles"]
            )
            # Joint compute fit per device: when the cluster is homogeneous
            # the whole measured compute belongs to that device type.
            if len(per_device_features) == 1:
                device = next(iter(per_device_features))
                compute_rows.setdefault(device, []).append(
                    per_device_features[device]
                )
                compute_targets.setdefault(device, []).append(
                    report.pipeline["compute_cycles"]
                )
            else:
                # mixed cluster: fit a stacked system with per-device blocks
                stacked = np.concatenate(
                    [
                        per_device_features.get(device, np.zeros(4))
                        for device in sorted(set(device_types))
                    ]
                )
                compute_rows.setdefault("__mixed__", []).append(stacked)
                compute_targets.setdefault("__mixed__", []).append(
                    report.pipeline["compute_cycles"]
                )
            probes.append(
                {
                    "shape": list(shape),
                    "dma_cycles": report.pipeline["dma_cycles"],
                    "compute_cycles": report.pipeline["compute_cycles"],
                    "pipelined_cycles": report.pipeline["pipelined_cycles"],
                }
            )
        dma_coeffs, host_coeffs, compute_coeffs = _solve_phase_fits(
            dma_rows,
            dma_targets,
            host_rows,
            host_targets,
            compute_rows,
            compute_targets,
            device_types,
        )
        return cls(
            dma_coeffs,
            compute_coeffs,
            clock_hz=soc.clock_hz,
            n_pes=n_pes,
            words_per_burst=words_per_burst,
            host_coeffs=host_coeffs,
            probes=probes,
        )

    def refit(
        self,
        samples: Sequence[CalibrationSample],
        device_types: Optional[Sequence[str]] = None,
    ) -> "SoCCostModel":
        """Fit a fresh model from production offload samples.

        The online half of calibration: where :meth:`calibrate` runs its
        own probe GeMMs, ``refit`` regresses the same three phase fits
        (DMA, host, compute — through the shared solver, so identical
        samples yield identical coefficients) against pipeline phases
        *already measured in production*.  The returned model is new — the
        boot model is untouched, so an
        :class:`~repro.compiler.adaptive.AdaptiveReplanner` can compare
        both and plan caches keyed on the old fingerprint stay coherent.

        Args:
            samples: production :class:`CalibrationSample` window (order
                and duplication don't change the fit beyond float
                round-off of the summed normal equations).
            device_types: per-PE device types of the deployed cluster;
                defaults to the fitted devices repeated across ``n_pes``
                (exact for homogeneous clusters).

        Returns:
            A new :class:`SoCCostModel` with refreshed coefficients and
            the same ``clock_hz`` / ``n_pes`` / ``words_per_burst``.

        Raises:
            ValueError: when ``samples`` is empty.
        """
        samples = list(samples)
        if not samples:
            raise ValueError("refit needs at least one calibration sample")
        if device_types is None:
            fitted = sorted(self.compute_coeffs)
            device_types = [fitted[index % len(fitted)] for index in range(self.n_pes)]
        dma_rows, dma_targets = [], []
        host_rows, host_targets = [], []
        compute_rows: Dict[str, List[np.ndarray]] = {}
        compute_targets: Dict[str, List[float]] = {}
        probes: List[dict] = []
        for sample in samples:
            dma_feature, per_device, n_streams = _shard_features(
                sample.shape,
                self.n_pes,
                device_types,
                self.words_per_burst,
                tile_rows=sample.tile_rows,
            )
            dma_rows.append(dma_feature)
            dma_targets.append(sample.dma_cycles)
            host_rows.append([float(sample.n_tiles), float(n_streams), 1.0])
            host_targets.append(
                sample.serial_cycles - sample.dma_cycles - sample.compute_cycles
            )
            if len(per_device) == 1:
                device = next(iter(per_device))
                compute_rows.setdefault(device, []).append(per_device[device])
                compute_targets.setdefault(device, []).append(sample.compute_cycles)
            else:
                stacked = np.concatenate(
                    [
                        per_device.get(device, np.zeros(4))
                        for device in sorted(set(device_types))
                    ]
                )
                compute_rows.setdefault("__mixed__", []).append(stacked)
                compute_targets.setdefault("__mixed__", []).append(
                    sample.compute_cycles
                )
            probes.append(
                {
                    "shape": list(sample.shape),
                    "dma_cycles": sample.dma_cycles,
                    "compute_cycles": sample.compute_cycles,
                    "pipelined_cycles": sample.pipelined_cycles,
                }
            )
        dma_coeffs, host_coeffs, compute_coeffs = _solve_phase_fits(
            dma_rows,
            dma_targets,
            host_rows,
            host_targets,
            compute_rows,
            compute_targets,
            device_types,
        )
        return type(self)(
            dma_coeffs,
            compute_coeffs,
            clock_hz=self.clock_hz,
            n_pes=self.n_pes,
            words_per_burst=self.words_per_burst,
            host_coeffs=host_coeffs,
            probes=probes,
        )

    @classmethod
    def from_hints(
        cls,
        backend,
        clock_hz: float = 1e9,
        n_pes: int = 1,
        words_per_burst: int = 8,
        word_access_cycles: int = 32,
        cycles_per_mac: float = 1.0,
    ) -> "SoCCostModel":
        """Uncalibrated prior model seeded from a backend's ``cost_hint``.

        Before any probe offload has run, a backend's static
        :meth:`~repro.core.backends.ExecutionBackend.cost_hint` is the only
        cost information available.  This fits the same linear compute
        model :meth:`calibrate` fits, but against hint-derived targets
        (``max(latency_s * clock, cycles_per_mac * macs)`` per probe
        shape) and a nominal DMA burst model — good enough to rank
        sharding choices cold; replace with :meth:`calibrate` once the
        SoC exists.
        """
        compute_rows, compute_targets = [], []
        for n_rows, n_inner, n_cols in DEFAULT_PROBE_SHAPES:
            hint = backend.cost_hint(n_rows, n_inner, n_cols)
            compute_rows.append(_tile_compute_features(n_rows, n_inner, n_cols))
            compute_targets.append(
                max(
                    float(hint.get("latency_s", 0.0)) * clock_hz,
                    cycles_per_mac * float(hint.get("macs", 0.0)),
                )
            )
        compute_coeffs, *_ = np.linalg.lstsq(
            np.asarray(compute_rows),
            np.asarray(compute_targets, dtype=float),
            rcond=None,
        )
        # DMA prior: every word streams at 1 cycle, every burst restarts
        # the access pipe — the same shape the calibrated fit recovers
        dma_coeffs = np.array([1.0, float(word_access_cycles - 1), 0.0])
        return cls(
            dma_coeffs,
            {getattr(backend, "name", "backend"): compute_coeffs},
            clock_hz=clock_hz,
            n_pes=n_pes,
            words_per_burst=words_per_burst,
        )

    # ------------------------------------------------------------------ #
    # prediction
    # ------------------------------------------------------------------ #
    def _compute_coeffs_for(self, device_type: Optional[str]) -> np.ndarray:
        if device_type is not None and device_type in self.compute_coeffs:
            return self.compute_coeffs[device_type]
        # fall back to the first fitted device (homogeneous clusters)
        return next(iter(self.compute_coeffs.values()))

    def predict_tile_cycles(
        self,
        rows: int,
        inner: int,
        cols: int,
        load_input: bool = True,
        device_type: Optional[str] = None,
    ) -> Tuple[float, float]:
        """Predicted ``(dma_cycles, compute_cycles)`` of one tile."""
        dma = float(
            _tile_dma_features(rows, inner, cols, load_input, self.words_per_burst)
            @ self.dma_coeffs
        )
        compute = float(
            _tile_compute_features(rows, inner, cols)
            @ self._compute_coeffs_for(device_type)
        )
        return max(dma, 0.0), max(compute, 0.0)

    def predict_stream(
        self, descriptors, device_type: Optional[str] = None
    ) -> StreamPrediction:
        """Predicted phase cycles of one PE's tile stream."""
        dma = compute = 0.0
        count = 0
        for descriptor in descriptors:
            tile_dma, tile_compute = self.predict_tile_cycles(
                descriptor.rows,
                descriptor.inner,
                descriptor.cols,
                load_input=descriptor.load_input,
                device_type=device_type,
            )
            dma += tile_dma
            compute += tile_compute
            count += 1
        return StreamPrediction(dma_cycles=dma, compute_cycles=compute, n_tiles=count)

    def predict_gemm(
        self,
        n_rows: int,
        n_inner: int,
        n_cols: int,
        n_pes: Optional[int] = None,
        k_shards: int = 1,
        tile_rows: Optional[int] = None,
        device_types: Optional[Sequence[str]] = None,
    ) -> PlanPrediction:
        """Predict a sharded GeMM's cycles under rows- or K-sharding."""
        n_pes = self.n_pes if n_pes is None else int(n_pes)
        if device_types is None:
            device_types = [None] * n_pes
        prediction = PlanPrediction()
        if k_shards > 1:
            slices = plan_k_shards(
                n_rows, n_inner, n_cols, k_shards, tile_rows=tile_rows
            )
            streams: List[List] = [[] for _ in range(n_pes)]
            for piece in slices:
                streams[piece.index % n_pes].extend(piece.descriptors)
            # the reduction reads every partial and writes the result once
            prediction.extra_cycles = float((k_shards + 1) * n_rows * n_cols)
        else:
            streams = plan_shards(
                n_rows, n_inner, n_cols, n_pes, 0, 0, 0, tile_rows=tile_rows
            )
        for device, descriptors in zip(device_types, streams):
            if descriptors:
                prediction.per_pe.append(self.predict_stream(descriptors, device))
        n_tiles = sum(stream.n_tiles for stream in prediction.per_pe)
        n_streams = len(prediction.per_pe)
        prediction.extra_cycles += max(
            float(np.array([n_tiles, n_streams, 1.0]) @ self.host_coeffs), 0.0
        )
        return prediction

    def best_gemm_cycles(
        self,
        n_rows: int,
        n_inner: int,
        n_cols: int,
        n_pes: Optional[int] = None,
        tile_rows: Optional[int] = None,
    ) -> float:
        """Best predicted pipelined cycles over every candidate partition.

        The same argmin :func:`~repro.compiler.partition.choose_sharding`
        runs — row sharding plus each viable K-slice count — collapsed to
        its winning cycle count, so fusion comparisons weigh each side at
        its best sharding rather than a fixed one.
        """
        n_pes = self.n_pes if n_pes is None else int(n_pes)
        best = self.predict_gemm(
            n_rows, n_inner, n_cols, n_pes=n_pes, tile_rows=tile_rows
        ).pipelined_cycles
        for k_shards in range(2, min(n_pes, n_inner) + 1):
            best = min(
                best,
                self.predict_gemm(
                    n_rows, n_inner, n_cols, n_pes=n_pes, k_shards=k_shards,
                    tile_rows=tile_rows,
                ).pipelined_cycles,
            )
        return best

    def predict_fanout(
        self,
        branch_shapes: Sequence[Tuple[int, int]],
        fused_inner: int,
        n_cols: int,
        n_pes: Optional[int] = None,
        tile_rows: Optional[int] = None,
    ) -> FanoutPrediction:
        """Predict a same-input dense fan-out, fused vs sequential.

        Args:
            branch_shapes: per-branch ``(n_rows, n_inner)`` GeMM shapes.
            fused_inner: reduction width of the stacked offload — equal to
                the branches' shared width for a plain fan-out, or the
                full source width when split heads are embedded
                block-diagonally (the zero padding is real streamed work,
                which is exactly why the decision needs a prediction).
            n_cols: expected batch width.
            n_pes / tile_rows: cluster size and row-tiling override.

        Returns:
            The :class:`FanoutPrediction` comparing one stacked offload
            against the branches offloaded one after the other, each side
            at its best sharding.
        """
        if not branch_shapes:
            raise ValueError("predict_fanout needs at least one branch shape")
        serial = sum(
            self.best_gemm_cycles(
                rows, inner, n_cols, n_pes=n_pes, tile_rows=tile_rows
            )
            for rows, inner in branch_shapes
        )
        fused = self.best_gemm_cycles(
            sum(rows for rows, _ in branch_shapes),
            fused_inner,
            n_cols,
            n_pes=n_pes,
            tile_rows=tile_rows,
        )
        return FanoutPrediction(fused_cycles=fused, serial_cycles=serial)

    def cycles_to_s(self, cycles: float) -> float:
        """Convert simulated cycles to seconds at the calibrated clock."""
        return cycles / self.clock_hz


# ---------------------------------------------------------------------- #
# serving-side calibration
# ---------------------------------------------------------------------- #
@dataclass
class ReplicaProfile:
    """Measured service profile of one replica engine.

    Attributes:
        name: replica (or engine) label.
        service_s: wall-clock seconds per single-column request (min over
            repeats, compile excluded — the steady-state service time).
        macs: arithmetic work of the probe request (for scaling the profile
            to differently-sized ops during placement).
        offload_cycles: simulated cycles per request for SoC-backed engines
            (``SoCGemmEngine.offload_cycles`` delta), else ``None``.
        latency_hint_s: the engine's own static schedule hint.
    """

    name: str
    service_s: float
    macs: int
    offload_cycles: Optional[float] = None
    latency_hint_s: float = 0.0

    def predict_request_s(self, macs: Optional[int] = None) -> float:
        """Service-time estimate for a request of ``macs`` work."""
        if macs is None or self.macs <= 0:
            return self.service_s
        return self.service_s * max(macs, 1) / self.macs


def profile_engine(
    engine,
    weights: Optional[np.ndarray] = None,
    repeats: int = 3,
    probe_shape: Tuple[int, int] = (16, 16),
    clock: Callable[[], float] = time.perf_counter,
) -> ReplicaProfile:
    """Measure an engine's steady-state single-column service time.

    The first ``run_batch`` (compile: mesh programming, plan building) is
    excluded; the profile keeps the minimum of ``repeats`` timed runs.  For
    :class:`~repro.serving.engine.SoCGemmEngine` replicas the simulated
    offload cycles per request are recorded too, so schedulers can reason
    in device time as well as wall time.

    Engines without a bound default model are probed with a synthetic
    ``probe_shape`` weight matrix (the same explicit-weights path compiled
    plans execute through).

    Args:
        engine: the :class:`~repro.serving.engine.InferenceEngine` to probe.
        weights: explicit probe weights (default: the engine's bound
            model, else a ones matrix of ``probe_shape``).
        repeats: timed runs to take the minimum over.
        probe_shape: synthetic weight shape for unbound engines.
        clock: injectable timer (tests pass a fake).

    Returns:
        The measured :class:`ReplicaProfile`.

    Raises:
        ValueError: when ``repeats`` is not positive.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if weights is None:
        try:
            compiled = engine.compile(None)
        except ServingError:
            weights = np.ones(probe_shape, dtype=float)
            compiled = engine.compile(weights)
    else:
        compiled = engine.compile(weights)
    column = np.zeros((compiled.n_inputs, 1))
    engine.run_batch(weights, column)  # warm: everything compiled/cached
    cycles_attr = getattr(engine, "offload_cycles", None)
    cycles_before = cycles_attr if isinstance(cycles_attr, (int, float)) else None
    best = float("inf")
    for _ in range(repeats):
        started = clock()
        engine.run_batch(weights, column)
        best = min(best, clock() - started)
    offload_cycles = None
    if cycles_before is not None:
        offload_cycles = (engine.offload_cycles - cycles_before) / repeats
    return ReplicaProfile(
        name=engine.name,
        service_s=best,
        macs=compiled.n_outputs * compiled.n_inputs,
        offload_cycles=offload_cycles,
        latency_hint_s=engine.latency_hint_s(1),
    )


def profile_replicas(
    replicas,
    weights: Optional[np.ndarray] = None,
    repeats: int = 3,
    clock: Callable[[], float] = time.perf_counter,
) -> Dict[str, ReplicaProfile]:
    """Profile every replica's engine; returns ``{replica_name: profile}``.

    Run this before serving starts — probe batches execute inline on the
    engines (they show up in engine stats, not in server telemetry).
    """
    profiles: Dict[str, ReplicaProfile] = {}
    for replica in replicas:
        profile = profile_engine(
            replica.engine, weights=weights, repeats=repeats, clock=clock
        )
        profiles[replica.name] = replace(profile, name=replica.name)
    return profiles


def replica_cost_fn(
    profiles: Union[
        Mapping[str, ReplicaProfile], Callable[[], Mapping[str, ReplicaProfile]]
    ],
) -> Callable[[object], float]:
    """Scoring callable for ``ReplicaScheduler(policy="cost-based")``.

    Returns the calibrated per-request service seconds of a replica;
    unprofiled replicas fall back to their engine's static latency hint,
    so a partially-profiled pool still routes sensibly.

    ``profiles`` may be a plain mapping, or a zero-argument callable
    returning the *current* mapping.  The callable form reads through on
    every score, so cost-based routing sees live re-profiles — pass
    :meth:`~repro.compiler.adaptive.AdaptiveReplanner.current_profiles`
    and a refit's refreshed profiles take effect without rebuilding the
    scheduler's closure (a plain dict snapshot would pin the boot-time
    profiles forever).
    """

    def cost(replica) -> float:
        current = profiles() if callable(profiles) else profiles
        profile = current.get(replica.name)
        if profile is not None:
            return max(profile.service_s, 0.0)
        return max(replica.engine.latency_hint_s(1), 0.0)

    return cost
