"""Evaluation metrics shared by the benchmarks and examples."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.utils.linalg import matrix_fidelity, normalized_frobenius_error


def classification_accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct class predictions."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    if predictions.size == 0:
        raise ValueError("cannot compute accuracy of an empty prediction set")
    return float(np.mean(predictions == labels))


def signal_to_noise_db(signal: np.ndarray, noisy: np.ndarray) -> float:
    """SNR in dB between a reference signal and its noisy estimate."""
    signal = np.asarray(signal, dtype=float).ravel()
    noisy = np.asarray(noisy, dtype=float).ravel()
    if signal.shape != noisy.shape:
        raise ValueError("signal and noisy estimate must have the same shape")
    noise_power = float(np.mean((signal - noisy) ** 2))
    signal_power = float(np.mean(signal**2))
    if signal_power == 0:
        raise ValueError("reference signal has zero power")
    if noise_power == 0:
        return float("inf")
    return 10.0 * np.log10(signal_power / noise_power)


def speedup(baseline_cycles: float, accelerated_cycles: float) -> float:
    """Baseline/accelerated ratio (>1 means the accelerator wins)."""
    if accelerated_cycles <= 0:
        raise ValueError("accelerated cycle count must be positive")
    return float(baseline_cycles) / float(accelerated_cycles)


def energy_efficiency_gain(baseline_energy: float, accelerated_energy: float) -> float:
    """Baseline/accelerated energy ratio (>1 means the accelerator wins)."""
    if accelerated_energy <= 0:
        raise ValueError("accelerated energy must be positive")
    return float(baseline_energy) / float(accelerated_energy)


def summarize_fidelity(implemented: np.ndarray, target: np.ndarray) -> Dict[str, float]:
    """Fidelity and Frobenius error in one dictionary."""
    return {
        "fidelity": matrix_fidelity(implemented, target),
        "frobenius_error": normalized_frobenius_error(implemented, target),
    }


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (standard for speedup summaries)."""
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        raise ValueError("cannot take the geometric mean of an empty sequence")
    if np.any(values <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(values))))
