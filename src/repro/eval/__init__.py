"""Evaluation harness: workloads, metrics, sweeps and report formatting."""

from repro.eval.workloads import (
    ClassificationDataset,
    make_digit_dataset,
    make_diamond_graph,
    make_fanout_graph,
    make_gemm_workload,
    make_layer_stack,
    make_multi_head_graph,
    make_residual_graph,
    make_spike_patterns,
    run_backend_gemm_experiment,
)
from repro.eval.metrics import (
    classification_accuracy,
    signal_to_noise_db,
    speedup,
    energy_efficiency_gain,
    summarize_fidelity,
    geometric_mean,
)
from repro.eval.reporting import format_table, format_series, format_dict
from repro.eval.sweeps import SweepResult, run_sweep, cross_sweep

__all__ = [
    "ClassificationDataset",
    "make_digit_dataset",
    "make_diamond_graph",
    "make_fanout_graph",
    "make_gemm_workload",
    "make_layer_stack",
    "make_multi_head_graph",
    "make_residual_graph",
    "make_spike_patterns",
    "run_backend_gemm_experiment",
    "classification_accuracy",
    "signal_to_noise_db",
    "speedup",
    "energy_efficiency_gain",
    "summarize_fidelity",
    "geometric_mean",
    "format_table",
    "format_series",
    "format_dict",
    "SweepResult",
    "run_sweep",
    "cross_sweep",
]
