"""Synthetic workloads and datasets for the experiments.

The paper motivates the accelerator with edge-AI inference workloads but
ships no dataset; this module provides the synthetic equivalents that
exercise the same code paths: random matrices for MVM/GeMM studies, a
small separable digit-like classification dataset for photonic MLP
inference (E6), and spike-pattern sets for the SNN/STDP study (E7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.snn.encoding import SpikeTrain, rate_encode
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class ClassificationDataset:
    """A simple classification dataset.

    Attributes:
        train_x / train_y: training inputs (n, d) and integer labels (n,).
        test_x / test_y: held-out test split.
        n_classes: number of classes.
    """

    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    n_classes: int

    @property
    def n_features(self) -> int:
        return self.train_x.shape[1]


def make_digit_dataset(
    n_samples_per_class: int = 60,
    n_classes: int = 4,
    n_features: int = 16,
    noise: float = 0.25,
    test_fraction: float = 0.25,
    rng: RngLike = 0,
) -> ClassificationDataset:
    """Generate a digit-like dataset: noisy class prototypes on a 4x4 grid.

    Each class has a distinct binary prototype pattern (think tiny digit
    glyphs); samples are the prototype plus Gaussian pixel noise.  The task
    is easy for a small MLP at zero noise and degrades gracefully, which is
    exactly what an analog-precision study needs.
    """
    generator = ensure_rng(rng)
    if n_classes < 2:
        raise ValueError("need at least 2 classes")
    prototypes = (generator.uniform(size=(n_classes, n_features)) > 0.5).astype(float)
    # Ensure prototypes are pairwise distinct enough to be separable.
    for i in range(1, n_classes):
        while min(
            np.sum(prototypes[i] != prototypes[j]) for j in range(i)
        ) < max(2, n_features // 4):
            prototypes[i] = (generator.uniform(size=n_features) > 0.5).astype(float)

    inputs, labels = [], []
    for label, prototype in enumerate(prototypes):
        samples = prototype + generator.normal(0.0, noise, size=(n_samples_per_class, n_features))
        inputs.append(samples)
        labels.append(np.full(n_samples_per_class, label))
    inputs = np.clip(np.concatenate(inputs), 0.0, 1.5)
    labels = np.concatenate(labels)

    order = generator.permutation(inputs.shape[0])
    inputs, labels = inputs[order], labels[order]
    n_test = int(test_fraction * inputs.shape[0])
    return ClassificationDataset(
        train_x=inputs[n_test:],
        train_y=labels[n_test:].astype(int),
        test_x=inputs[:n_test],
        test_y=labels[:n_test].astype(int),
        n_classes=n_classes,
    )


def make_gemm_workload(
    n_rows: int, n_inner: int, n_cols: int, value_range: int = 8, rng: RngLike = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Random integer GeMM operands for the full-system workloads."""
    generator = ensure_rng(rng)
    weights = generator.integers(-value_range, value_range + 1, size=(n_rows, n_inner))
    inputs = generator.integers(-value_range, value_range + 1, size=(n_inner, n_cols))
    return weights, inputs


def make_layer_stack(
    layer_sizes: List[int], value_range: int = 4, rng: RngLike = 0
) -> List[np.ndarray]:
    """Random integer weight matrices for a multi-layer GeMM chain.

    ``layer_sizes = [n0, n1, ..., nL]`` yields ``L`` matrices with shapes
    ``(n1, n0), (n2, n1), ...`` — the chained-model workload the model
    compiler plans and places.  Integer entries keep compiled-plan outputs
    bitwise comparable to direct execution on exact backends.
    """
    if len(layer_sizes) < 2:
        raise ValueError("need at least an input and an output size")
    if min(layer_sizes) < 1:
        raise ValueError("layer sizes must be positive")
    generator = ensure_rng(rng)
    return [
        generator.integers(
            -value_range, value_range + 1, size=(n_out, n_in)
        )
        for n_in, n_out in zip(layer_sizes[:-1], layer_sizes[1:])
    ]


def make_diamond_graph(
    n_features: int,
    n_outputs: int = 4,
    value_range: int = 3,
    activation: str = "relu",
    rng: RngLike = 0,
    name: str = "diamond",
):
    """Build the canonical branching workload: a diamond-shaped DAG.

    Shared input -> two parallel dense branches -> residual add -> dense
    head.  Both branches are roots consuming the same graph input, so the
    graph exercises multi-root fan-out, fan-in (:class:`AddOp`) and the
    executors' level-parallel dispatch.  Integer weights keep compiled
    plans bitwise comparable to direct execution on exact backends.

    Args:
        n_features: input (and branch) feature width.
        n_outputs: head output width.
        value_range: integer weight magnitude bound.
        activation: branch activation (``relu`` by default; use
            ``identity`` for fully linear diamonds).
        rng: seed or generator for the weight draws.
        name: graph label.

    Returns:
        The diamond :class:`~repro.compiler.graph.ModelGraph`.
    """
    from repro.compiler.graph import ModelGraph
    from repro.compiler.ops import AddOp, DenseOp

    generator = ensure_rng(rng)

    def matrix(n_out, n_in):
        return generator.integers(-value_range, value_range + 1, size=(n_out, n_in))

    graph = ModelGraph(name=name)
    graph.add_op(DenseOp("left", matrix(n_features, n_features), activation=activation))
    graph.add_op(DenseOp("right", matrix(n_features, n_features), activation=activation))
    graph.add_op(AddOp("residual", n_features), inputs=["left", "right"])
    graph.add_op(DenseOp("head", matrix(n_outputs, n_features)), inputs=["residual"])
    return graph


def make_residual_graph(
    n_features: int,
    n_blocks: int = 2,
    n_outputs: int = 4,
    value_range: int = 3,
    rng: RngLike = 0,
    name: str = "residual",
):
    """Build a residual-MLP DAG: stem -> ``n_blocks`` skip blocks -> head.

    Each block computes ``x + relu(W x)`` through an :class:`AddOp` whose
    second edge skips the dense branch — the fan-out/fan-in pattern the
    paper's whole-model workloads (residual MLPs) lower through.

    Args:
        n_features: feature width carried through the blocks.
        n_blocks: number of residual blocks.
        n_outputs: head output width.
        value_range: integer weight magnitude bound.
        rng: seed or generator for the weight draws.
        name: graph label.

    Returns:
        The residual :class:`~repro.compiler.graph.ModelGraph`.
    """
    from repro.compiler.graph import ModelGraph
    from repro.compiler.ops import AddOp, DenseOp

    if n_blocks < 1:
        raise ValueError("need at least one residual block")
    generator = ensure_rng(rng)

    def matrix(n_out, n_in):
        return generator.integers(-value_range, value_range + 1, size=(n_out, n_in))

    graph = ModelGraph(name=name)
    graph.add_op(DenseOp("stem", matrix(n_features, n_features)))
    previous = "stem"
    for index in range(n_blocks):
        branch = f"block{index}_dense"
        graph.add_op(
            DenseOp(branch, matrix(n_features, n_features), activation="relu"),
            inputs=[previous],
        )
        graph.add_op(
            AddOp(f"block{index}_add", n_features), inputs=[previous, branch]
        )
        previous = f"block{index}_add"
    graph.add_op(DenseOp("head", matrix(n_outputs, n_features)), inputs=[previous])
    return graph


def make_multi_head_graph(
    n_features: int,
    head_sizes: Tuple[int, ...] = (4, 4),
    value_range: int = 3,
    rng: RngLike = 0,
    name: str = "multi-head",
):
    """Build a multi-head readout DAG: trunk -> split -> heads -> concat.

    The trunk's output is split into contiguous feature slices
    (:class:`SplitOp`), each slice feeds its own dense head, and the head
    outputs concatenate (:class:`ConcatOp`) — the SNN-readout fan-out
    pattern.  The trunk width is split as evenly as the head count allows.

    Args:
        n_features: input and trunk feature width (must be >= the head
            count).
        head_sizes: output width of each head (also the head count).
        value_range: integer weight magnitude bound.
        rng: seed or generator for the weight draws.
        name: graph label.

    Returns:
        The multi-head :class:`~repro.compiler.graph.ModelGraph`.
    """
    from repro.compiler.graph import ModelGraph
    from repro.compiler.ops import ConcatOp, DenseOp, SplitOp

    n_heads = len(head_sizes)
    if n_heads < 2:
        raise ValueError("need at least two heads")
    if n_features < n_heads:
        raise ValueError("trunk width must cover one feature per head")
    generator = ensure_rng(rng)

    def matrix(n_out, n_in):
        return generator.integers(-value_range, value_range + 1, size=(n_out, n_in))

    graph = ModelGraph(name=name)
    graph.add_op(DenseOp("trunk", matrix(n_features, n_features), activation="relu"))
    bounds = np.linspace(0, n_features, n_heads + 1).astype(int)
    head_names = []
    for index, head_size in enumerate(head_sizes):
        start, stop = int(bounds[index]), int(bounds[index + 1])
        graph.add_op(
            SplitOp(f"slice{index}", n_features, start, stop), inputs=["trunk"]
        )
        graph.add_op(
            DenseOp(f"head{index}", matrix(head_size, stop - start)),
            inputs=[f"slice{index}"],
        )
        head_names.append(f"head{index}")
    graph.add_op(
        ConcatOp("readout", tuple(int(size) for size in head_sizes)),
        inputs=head_names,
    )
    return graph


def make_fanout_graph(
    n_features: int = 8,
    n_branches: int = 4,
    n_outputs: int = 4,
    value_range: int = 3,
    rng: RngLike = 0,
    name: str = "fanout",
):
    """Build a wide fan-out DAG: ``n_branches`` parallel dense roots -> add -> head.

    Every branch consumes the shared graph input and the merged sum feeds
    one dense head, so all branches sit in the same dependency level —
    the stress workload for the pool executor's level-parallel dispatch
    (and the shape the branch-parallel benchmarks measure).

    Args:
        n_features: input (and branch) feature width.
        n_branches: number of parallel dense branches (>= 2).
        n_outputs: head output width.
        value_range: integer weight magnitude bound.
        rng: seed or generator for the weight draws.
        name: graph label.

    Returns:
        The fan-out :class:`~repro.compiler.graph.ModelGraph`.
    """
    from repro.compiler.graph import ModelGraph
    from repro.compiler.ops import AddOp, DenseOp

    if n_branches < 2:
        raise ValueError("need at least two branches")
    generator = ensure_rng(rng)

    def matrix(n_out, n_in):
        return generator.integers(-value_range, value_range + 1, size=(n_out, n_in))

    graph = ModelGraph(name=name)
    branch_names = []
    for index in range(n_branches):
        graph.add_op(DenseOp(f"branch{index}", matrix(n_features, n_features)))
        branch_names.append(f"branch{index}")
    graph.add_op(
        AddOp("merge", n_features, arity=n_branches), inputs=branch_names
    )
    graph.add_op(DenseOp("head", matrix(n_outputs, n_features)), inputs=["merge"])
    return graph


def run_backend_gemm_experiment(
    n_modes: int = 8,
    n_cols: int = 8,
    backend: str = "ideal-digital",
    value_range: int = 8,
    rng: RngLike = 0,
) -> dict:
    """One scenario point: an ``n_modes`` GeMM on a named execution backend.

    The matmul implementation comes from the backend registry
    (``repro.core.backends``), so the same experiment covers the digital
    reference, the fixed-point datapath, the analog photonic chain and any
    user-registered backend.  Returns a plain metrics dict (module-level
    and picklable on purpose: this is the unit of work the process-parallel
    sweep executor ships to workers).
    """
    from repro.core.gemm import backend_gemm

    weights, inputs = make_gemm_workload(n_modes, n_modes, n_cols, value_range, rng=rng)
    result = backend_gemm(weights.astype(float), inputs.astype(float), backend=backend)
    return {
        "backend": backend,
        "n_modes": n_modes,
        "n_cols": n_cols,
        "relative_error": result.relative_error,
        "latency_s": result.latency_s,
        "throughput_macs_per_s": result.throughput_macs_per_s,
    }


def make_spike_patterns(
    n_inputs: int = 8,
    n_patterns: int = 2,
    active_fraction: float = 0.5,
    window: float = 10e-9,
    rng: RngLike = 0,
) -> List[List[SpikeTrain]]:
    """Build distinct binary spike patterns for the STDP learning study.

    Each pattern activates a different subset of the input channels (rate
    encoded with maximal rate); patterns are pairwise disjoint where
    possible so a winner-take-all network can separate them.
    """
    generator = ensure_rng(rng)
    if not 0 < active_fraction <= 1:
        raise ValueError("active_fraction must lie in (0, 1]")
    n_active = max(1, int(round(active_fraction * n_inputs)))
    patterns = []
    channels = np.arange(n_inputs)
    for index in range(n_patterns):
        if (index + 1) * n_active <= n_inputs:
            active = channels[index * n_active : (index + 1) * n_active]
        else:
            active = generator.choice(channels, size=n_active, replace=False)
        values = np.zeros(n_inputs)
        values[active] = 1.0
        patterns.append(rate_encode(values, window=window, max_spikes=6))
    return patterns
