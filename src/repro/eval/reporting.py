"""Plain-text table/series reporting for the benchmark harness.

Every benchmark prints the rows the paper-style comparison would tabulate.
The helpers here keep that formatting consistent (aligned columns, fixed
float precision) and dependency-free so benchmark output is readable in CI
logs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence], precision: int = 4) -> str:
    """Render rows as an aligned text table.

    Floats are formatted to ``precision`` significant digits; everything
    else is stringified.
    """
    def render(cell) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return f"{cell:.{precision}g}"
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    if rendered:
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in rendered))
            for i in range(len(headers))
        ]
    else:
        widths = [len(h) for h in headers]
    lines = [
        "  ".join(headers[i].ljust(widths[i]) for i in range(len(headers))),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence, x_label: str = "x", y_label: str = "y") -> str:
    """Render an (x, y) series as the text form of a figure curve."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    rows = list(zip(xs, ys))
    return f"# series: {name}\n" + format_table([x_label, y_label], rows)


def format_dict(title: str, values: Dict) -> str:
    """Render a metrics dictionary as an aligned key/value block."""
    if not values:
        return f"# {title}\n(empty)"
    width = max(len(str(key)) for key in values)
    lines = [f"# {title}"]
    for key, value in values.items():
        if isinstance(value, float):
            lines.append(f"{str(key).ljust(width)}  {value:.6g}")
        else:
            lines.append(f"{str(key).ljust(width)}  {value}")
    return "\n".join(lines)
