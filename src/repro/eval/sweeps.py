"""Parameter-sweep harness used by the benchmarks.

A sweep runs one experiment callable over a grid of parameter values,
collects per-point metric dictionaries and renders them as the table or
series the corresponding paper figure would show.  Keeping the harness
generic means every benchmark is a thin declaration of workload +
parameter grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.eval.reporting import format_table


@dataclass
class SweepResult:
    """Result of one parameter sweep.

    Attributes:
        parameter_name: the swept parameter.
        points: one metrics dictionary per grid value (each contains the
            parameter value under ``parameter_name``).
    """

    parameter_name: str
    points: List[Dict] = field(default_factory=list)

    def column(self, key: str) -> List:
        """Extract one metric across all sweep points."""
        return [point[key] for point in self.points]

    def as_table(self, keys: Sequence[str] = ()) -> str:
        """Render selected metric columns (all keys by default) as a table."""
        if not self.points:
            return "(empty sweep)"
        keys = list(keys) if keys else list(self.points[0].keys())
        rows = [[point.get(key) for key in keys] for point in self.points]
        return format_table(keys, rows)


def run_sweep(
    parameter_name: str,
    values: Sequence,
    experiment: Callable[..., Dict],
    **fixed_kwargs,
) -> SweepResult:
    """Run ``experiment(parameter_name=value, **fixed_kwargs)`` over a grid.

    The experiment callable must return a metrics dictionary; the swept
    value is added to each point under ``parameter_name``.
    """
    result = SweepResult(parameter_name=parameter_name)
    for value in values:
        kwargs = dict(fixed_kwargs)
        kwargs[parameter_name] = value
        metrics = dict(experiment(**kwargs))
        metrics.setdefault(parameter_name, value)
        result.points.append(metrics)
    return result


def cross_sweep(
    outer_name: str,
    outer_values: Sequence,
    inner_name: str,
    inner_values: Sequence,
    experiment: Callable[..., Dict],
    **fixed_kwargs,
) -> List[SweepResult]:
    """Nested sweep: one :class:`SweepResult` per outer value."""
    results = []
    for outer_value in outer_values:
        kwargs = dict(fixed_kwargs)
        kwargs[outer_name] = outer_value
        sweep = run_sweep(inner_name, inner_values, experiment, **kwargs)
        for point in sweep.points:
            point.setdefault(outer_name, outer_value)
        results.append(sweep)
    return results
