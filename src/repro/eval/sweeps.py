"""Parameter-sweep harness used by the benchmarks.

A sweep runs one experiment callable over a grid of parameter values,
collects per-point metric dictionaries and renders them as the table or
series the corresponding paper figure would show.  Keeping the harness
generic means every benchmark is a thin declaration of workload +
parameter grid.

Sweeps are backend- and executor-aware: ``backend=`` forwards a named
execution backend (``repro.core.backends``) to every experiment call, and
``executor=`` evaluates the grid points concurrently — pass an existing
``concurrent.futures`` executor or an integer worker count (which spins up
a process pool), so backend x mesh-size scenario grids run in parallel.
Experiments dispatched to a process pool must be module-level callables
with picklable kwargs (backend *names*, not instances).
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.eval.reporting import format_table

ExecutorSpec = Union[None, int, Executor]


@dataclass
class SweepResult:
    """Result of one parameter sweep.

    Attributes:
        parameter_name: the swept parameter.
        points: one metrics dictionary per grid value (each contains the
            parameter value under ``parameter_name``).
    """

    parameter_name: str
    points: List[Dict] = field(default_factory=list)

    def column(self, key: str) -> List:
        """Extract one metric across all sweep points."""
        return [point[key] for point in self.points]

    def as_table(self, keys: Sequence[str] = ()) -> str:
        """Render selected metric columns (all keys by default) as a table."""
        if not self.points:
            return "(empty sweep)"
        keys = list(keys) if keys else list(self.points[0].keys())
        rows = [[point.get(key) for key in keys] for point in self.points]
        return format_table(keys, rows)


def _call_experiment(payload: Tuple[Callable[..., Dict], Dict]) -> Dict:
    """Top-level trampoline so grid points survive process-pool pickling."""
    experiment, kwargs = payload
    return dict(experiment(**kwargs))


def _resolve_executor(executor: ExecutorSpec) -> Tuple[Optional[Executor], bool]:
    """Normalise an executor spec; returns (executor, owned-by-this-call)."""
    if executor is None:
        return None, False
    if isinstance(executor, int):
        if executor < 1:
            raise ValueError("worker count must be >= 1")
        return ProcessPoolExecutor(max_workers=executor), True
    if isinstance(executor, Executor):
        return executor, False
    raise TypeError(
        f"executor must be None, a worker count or a concurrent.futures "
        f"Executor, got {type(executor).__name__}"
    )


def run_sweep(
    parameter_name: str,
    values: Sequence,
    experiment: Callable[..., Dict],
    backend: Optional[str] = None,
    executor: ExecutorSpec = None,
    **fixed_kwargs,
) -> SweepResult:
    """Run ``experiment(parameter_name=value, **fixed_kwargs)`` over a grid.

    The experiment callable must return a metrics dictionary; the swept
    value is added to each point under ``parameter_name``.  ``backend``
    (a registry name) is forwarded as the experiment's ``backend`` kwarg,
    and ``executor`` evaluates the grid concurrently while preserving the
    grid order of the results.
    """
    payloads = []
    for value in values:
        kwargs = dict(fixed_kwargs)
        kwargs[parameter_name] = value
        if backend is not None:
            kwargs.setdefault("backend", backend)
        payloads.append((experiment, kwargs))

    pool, owned = _resolve_executor(executor)
    try:
        if pool is None:
            metrics_list = [_call_experiment(payload) for payload in payloads]
        else:
            metrics_list = list(pool.map(_call_experiment, payloads))
    finally:
        if owned:
            pool.shutdown()

    result = SweepResult(parameter_name=parameter_name)
    for value, metrics in zip(values, metrics_list):
        metrics.setdefault(parameter_name, value)
        result.points.append(metrics)
    return result


def cross_sweep(
    outer_name: str,
    outer_values: Sequence,
    inner_name: str,
    inner_values: Sequence,
    experiment: Callable[..., Dict],
    backend: Optional[str] = None,
    executor: ExecutorSpec = None,
    **fixed_kwargs,
) -> List[SweepResult]:
    """Nested sweep: one :class:`SweepResult` per outer value.

    A shared executor is resolved once so the whole outer x inner scenario
    grid draws from the same worker pool.
    """
    pool, owned = _resolve_executor(executor)
    try:
        results = []
        for outer_value in outer_values:
            kwargs = dict(fixed_kwargs)
            kwargs[outer_name] = outer_value
            # sweeping "backend" itself routes through the dedicated kwarg
            point_backend = kwargs.pop("backend", backend)
            sweep = run_sweep(
                inner_name,
                inner_values,
                experiment,
                backend=point_backend,
                executor=pool,
                **kwargs,
            )
            for point in sweep.points:
                point.setdefault(outer_name, outer_value)
            results.append(sweep)
        return results
    finally:
        if owned:
            pool.shutdown()
