"""Unit conversions used across the photonic device and system models.

All internal quantities are SI unless a function name says otherwise:
power in watts, wavelength in metres, energy in joules, time in seconds.
"""

from __future__ import annotations

import numpy as np

#: Speed of light in vacuum [m/s].
SPEED_OF_LIGHT = 299_792_458.0

#: Planck constant [J*s].
PLANCK_CONSTANT = 6.626_070_15e-34

#: Elementary charge [C].
ELEMENTARY_CHARGE = 1.602_176_634e-19

#: Boltzmann constant [J/K].
BOLTZMANN_CONSTANT = 1.380_649e-23


def db_to_linear(value_db):
    """Convert a ratio expressed in decibels to a linear power ratio."""
    return 10.0 ** (np.asarray(value_db, dtype=float) / 10.0)


def linear_to_db(value_linear):
    """Convert a linear power ratio to decibels.

    Values must be strictly positive; zero or negative ratios have no dB
    representation and raise ``ValueError``.
    """
    value = np.asarray(value_linear, dtype=float)
    if np.any(value <= 0.0):
        raise ValueError("linear_to_db requires strictly positive ratios")
    return 10.0 * np.log10(value)


def dbm_to_watt(power_dbm):
    """Convert optical power from dBm to watts."""
    return 1e-3 * db_to_linear(power_dbm)


def watt_to_dbm(power_watt):
    """Convert optical power from watts to dBm."""
    power = np.asarray(power_watt, dtype=float)
    if np.any(power <= 0.0):
        raise ValueError("watt_to_dbm requires strictly positive powers")
    return linear_to_db(power / 1e-3)


def wavelength_to_frequency(wavelength_m):
    """Convert a vacuum wavelength [m] to optical frequency [Hz]."""
    wavelength = np.asarray(wavelength_m, dtype=float)
    if np.any(wavelength <= 0.0):
        raise ValueError("wavelength must be positive")
    return SPEED_OF_LIGHT / wavelength

def frequency_to_wavelength(frequency_hz):
    """Convert an optical frequency [Hz] to vacuum wavelength [m]."""
    frequency = np.asarray(frequency_hz, dtype=float)
    if np.any(frequency <= 0.0):
        raise ValueError("frequency must be positive")
    return SPEED_OF_LIGHT / frequency


def photon_energy(wavelength_m):
    """Energy of a single photon at the given vacuum wavelength [J]."""
    return PLANCK_CONSTANT * wavelength_to_frequency(wavelength_m)


def loss_db_per_cm_to_alpha(loss_db_per_cm):
    """Convert waveguide loss in dB/cm to a field attenuation coefficient [1/m].

    The returned ``alpha`` is defined such that the optical *power* after a
    length ``L`` is ``P0 * exp(-alpha * L)``.
    """
    loss = np.asarray(loss_db_per_cm, dtype=float)
    if np.any(loss < 0.0):
        raise ValueError("loss must be non-negative")
    # 1 dB/cm = 100 dB/m; 10*log10(e) dB corresponds to one neper.
    return loss * 100.0 * np.log(10.0) / 10.0
