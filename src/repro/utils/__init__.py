"""Shared utilities: unit conversions, linear algebra helpers, RNG handling."""

from repro.utils.units import (
    db_to_linear,
    linear_to_db,
    dbm_to_watt,
    watt_to_dbm,
    wavelength_to_frequency,
    frequency_to_wavelength,
)
from repro.utils.linalg import (
    is_unitary,
    random_unitary,
    random_complex_matrix,
    matrix_fidelity,
    vector_fidelity,
    normalized_frobenius_error,
    condition_phases,
)
from repro.utils.rng import derive_worker_seed, ensure_rng

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watt",
    "watt_to_dbm",
    "wavelength_to_frequency",
    "frequency_to_wavelength",
    "is_unitary",
    "random_unitary",
    "random_complex_matrix",
    "matrix_fidelity",
    "vector_fidelity",
    "normalized_frobenius_error",
    "condition_phases",
    "ensure_rng",
    "derive_worker_seed",
]
