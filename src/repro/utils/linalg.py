"""Linear-algebra helpers for interferometer meshes and MVM evaluation."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RngLike, ensure_rng


def is_unitary(matrix: np.ndarray, atol: float = 1e-8) -> bool:
    """Return True if ``matrix`` is unitary within tolerance ``atol``."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return bool(
        np.allclose(matrix @ matrix.conj().T, identity, atol=atol)
        and np.allclose(matrix.conj().T @ matrix, identity, atol=atol)
    )


def random_unitary(n: int, rng: RngLike = None) -> np.ndarray:
    """Draw an ``n x n`` unitary from the Haar measure.

    Uses the QR decomposition of a complex Ginibre matrix with the phase
    correction of Mezzadri (2007) so that the distribution is exactly Haar.
    """
    if n < 1:
        raise ValueError("dimension must be >= 1")
    generator = ensure_rng(rng)
    ginibre = generator.normal(size=(n, n)) + 1j * generator.normal(size=(n, n))
    q, r = np.linalg.qr(ginibre)
    diagonal = np.diagonal(r)
    phases = diagonal / np.abs(diagonal)
    return q * phases


def random_complex_matrix(
    n_rows: int, n_cols: int, rng: RngLike = None, scale: float = 1.0
) -> np.ndarray:
    """Draw a dense complex Gaussian matrix (used as a generic MVM target)."""
    generator = ensure_rng(rng)
    real = generator.normal(size=(n_rows, n_cols))
    imag = generator.normal(size=(n_rows, n_cols))
    return scale * (real + 1j * imag) / np.sqrt(2.0)


def matrix_fidelity(implemented: np.ndarray, target: np.ndarray) -> float:
    """Normalised overlap fidelity between two matrices.

    Defined as ``|tr(T^H I)|^2 / (||T||_F^2 ||I||_F^2)``; equals 1 when the
    implemented matrix matches the target up to a global complex scale, and
    decreases toward 0 as they become orthogonal in the Frobenius inner
    product.  This is the standard figure of merit used to compare
    programmed interferometer meshes with their target unitaries.
    """
    implemented = np.asarray(implemented, dtype=complex)
    target = np.asarray(target, dtype=complex)
    if implemented.shape != target.shape:
        raise ValueError("shape mismatch between implemented and target matrices")
    overlap = np.abs(np.vdot(target, implemented)) ** 2
    norm = (np.linalg.norm(target) ** 2) * (np.linalg.norm(implemented) ** 2)
    if norm == 0.0:
        raise ValueError("fidelity is undefined for all-zero matrices")
    return float(overlap / norm)


def vector_fidelity(implemented: np.ndarray, target: np.ndarray) -> float:
    """Normalised overlap fidelity between two vectors (same form as matrices)."""
    return matrix_fidelity(
        np.asarray(implemented).reshape(-1, 1), np.asarray(target).reshape(-1, 1)
    )


def normalized_frobenius_error(implemented: np.ndarray, target: np.ndarray) -> float:
    """Relative Frobenius-norm error ``||I - T||_F / ||T||_F``."""
    implemented = np.asarray(implemented, dtype=complex)
    target = np.asarray(target, dtype=complex)
    if implemented.shape != target.shape:
        raise ValueError("shape mismatch between implemented and target matrices")
    target_norm = np.linalg.norm(target)
    if target_norm == 0.0:
        raise ValueError("error is undefined for an all-zero target")
    return float(np.linalg.norm(implemented - target) / target_norm)


def condition_phases(phases: np.ndarray) -> np.ndarray:
    """Wrap phases into the canonical interval ``[0, 2*pi)``."""
    phases = np.asarray(phases, dtype=float)
    return np.mod(phases, 2.0 * np.pi)
