"""Random-number-generator plumbing.

Every stochastic component in the library accepts either ``None`` (fresh
default generator), an integer seed, or a ``numpy.random.Generator``.  This
keeps experiments reproducible without threading a generator everywhere.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for any accepted RNG specifier."""
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot interpret {rng!r} as a random generator")


def derive_worker_seed(root_seed: int, worker_index: int) -> int:
    """Deterministic per-worker seed derived from a root seed.

    Multi-process experiments (the serving fabric's worker replicas, the
    sweep process pools) need every worker's RNG stream to be (a) distinct
    from its siblings and (b) a pure function of ``(root_seed,
    worker_index)`` so a load test replays bit-for-bit across runs and
    across process boundaries.  The derivation routes through
    ``numpy.random.SeedSequence`` spawn keys — the same mechanism NumPy
    itself uses for independent child streams — so derived streams are
    statistically independent, unlike naive ``root_seed + worker_index``
    offsets.
    """
    if worker_index < 0:
        raise ValueError("worker_index must be >= 0")
    sequence = np.random.SeedSequence(
        entropy=int(root_seed), spawn_key=(int(worker_index),)
    )
    return int(sequence.generate_state(1, dtype=np.uint64)[0])
