"""Random-number-generator plumbing.

Every stochastic component in the library accepts either ``None`` (fresh
default generator), an integer seed, or a ``numpy.random.Generator``.  This
keeps experiments reproducible without threading a generator everywhere.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for any accepted RNG specifier."""
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot interpret {rng!r} as a random generator")
