"""repro: reproduction of "Neuromorphic architectures based on augmented
silicon photonics platforms" (DAC 2024, NEUROPULS project).

The package is organised bottom-up, mirroring the paper:

* ``repro.materials`` / ``repro.devices`` — the augmented SiPh platform
  (PCM, III-V, MZIs, modulators, detectors, excitable lasers).
* ``repro.mesh`` — programmable MZI mesh architectures (Clements, Reck,
  compact Clements, Fldzhyan) with decomposition, expressivity and
  robustness analysis.
* ``repro.core`` — the photonic in-memory MVM/GeMM accelerator, photonic
  neural-network inference, calibration, and speed/energy/footprint models.
* ``repro.snn`` — the photonic spiking substrate (excitable lasers, PCM
  synapses, STDP).
* ``repro.system`` — the gem5-style full-system simulator (RISC-V CPU,
  MMRs, DMA, interrupts, DSAs, fault injection).
* ``repro.eval`` — workloads, metrics, sweeps and report formatting for
  the paper's experiments.
* ``repro.serving`` — the asyncio inference serving runtime (request
  queues, dynamic micro-batching, multi-replica scheduling, telemetry and
  traffic generation) layered on the execution backends and the SoC.
"""

__version__ = "0.1.0"

from repro import materials, devices, mesh, core, snn, system, utils, serving  # noqa: F401
from repro import eval as evaluation  # noqa: F401  ("eval" shadows the builtin, alias it)

__all__ = [
    "materials",
    "devices",
    "mesh",
    "core",
    "snn",
    "system",
    "utils",
    "evaluation",
    "serving",
    "__version__",
]
