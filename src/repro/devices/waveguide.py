"""Passive waveguide model: loss, phase and group delay."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.materials.silicon import SiliconWaveguideMaterial
from repro.utils.units import loss_db_per_cm_to_alpha


@dataclass
class Waveguide:
    """A straight silicon waveguide section.

    Attributes:
        length: physical length [m].
        material: SOI material model providing indices and loss.
    """

    length: float
    material: SiliconWaveguideMaterial = field(default_factory=SiliconWaveguideMaterial)

    def __post_init__(self):
        if self.length < 0.0:
            raise ValueError("waveguide length must be non-negative")

    @property
    def power_transmission(self) -> float:
        """Fraction of optical power surviving propagation."""
        alpha = loss_db_per_cm_to_alpha(self.material.propagation_loss_db_per_cm)
        return float(np.exp(-alpha * self.length))

    @property
    def field_transmission(self) -> complex:
        """Complex field transfer coefficient (amplitude and phase)."""
        phase = (
            2.0
            * np.pi
            * self.material.effective_index
            * self.length
            / self.material.wavelength
        )
        return complex(np.sqrt(self.power_transmission) * np.exp(1j * phase))

    @property
    def delay(self) -> float:
        """Group delay through the waveguide [s]."""
        return self.material.propagation_delay(self.length)

    def propagate(self, field_in: complex) -> complex:
        """Apply the waveguide transfer function to an input field."""
        return field_in * self.field_transmission
