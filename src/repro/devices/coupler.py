"""Directional coupler (2x2 beamsplitter) model.

The couplers in an MZI mesh are nominally 50:50.  Fabrication variations
perturb the splitting ratio, which is one of the dominant error sources the
robustness study (experiment E3) sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def coupler_blocks(ratios: np.ndarray, field_transmission: float = 1.0) -> np.ndarray:
    """Batched directional-coupler matrices for an array of splitting ratios.

    Uses the standard symmetric convention with a ``j`` on the cross terms
    so that a lossless coupler is unitary:

        [[ t,  j*k ],
         [ j*k,  t ]]   with t = sqrt(1 - r), k = sqrt(r).

    This is the single definition of the coupler model — the scalar
    :attr:`DirectionalCoupler.transfer_matrix` and the batched mesh forward
    model both evaluate it.
    """
    ratios = np.asarray(ratios, dtype=float)
    cross = np.sqrt(ratios)
    bar = np.sqrt(1.0 - ratios)
    blocks = np.empty(ratios.shape + (2, 2), dtype=complex)
    blocks[..., 0, 0] = bar
    blocks[..., 0, 1] = 1j * cross
    blocks[..., 1, 0] = 1j * cross
    blocks[..., 1, 1] = bar
    return field_transmission * blocks


@dataclass(frozen=True)
class DirectionalCoupler:
    """A lossy 2x2 directional coupler.

    Attributes:
        power_splitting_ratio: fraction of power coupled to the cross port
            (0.5 for a perfect 50:50 coupler).
        insertion_loss_db: excess loss applied equally to both outputs.
    """

    power_splitting_ratio: float = 0.5
    insertion_loss_db: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.power_splitting_ratio <= 1.0:
            raise ValueError("power_splitting_ratio must lie in [0, 1]")
        if self.insertion_loss_db < 0.0:
            raise ValueError("insertion_loss_db must be non-negative")

    @property
    def field_transmission(self) -> float:
        """Field amplitude factor from the excess insertion loss."""
        return float(10.0 ** (-self.insertion_loss_db / 20.0))

    @property
    def transfer_matrix(self) -> np.ndarray:
        """Complex 2x2 transfer matrix of the coupler (see :func:`coupler_blocks`)."""
        return coupler_blocks(
            np.atleast_1d(self.power_splitting_ratio), self.field_transmission
        )[0]

    def with_ratio_error(self, delta: float) -> "DirectionalCoupler":
        """Return a copy with the splitting ratio perturbed by ``delta``.

        The perturbed ratio is clipped into [0, 1] so large error sweeps
        remain physical.
        """
        ratio = float(np.clip(self.power_splitting_ratio + delta, 0.0, 1.0))
        return DirectionalCoupler(
            power_splitting_ratio=ratio, insertion_loss_db=self.insertion_loss_db
        )
