"""Phase shifter models: volatile thermo-optic and non-volatile PCM.

The central device-level argument of the paper is that thermo-optic phase
shifters burn static electrical power to *hold* a programmed weight, while
PCM phase shifters hold it for free (non-volatile) at the cost of discrete
programming levels, programming energy, and a small excess optical loss.
Both device types expose the same interface so the mesh and energy models
can swap them transparently.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.materials.pcm import GSST, PCMMaterial
from repro.materials.silicon import SiliconWaveguideMaterial


@dataclass
class PhaseShifter:
    """Abstract phase shifter: a programmable single-mode phase element.

    Attributes:
        phase: programmed phase [rad], stored wrapped to [0, 2*pi).
        insertion_loss_db: static insertion loss of the element.
    """

    phase: float = 0.0
    insertion_loss_db: float = 0.0

    def __post_init__(self):
        if self.insertion_loss_db < 0.0:
            raise ValueError("insertion_loss_db must be non-negative")
        self.phase = float(np.mod(self.phase, 2.0 * np.pi))

    @property
    def is_volatile(self) -> bool:
        """Whether holding the phase costs static power."""
        raise NotImplementedError

    def set_phase(self, phase: float) -> float:
        """Program a new phase; returns the actually realised phase [rad]."""
        self.phase = float(np.mod(phase, 2.0 * np.pi))
        return self.phase

    @property
    def field_transmission(self) -> complex:
        """Complex field transfer coefficient of the programmed element."""
        amplitude = 10.0 ** (-self.total_loss_db / 20.0)
        return complex(amplitude * np.exp(1j * self.phase))

    @property
    def total_loss_db(self) -> float:
        """Total optical loss in dB for the current programmed state."""
        return self.insertion_loss_db

    def static_power(self) -> float:
        """Electrical power [W] required to hold the programmed phase."""
        raise NotImplementedError

    def programming_energy(self, previous_phase: Optional[float] = None) -> float:
        """Energy [J] to program the current phase from ``previous_phase``."""
        raise NotImplementedError


@dataclass
class ThermoOpticPhaseShifter(PhaseShifter):
    """Volatile thermo-optic phase shifter (heater over an SOI waveguide).

    Attributes:
        material: SOI material model providing the per-pi heater power.
        response_time: thermal time constant [s], limits reprogram rate.
    """

    material: SiliconWaveguideMaterial = field(default_factory=SiliconWaveguideMaterial)
    response_time: float = 10e-6
    insertion_loss_db: float = 0.05

    @property
    def is_volatile(self) -> bool:
        return True

    def static_power(self) -> float:
        """Holding power is proportional to the programmed phase."""
        return self.material.heater_power_for_phase(self.phase)

    def programming_energy(self, previous_phase: Optional[float] = None) -> float:
        """Energy of one reprogramming step.

        Approximated as the new holding power integrated over one thermal
        time constant (the energy needed to settle the heater).
        """
        return self.static_power() * self.response_time


@dataclass
class PCMPhaseShifter(PhaseShifter):
    """Non-volatile multilevel PCM phase shifter.

    The phase is set by partially crystallising a PCM patch of a given
    length on top of the waveguide.  Only ``n_levels`` discrete crystalline
    fractions are reachable, so programmed phases are quantised; the excess
    optical absorption of the crystalline phase contributes a
    state-dependent loss.

    Attributes:
        material: PCM material model.
        patch_length: length of the PCM patch along the waveguide [m].
        patch_cross_section_um2: patch cross-section [um^2] (for switching
            energy).
        confinement: modal overlap with the PCM patch.
        n_levels: number of programmable levels.
        full_range_phase: phase reached at 100% crystallisation [rad].
            If ``None`` it is derived from the material and geometry.
    """

    material: PCMMaterial = field(default_factory=lambda: GSST)
    patch_length: float = 9e-6
    patch_cross_section_um2: float = 0.08
    confinement: float = 0.1
    n_levels: int = 16
    full_range_phase: Optional[float] = None
    insertion_loss_db: float = 0.1

    def __post_init__(self):
        super().__post_init__()
        if self.n_levels < 2:
            raise ValueError("a PCM phase shifter needs at least 2 levels")
        if self.patch_length <= 0.0:
            raise ValueError("patch_length must be positive")
        if self.full_range_phase is None:
            self.full_range_phase = abs(
                self.material.phase_shift_per_length(1.0, self.confinement)
                * self.patch_length
            )
        self._level = 0
        self._crystalline_fraction = 0.0
        # Re-apply the initial phase through the quantiser.
        self.set_phase(self.phase)

    @property
    def is_volatile(self) -> bool:
        return False

    @property
    def level(self) -> int:
        """Currently programmed discrete level index."""
        return self._level

    @property
    def crystalline_fraction(self) -> float:
        """Crystalline fraction of the currently programmed level."""
        return self._crystalline_fraction

    @property
    def phase_levels(self) -> np.ndarray:
        """The reachable phase values [rad], one per level."""
        fractions = self.material.level_fractions(self.n_levels)
        return np.array(
            [
                abs(
                    self.material.phase_shift_per_length(f, self.confinement)
                    * self.patch_length
                )
                for f in fractions
            ]
        )

    def set_phase(self, phase: float) -> float:
        """Program the closest reachable phase level.

        The requested phase is first folded into the reachable range
        ``[0, full_range_phase]`` modulo 2*pi; phases beyond the full range
        saturate at the maximum level.  Returns the realised phase.
        """
        requested = float(np.mod(phase, 2.0 * np.pi))
        levels = self.phase_levels
        reachable = np.minimum(requested, levels[-1]) if levels[-1] > 0 else 0.0
        self._level = int(np.argmin(np.abs(levels - reachable)))
        self._crystalline_fraction = float(
            self.material.level_fractions(self.n_levels)[self._level]
        )
        self.phase = float(levels[self._level])
        return self.phase

    @property
    def total_loss_db(self) -> float:
        """Insertion loss plus the state-dependent PCM absorption."""
        alpha = self.material.absorption_per_length(
            self._crystalline_fraction, self.confinement
        )
        pcm_loss_db = 10.0 * np.log10(np.e) * alpha * self.patch_length
        return self.insertion_loss_db + max(pcm_loss_db, 0.0)

    def static_power(self) -> float:
        """Non-volatile: holding the phase costs no electrical power."""
        return 0.0

    def programming_energy(self, previous_phase: Optional[float] = None) -> float:
        """Energy of one programming operation.

        A programming operation is only needed when the level changes; its
        energy is the material switching energy for the patch volume.  When
        ``previous_phase`` is ``None`` a full (re)programming is assumed.
        """
        if previous_phase is not None:
            levels = self.phase_levels
            previous_level = int(
                np.argmin(np.abs(levels - np.minimum(np.mod(previous_phase, 2 * np.pi), levels[-1])))
            )
            if previous_level == self._level:
                return 0.0
        volume_um3 = self.patch_cross_section_um2 * self.patch_length * 1e6
        return self.material.switching_energy(volume_um3)

    def quantize(self, phase: float) -> float:
        """Return the phase the device would realise for ``phase`` without programming it."""
        saved_level = self._level
        saved_fraction = self._crystalline_fraction
        saved_phase = self.phase
        realized = self.set_phase(phase)
        self._level = saved_level
        self._crystalline_fraction = saved_fraction
        self.phase = saved_phase
        return realized
