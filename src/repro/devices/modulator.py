"""High-speed Mach-Zehnder modulator (MZM) used as the input vector encoder.

Input vectors are encoded onto the optical amplitudes of the mesh inputs by
an array of high-speed (>50 GHz in the paper's platform) MZMs driven by
DACs.  The model captures the three non-idealities that matter at the
architecture level: finite DAC resolution, finite extinction ratio, and
modulator insertion loss.  Energy per symbol feeds the accelerator energy
model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MachZehnderModulator:
    """Amplitude modulator with a DAC driver.

    Attributes:
        dac_bits: DAC resolution in bits (amplitude levels = 2**bits).
        extinction_ratio_db: ratio between maximum and minimum transmitted
            power; limits how close to zero an encoded value can get.
        insertion_loss_db: optical insertion loss.
        bandwidth_hz: 3-dB electro-optic bandwidth; sets the symbol rate.
        energy_per_symbol: electrical energy per encoded symbol [J]
            (driver + DAC), typical tens of fJ for SiPh MZMs.
    """

    dac_bits: int = 8
    extinction_ratio_db: float = 30.0
    insertion_loss_db: float = 3.0
    bandwidth_hz: float = 50e9
    energy_per_symbol: float = 50e-15

    def __post_init__(self):
        if self.dac_bits < 1:
            raise ValueError("dac_bits must be >= 1")
        if self.extinction_ratio_db <= 0.0:
            raise ValueError("extinction_ratio_db must be positive")

    @property
    def symbol_rate(self) -> float:
        """Maximum symbol rate [baud], taken as the EO bandwidth."""
        return self.bandwidth_hz

    @property
    def minimum_amplitude(self) -> float:
        """Smallest encodable field amplitude (extinction-ratio floor)."""
        return float(10.0 ** (-self.extinction_ratio_db / 20.0))

    @property
    def field_transmission(self) -> float:
        """Peak field transmission (insertion loss only)."""
        return float(10.0 ** (-self.insertion_loss_db / 20.0))

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Encode normalised values in [0, 1] into output field amplitudes.

        Values are quantised to the DAC grid, floored at the extinction
        limit, and scaled by the insertion loss.  Values outside [0, 1]
        raise ``ValueError`` — the accelerator layer is responsible for
        normalising its inputs.
        """
        values = np.asarray(values, dtype=float)
        if np.any(values < 0.0) or np.any(values > 1.0 + 1e-12):
            raise ValueError("modulator inputs must be normalised into [0, 1]")
        n_levels = 2 ** self.dac_bits
        quantized = np.round(np.clip(values, 0.0, 1.0) * (n_levels - 1)) / (n_levels - 1)
        floored = np.maximum(quantized, self.minimum_amplitude * (quantized > 0))
        # keep exact zeros at the extinction floor rather than zero
        floored = np.where(quantized == 0.0, self.minimum_amplitude, floored)
        return self.field_transmission * floored

    def encoding_energy(self, n_symbols: int) -> float:
        """Total driver energy [J] to encode ``n_symbols`` symbols."""
        if n_symbols < 0:
            raise ValueError("n_symbols must be non-negative")
        return self.energy_per_symbol * n_symbols
