"""Photonic device models for the augmented SOI platform.

Every device exposes either a (complex) transfer matrix / transfer function
used by the mesh and accelerator layers, or a time-domain model used by the
spiking substrate, plus energy and footprint figures used by the
system-level simulator.
"""

from repro.devices.waveguide import Waveguide
from repro.devices.coupler import DirectionalCoupler
from repro.devices.phase_shifter import (
    PhaseShifter,
    ThermoOpticPhaseShifter,
    PCMPhaseShifter,
)
from repro.devices.mzi import MachZehnderInterferometer
from repro.devices.modulator import MachZehnderModulator
from repro.devices.photodetector import Photodetector
from repro.devices.laser import CWLaser, ExcitableLaser, YamadaModel
from repro.devices.pcm_cell import PCMSynapticCell

__all__ = [
    "Waveguide",
    "DirectionalCoupler",
    "PhaseShifter",
    "ThermoOpticPhaseShifter",
    "PCMPhaseShifter",
    "MachZehnderInterferometer",
    "MachZehnderModulator",
    "Photodetector",
    "CWLaser",
    "ExcitableLaser",
    "YamadaModel",
    "PCMSynapticCell",
]
