"""Mach-Zehnder interferometer (MZI): the mesh unit cell.

An MZI is two directional couplers with an internal phase shifter (theta)
between them and an external phase shifter (phi) on one input arm.  With
ideal 50:50 couplers its transfer matrix is an SU(2) rotation (up to a
global phase), which is why meshes of MZIs can realise arbitrary unitaries.
This module provides both the ideal parametric matrix used by the
decomposition algorithms and the physical device model (lossy couplers,
quantised PCM phases, coupler imbalance) used by the error studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.devices.coupler import DirectionalCoupler
from repro.devices.phase_shifter import PhaseShifter, ThermoOpticPhaseShifter


def ideal_mzi_matrix(theta: float, phi: float) -> np.ndarray:
    """Ideal 2x2 MZI transfer matrix in the Clements convention.

    ``T(theta, phi) = [[e^{i phi} cos(theta), -sin(theta)],
                       [e^{i phi} sin(theta),  cos(theta)]]``

    ``theta`` in [0, pi/2] sets the splitting, ``phi`` in [0, 2 pi) the
    relative input phase.  This is the algebraic form used by the Clements
    and Reck decompositions; the physical device realises it up to a global
    phase that is irrelevant for intensity detection.
    """
    cos_t = np.cos(theta)
    sin_t = np.sin(theta)
    phase = np.exp(1j * phi)
    return np.array(
        [[phase * cos_t, -sin_t], [phase * sin_t, cos_t]], dtype=complex
    )


def physical_mzi_matrix(
    theta: float,
    phi: float,
    coupler_in: Optional[DirectionalCoupler] = None,
    coupler_out: Optional[DirectionalCoupler] = None,
    arm_loss_db: float = 0.0,
) -> np.ndarray:
    """Transfer matrix of a physical MZI built from two couplers.

    The physical device is ``C_out . diag(e^{i 2 theta}, 1) . C_in .
    diag(e^{i phi}, 1)`` — internal differential phase ``2*theta`` between
    the arms and external phase ``phi`` on the top input.  With ideal 50:50
    couplers this equals ``i e^{i theta} . X . T(theta, phi)`` with ``T``
    the ideal matrix above and ``X`` the port swap — the same linear
    operation once the (deterministic, layout-level) output relabelling and
    reference phase are absorbed, which is what any physical mesh
    implementation does.  The returned matrix is expressed in the ideal
    convention, i.e. that deterministic factor is divided out, so that a
    perfect device reproduces :func:`ideal_mzi_matrix` exactly and coupler
    imbalance or arm loss shows up purely as a deviation from it — which is
    what the robustness experiments measure.
    """
    coupler_in = coupler_in if coupler_in is not None else DirectionalCoupler()
    coupler_out = coupler_out if coupler_out is not None else DirectionalCoupler()
    arm_amplitude = 10.0 ** (-arm_loss_db / 20.0)
    internal = np.diag(
        [arm_amplitude * np.exp(2j * theta), arm_amplitude]
    ).astype(complex)
    external = np.diag([np.exp(1j * phi), 1.0]).astype(complex)
    raw = coupler_out.transfer_matrix @ internal @ coupler_in.transfer_matrix @ external
    # Undo the nominal port swap and the theta-dependent reference phase of
    # the ideal device so the result lives in the Clements convention.
    swap = np.array([[0.0, 1.0], [1.0, 0.0]], dtype=complex)
    correction = np.exp(-1j * (np.pi / 2.0 + theta))
    return correction * (swap @ raw)


@dataclass
class MachZehnderInterferometer:
    """A physical MZI with explicit phase-shifter devices.

    Attributes:
        theta_shifter: phase shifter realising the internal phase
            (programmed to ``2*theta``).
        phi_shifter: phase shifter realising the external phase ``phi``.
        coupler_in / coupler_out: the two directional couplers.
        arm_loss_db: excess loss per arm (routing waveguides).
    """

    theta_shifter: PhaseShifter = field(default_factory=ThermoOpticPhaseShifter)
    phi_shifter: PhaseShifter = field(default_factory=ThermoOpticPhaseShifter)
    coupler_in: DirectionalCoupler = field(default_factory=DirectionalCoupler)
    coupler_out: DirectionalCoupler = field(default_factory=DirectionalCoupler)
    arm_loss_db: float = 0.0

    def program(self, theta: float, phi: float) -> tuple:
        """Program the MZI; returns the (theta, phi) actually realised.

        The theta shifter stores ``2*theta`` (the physical differential
        phase); quantisation by a PCM shifter therefore quantises theta in
        steps of half the device phase resolution.
        """
        realized_internal = self.theta_shifter.set_phase(2.0 * theta)
        realized_phi = self.phi_shifter.set_phase(phi)
        return realized_internal / 2.0, realized_phi

    @property
    def theta(self) -> float:
        """Currently programmed theta [rad]."""
        return self.theta_shifter.phase / 2.0

    @property
    def phi(self) -> float:
        """Currently programmed phi [rad]."""
        return self.phi_shifter.phase

    @property
    def transfer_matrix(self) -> np.ndarray:
        """Physical transfer matrix including losses and quantisation."""
        shifter_loss_db = self.theta_shifter.total_loss_db + self.phi_shifter.total_loss_db
        return physical_mzi_matrix(
            self.theta,
            self.phi,
            coupler_in=self.coupler_in,
            coupler_out=self.coupler_out,
            arm_loss_db=self.arm_loss_db + shifter_loss_db / 2.0,
        )

    @property
    def ideal_matrix(self) -> np.ndarray:
        """Ideal (lossless, unquantised-target) matrix for the programmed phases."""
        return ideal_mzi_matrix(self.theta, self.phi)

    def static_power(self) -> float:
        """Static electrical power [W] to hold the programmed state."""
        return self.theta_shifter.static_power() + self.phi_shifter.static_power()

    def programming_energy(self) -> float:
        """Energy [J] of programming both shifters once."""
        return self.theta_shifter.programming_energy() + self.phi_shifter.programming_energy()
