"""Mach-Zehnder interferometer (MZI): the mesh unit cell.

An MZI is two directional couplers with an internal phase shifter (theta)
between them and an external phase shifter (phi) on one input arm.  With
ideal 50:50 couplers its transfer matrix is an SU(2) rotation (up to a
global phase), which is why meshes of MZIs can realise arbitrary unitaries.
This module provides both the ideal parametric matrix used by the
decomposition algorithms and the physical device model (lossy couplers,
quantised PCM phases, coupler imbalance) used by the error studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.devices.coupler import DirectionalCoupler, coupler_blocks
from repro.devices.phase_shifter import PhaseShifter, ThermoOpticPhaseShifter


def ideal_mzi_matrix(theta: float, phi: float) -> np.ndarray:
    """Ideal 2x2 MZI transfer matrix in the Clements convention.

    ``T(theta, phi) = [[e^{i phi} cos(theta), -sin(theta)],
                       [e^{i phi} sin(theta),  cos(theta)]]``

    ``theta`` in [0, pi/2] sets the splitting, ``phi`` in [0, 2 pi) the
    relative input phase.  This is the algebraic form used by the Clements
    and Reck decompositions; the physical device realises it up to a global
    phase that is irrelevant for intensity detection.
    """
    return ideal_mzi_blocks(np.atleast_1d(float(theta)), np.atleast_1d(float(phi)))[0]


def ideal_mzi_blocks(thetas: np.ndarray, phis: np.ndarray) -> np.ndarray:
    """Batched ideal MZI matrices: a ``(K, 2, 2)`` stack of :func:`ideal_mzi_matrix`.

    This is the vectorized form the mesh forward model consumes — all K
    blocks of a mesh are built with a handful of array operations instead of
    K Python-level constructor calls.
    """
    thetas = np.asarray(thetas, dtype=float)
    phis = np.asarray(phis, dtype=float)
    cos_t = np.cos(thetas)
    sin_t = np.sin(thetas)
    phase = np.exp(1j * phis)
    blocks = np.empty(thetas.shape + (2, 2), dtype=complex)
    blocks[..., 0, 0] = phase * cos_t
    blocks[..., 0, 1] = -sin_t
    blocks[..., 1, 0] = phase * sin_t
    blocks[..., 1, 1] = cos_t
    return blocks


def physical_mzi_blocks(
    thetas: np.ndarray,
    phis: np.ndarray,
    ratios_in: Optional[np.ndarray] = None,
    ratios_out: Optional[np.ndarray] = None,
    arm_loss_db: float = 0.0,
    coupler_transmission_in: float = 1.0,
    coupler_transmission_out: float = 1.0,
) -> np.ndarray:
    """Batched physical MZI matrices: a ``(K, 2, 2)`` stack of
    :func:`physical_mzi_matrix`.

    ``ratios_in``/``ratios_out`` are per-MZI coupler power splitting ratios
    (default: perfect 50:50); the ``coupler_transmission_*`` factors carry
    any coupler excess loss.  The same convention correction is applied as
    in the scalar function, so with ideal parameters the blocks coincide
    with :func:`ideal_mzi_blocks`.  This is the single implementation of
    the physical MZI model — the scalar :func:`physical_mzi_matrix` wraps
    it with a stack of one.
    """
    thetas = np.asarray(thetas, dtype=float)
    phis = np.asarray(phis, dtype=float)
    k = thetas.shape[0]
    if ratios_in is None:
        ratios_in = np.full(k, 0.5)
    if ratios_out is None:
        ratios_out = np.full(k, 0.5)
    arm_amplitude = 10.0 ** (-arm_loss_db / 20.0)

    c_in = coupler_blocks(ratios_in, coupler_transmission_in)
    c_out = coupler_blocks(ratios_out, coupler_transmission_out)
    internal = np.zeros((k, 2, 2), dtype=complex)
    internal[:, 0, 0] = arm_amplitude * np.exp(2j * thetas)
    internal[:, 1, 1] = arm_amplitude
    external = np.zeros((k, 2, 2), dtype=complex)
    external[:, 0, 0] = np.exp(1j * phis)
    external[:, 1, 1] = 1.0

    raw = c_out @ internal @ c_in @ external
    correction = np.exp(-1j * (np.pi / 2.0 + thetas))
    # swap @ raw exchanges the two rows of every block.
    swapped = raw[:, ::-1, :]
    return correction[:, None, None] * swapped


def physical_mzi_matrix(
    theta: float,
    phi: float,
    coupler_in: Optional[DirectionalCoupler] = None,
    coupler_out: Optional[DirectionalCoupler] = None,
    arm_loss_db: float = 0.0,
) -> np.ndarray:
    """Transfer matrix of a physical MZI built from two couplers.

    The physical device is ``C_out . diag(e^{i 2 theta}, 1) . C_in .
    diag(e^{i phi}, 1)`` — internal differential phase ``2*theta`` between
    the arms and external phase ``phi`` on the top input.  With ideal 50:50
    couplers this equals ``i e^{i theta} . X . T(theta, phi)`` with ``T``
    the ideal matrix above and ``X`` the port swap — the same linear
    operation once the (deterministic, layout-level) output relabelling and
    reference phase are absorbed, which is what any physical mesh
    implementation does.  The returned matrix is expressed in the ideal
    convention, i.e. that deterministic factor is divided out, so that a
    perfect device reproduces :func:`ideal_mzi_matrix` exactly and coupler
    imbalance or arm loss shows up purely as a deviation from it — which is
    what the robustness experiments measure.
    """
    coupler_in = coupler_in if coupler_in is not None else DirectionalCoupler()
    coupler_out = coupler_out if coupler_out is not None else DirectionalCoupler()
    return physical_mzi_blocks(
        np.atleast_1d(float(theta)),
        np.atleast_1d(float(phi)),
        ratios_in=np.atleast_1d(coupler_in.power_splitting_ratio),
        ratios_out=np.atleast_1d(coupler_out.power_splitting_ratio),
        arm_loss_db=arm_loss_db,
        coupler_transmission_in=coupler_in.field_transmission,
        coupler_transmission_out=coupler_out.field_transmission,
    )[0]


@dataclass
class MachZehnderInterferometer:
    """A physical MZI with explicit phase-shifter devices.

    Attributes:
        theta_shifter: phase shifter realising the internal phase
            (programmed to ``2*theta``).
        phi_shifter: phase shifter realising the external phase ``phi``.
        coupler_in / coupler_out: the two directional couplers.
        arm_loss_db: excess loss per arm (routing waveguides).
    """

    theta_shifter: PhaseShifter = field(default_factory=ThermoOpticPhaseShifter)
    phi_shifter: PhaseShifter = field(default_factory=ThermoOpticPhaseShifter)
    coupler_in: DirectionalCoupler = field(default_factory=DirectionalCoupler)
    coupler_out: DirectionalCoupler = field(default_factory=DirectionalCoupler)
    arm_loss_db: float = 0.0

    def program(self, theta: float, phi: float) -> tuple:
        """Program the MZI; returns the (theta, phi) actually realised.

        The theta shifter stores ``2*theta`` (the physical differential
        phase); quantisation by a PCM shifter therefore quantises theta in
        steps of half the device phase resolution.
        """
        realized_internal = self.theta_shifter.set_phase(2.0 * theta)
        realized_phi = self.phi_shifter.set_phase(phi)
        return realized_internal / 2.0, realized_phi

    @property
    def theta(self) -> float:
        """Currently programmed theta [rad]."""
        return self.theta_shifter.phase / 2.0

    @property
    def phi(self) -> float:
        """Currently programmed phi [rad]."""
        return self.phi_shifter.phase

    @property
    def transfer_matrix(self) -> np.ndarray:
        """Physical transfer matrix including losses and quantisation."""
        shifter_loss_db = self.theta_shifter.total_loss_db + self.phi_shifter.total_loss_db
        return physical_mzi_matrix(
            self.theta,
            self.phi,
            coupler_in=self.coupler_in,
            coupler_out=self.coupler_out,
            arm_loss_db=self.arm_loss_db + shifter_loss_db / 2.0,
        )

    @property
    def ideal_matrix(self) -> np.ndarray:
        """Ideal (lossless, unquantised-target) matrix for the programmed phases."""
        return ideal_mzi_matrix(self.theta, self.phi)

    def static_power(self) -> float:
        """Static electrical power [W] to hold the programmed state."""
        return self.theta_shifter.static_power() + self.phi_shifter.static_power()

    def programming_energy(self) -> float:
        """Energy [J] of programming both shifters once."""
        return self.theta_shifter.programming_energy() + self.phi_shifter.programming_energy()
