"""PCM synaptic cell with pulse-accumulation behaviour.

Section 3 of the paper highlights the accumulation response of PCM devices
to optical pulses: each sub-threshold pulse partially crystallises (or
amorphises) the patch, so the transmitted power through the cell integrates
the pulse history.  This is the plastic synapse of the photonic SNN, and
the physical substrate STDP acts on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.materials.pcm import GSST, PCMMaterial


@dataclass
class PCMSynapticCell:
    """A PCM cell used as a photonic synaptic weight.

    The synaptic weight is the optical power transmission of the cell,
    which decreases as the crystalline fraction grows (the crystalline
    phase absorbs more).  Optical or electrical pulses nudge the
    crystalline fraction up (SET/crystallise, weight depression) or down
    (RESET/amorphise, weight potentiation); the mapping between weight and
    fraction is monotonic so the STDP rule can work directly on weights.

    Attributes:
        material: PCM material model.
        patch_length: optical interaction length [m].
        confinement: modal overlap with the PCM patch.
        crystalline_fraction: current programmed fraction in [0, 1].
        pulse_crystallization_step: fraction change per depressing pulse.
        pulse_amorphization_step: fraction change per potentiating pulse.
        drift_rate: slow spontaneous relaxation of the fraction per unit
            time (models resistance/transmission drift); 0 disables drift.
    """

    material: PCMMaterial = field(default_factory=lambda: GSST)
    patch_length: float = 5e-6
    confinement: float = 0.1
    crystalline_fraction: float = 0.5
    pulse_crystallization_step: float = 0.05
    pulse_amorphization_step: float = 0.05
    drift_rate: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.crystalline_fraction <= 1.0:
            raise ValueError("crystalline_fraction must lie in [0, 1]")
        if self.pulse_crystallization_step < 0 or self.pulse_amorphization_step < 0:
            raise ValueError("pulse steps must be non-negative")

    @property
    def transmission(self) -> float:
        """Optical power transmission of the cell in its current state."""
        alpha = self.material.absorption_per_length(
            self.crystalline_fraction, self.confinement
        )
        return float(np.exp(-max(alpha, 0.0) * self.patch_length))

    @property
    def weight(self) -> float:
        """Normalised synaptic weight in [0, 1].

        Defined as the cell transmission normalised between the fully
        crystalline (weight 0) and fully amorphous (weight 1) states.
        """
        t_min = self._transmission_at(1.0)
        t_max = self._transmission_at(0.0)
        if t_max == t_min:
            return 1.0
        return float((self.transmission - t_min) / (t_max - t_min))

    def _transmission_at(self, fraction: float) -> float:
        alpha = self.material.absorption_per_length(fraction, self.confinement)
        return float(np.exp(-max(alpha, 0.0) * self.patch_length))

    def apply_crystallization_pulses(self, n_pulses: int = 1) -> float:
        """Apply depressing pulses (partial crystallisation); returns new weight."""
        if n_pulses < 0:
            raise ValueError("n_pulses must be non-negative")
        self.crystalline_fraction = float(
            np.clip(
                self.crystalline_fraction + n_pulses * self.pulse_crystallization_step,
                0.0,
                1.0,
            )
        )
        return self.weight

    def apply_amorphization_pulses(self, n_pulses: int = 1) -> float:
        """Apply potentiating pulses (partial amorphisation); returns new weight."""
        if n_pulses < 0:
            raise ValueError("n_pulses must be non-negative")
        self.crystalline_fraction = float(
            np.clip(
                self.crystalline_fraction - n_pulses * self.pulse_amorphization_step,
                0.0,
                1.0,
            )
        )
        return self.weight

    def adjust_weight(self, delta_weight: float) -> float:
        """Apply a signed weight update (used by the STDP rule).

        Positive deltas potentiate (amorphise), negative deltas depress
        (crystallise).  The update is applied through the pulse mechanism:
        the number of pulses is the delta divided by the per-pulse weight
        change, rounded to the nearest integer, so arbitrarily fine updates
        are *not* possible — exactly the granularity limit of real PCM.
        """
        if delta_weight == 0.0:
            return self.weight
        if delta_weight > 0:
            per_pulse = self._weight_change_per_pulse(potentiate=True)
            n_pulses = int(round(delta_weight / per_pulse)) if per_pulse > 0 else 0
            return self.apply_amorphization_pulses(max(n_pulses, 0))
        per_pulse = self._weight_change_per_pulse(potentiate=False)
        n_pulses = int(round(-delta_weight / per_pulse)) if per_pulse > 0 else 0
        return self.apply_crystallization_pulses(max(n_pulses, 0))

    def _weight_change_per_pulse(self, potentiate: bool) -> float:
        """Approximate |weight change| of one pulse around the current state."""
        original = self.crystalline_fraction
        step = (
            -self.pulse_amorphization_step if potentiate else self.pulse_crystallization_step
        )
        probe = float(np.clip(original + step, 0.0, 1.0))
        w_now = self.weight
        self.crystalline_fraction = probe
        w_probe = self.weight
        self.crystalline_fraction = original
        return abs(w_probe - w_now)

    def apply_drift(self, duration: float) -> float:
        """Relax the crystalline fraction toward amorphous for ``duration`` [s]."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self.crystalline_fraction = float(
            np.clip(self.crystalline_fraction - self.drift_rate * duration, 0.0, 1.0)
        )
        return self.weight

    def programming_energy(self, n_pulses: int = 1) -> float:
        """Energy [J] of ``n_pulses`` programming pulses."""
        volume_um3 = 0.05 * self.patch_length * 1e6
        return n_pulses * self.material.switching_energy(volume_um3)
