"""PCM synaptic cell with pulse-accumulation behaviour.

Section 3 of the paper highlights the accumulation response of PCM devices
to optical pulses: each sub-threshold pulse partially crystallises (or
amorphises) the patch, so the transmitted power through the cell integrates
the pulse history.  This is the plastic synapse of the photonic SNN, and
the physical substrate STDP acts on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.materials.pcm import GSST, PCMMaterial


def pcm_transmission(
    material: PCMMaterial, fractions, confinement: float, patch_length: float
):
    """Optical power transmission of PCM patches (scalar or array of fractions).

    This is the single fraction -> transmission kernel shared by the scalar
    :class:`PCMSynapticCell` and the array-backed synapse state.
    """
    alpha = material.absorption_per_length(fractions, confinement)
    return np.exp(-np.maximum(alpha, 0.0) * patch_length)


def pcm_normalized_weight(
    material: PCMMaterial,
    fractions,
    confinement: float,
    patch_length: float,
    t_min: float = None,
    t_max: float = None,
):
    """Normalised synaptic weight in [0, 1] for PCM patches.

    The transmission is normalised between the fully crystalline (weight 0)
    and fully amorphous (weight 1) states; the bounds can be passed in when
    the caller caches them.
    """
    if t_min is None:
        t_min = float(pcm_transmission(material, 1.0, confinement, patch_length))
    if t_max is None:
        t_max = float(pcm_transmission(material, 0.0, confinement, patch_length))
    transmission = pcm_transmission(material, fractions, confinement, patch_length)
    if t_max == t_min:
        return np.ones_like(np.asarray(fractions, dtype=float))
    return (transmission - t_min) / (t_max - t_min)


def pulse_granular_fraction_update(
    fractions,
    delta_weights,
    weight_of,
    crystallization_step: float,
    amorphization_step: float,
    current_weights=None,
):
    """Apply signed weight deltas through the PCM pulse mechanism (elementwise).

    ``weight_of`` maps fractions to weights.  The per-pulse weight change is
    probed around the current state, the pulse count is the delta divided by
    it rounded to the nearest integer, and the fraction moves by that many
    SET/RESET steps — so arbitrarily fine updates are impossible, exactly
    the granularity limit of real PCM.  Works on scalars and arrays alike;
    this is the single plasticity kernel behind both
    :meth:`PCMSynapticCell.adjust_weight` and ``SynapseArray``.

    ``current_weights`` lets a caller that already evaluated
    ``weight_of(fractions)`` (e.g. the SNN event loop, which needs the
    weights for the spike fan-out anyway) skip re-evaluating it here.
    """
    fractions = np.asarray(fractions, dtype=float)
    delta_weights = np.asarray(delta_weights, dtype=float)
    if current_weights is not None:
        w_now = np.asarray(current_weights, dtype=float)
    else:
        w_now = weight_of(fractions)
    probe_pot = np.clip(fractions - amorphization_step, 0.0, 1.0)
    per_pot = np.abs(weight_of(probe_pot) - w_now)
    probe_dep = np.clip(fractions + crystallization_step, 0.0, 1.0)
    per_dep = np.abs(weight_of(probe_dep) - w_now)

    safe_pot = np.where(per_pot > 0, per_pot, 1.0)
    safe_dep = np.where(per_dep > 0, per_dep, 1.0)
    n_pot = np.where(
        (delta_weights > 0) & (per_pot > 0), np.round(delta_weights / safe_pot), 0.0
    )
    n_dep = np.where(
        (delta_weights < 0) & (per_dep > 0), np.round(-delta_weights / safe_dep), 0.0
    )
    n_pot = np.maximum(n_pot, 0.0)
    n_dep = np.maximum(n_dep, 0.0)
    updated = fractions - n_pot * amorphization_step + n_dep * crystallization_step
    return np.clip(updated, 0.0, 1.0)


@dataclass
class PCMSynapticCell:
    """A PCM cell used as a photonic synaptic weight.

    The synaptic weight is the optical power transmission of the cell,
    which decreases as the crystalline fraction grows (the crystalline
    phase absorbs more).  Optical or electrical pulses nudge the
    crystalline fraction up (SET/crystallise, weight depression) or down
    (RESET/amorphise, weight potentiation); the mapping between weight and
    fraction is monotonic so the STDP rule can work directly on weights.

    Attributes:
        material: PCM material model.
        patch_length: optical interaction length [m].
        confinement: modal overlap with the PCM patch.
        crystalline_fraction: current programmed fraction in [0, 1].
        pulse_crystallization_step: fraction change per depressing pulse.
        pulse_amorphization_step: fraction change per potentiating pulse.
        drift_rate: slow spontaneous relaxation of the fraction per unit
            time (models resistance/transmission drift); 0 disables drift.
    """

    material: PCMMaterial = field(default_factory=lambda: GSST)
    patch_length: float = 5e-6
    confinement: float = 0.1
    crystalline_fraction: float = 0.5
    pulse_crystallization_step: float = 0.05
    pulse_amorphization_step: float = 0.05
    drift_rate: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.crystalline_fraction <= 1.0:
            raise ValueError("crystalline_fraction must lie in [0, 1]")
        if self.pulse_crystallization_step < 0 or self.pulse_amorphization_step < 0:
            raise ValueError("pulse steps must be non-negative")

    @property
    def transmission(self) -> float:
        """Optical power transmission of the cell in its current state."""
        return self._transmission_at(self.crystalline_fraction)

    @property
    def weight(self) -> float:
        """Normalised synaptic weight in [0, 1].

        Defined as the cell transmission normalised between the fully
        crystalline (weight 0) and fully amorphous (weight 1) states.
        """
        return float(
            pcm_normalized_weight(
                self.material, self.crystalline_fraction, self.confinement, self.patch_length
            )
        )

    def _transmission_at(self, fraction: float) -> float:
        return float(
            pcm_transmission(self.material, fraction, self.confinement, self.patch_length)
        )

    def apply_crystallization_pulses(self, n_pulses: int = 1) -> float:
        """Apply depressing pulses (partial crystallisation); returns new weight."""
        if n_pulses < 0:
            raise ValueError("n_pulses must be non-negative")
        self.crystalline_fraction = float(
            np.clip(
                self.crystalline_fraction + n_pulses * self.pulse_crystallization_step,
                0.0,
                1.0,
            )
        )
        return self.weight

    def apply_amorphization_pulses(self, n_pulses: int = 1) -> float:
        """Apply potentiating pulses (partial amorphisation); returns new weight."""
        if n_pulses < 0:
            raise ValueError("n_pulses must be non-negative")
        self.crystalline_fraction = float(
            np.clip(
                self.crystalline_fraction - n_pulses * self.pulse_amorphization_step,
                0.0,
                1.0,
            )
        )
        return self.weight

    def adjust_weight(self, delta_weight: float) -> float:
        """Apply a signed weight update (used by the STDP rule).

        Positive deltas potentiate (amorphise), negative deltas depress
        (crystallise).  The update is applied through the shared
        :func:`pulse_granular_fraction_update` kernel: the number of pulses
        is the delta divided by the per-pulse weight change, rounded to the
        nearest integer, so arbitrarily fine updates are *not* possible —
        exactly the granularity limit of real PCM.
        """
        self.crystalline_fraction = float(
            pulse_granular_fraction_update(
                self.crystalline_fraction,
                delta_weight,
                self._weights_of,
                self.pulse_crystallization_step,
                self.pulse_amorphization_step,
            )
        )
        return self.weight

    def _weights_of(self, fractions) -> np.ndarray:
        return pcm_normalized_weight(
            self.material, fractions, self.confinement, self.patch_length
        )

    def apply_drift(self, duration: float) -> float:
        """Relax the crystalline fraction toward amorphous for ``duration`` [s]."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self.crystalline_fraction = float(
            np.clip(self.crystalline_fraction - self.drift_rate * duration, 0.0, 1.0)
        )
        return self.weight

    def programming_energy(self, n_pulses: int = 1) -> float:
        """Energy [J] of ``n_pulses`` programming pulses."""
        volume_um3 = 0.05 * self.patch_length * 1e6
        return n_pulses * self.material.switching_energy(volume_um3)
